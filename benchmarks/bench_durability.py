"""Durability cost — WAL sync_mode levels and TBS1 snapshot throughput.

The PR-5 durability overhaul makes every acknowledged LSM write follow the
WAL ``sync_mode`` policy (``none`` buffers in userspace, ``flush`` drains to
the kernel per append, ``fsync`` reaches stable storage per append — see
docs/ARCHITECTURE.md "Durability").  This driver prices the guarantee ladder:

* puts/second per sync mode, plus ``fsync`` with a group-commit interval
  (``fsync_interval_bytes``) to show what batching buys back;
* TierBase ``TBS1`` snapshot save/load throughput (MB/s over the serialised
  size), the cost a persistent tierbase shard pays per flush and per reopen.

Every mode is verified for correctness after timing — the reopened stores
must serve all keys — so the rows can never go fast by dropping writes.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.datasets import load_dataset
from repro.lsm import LSMEngine
from repro.tierbase import TierBase, ZstdDictValueCompressor

#: Workload sizes (small: the substrate is pure Python and fsync is per-put).
PUTS = 300
SNAPSHOT_KEYS = 600


def measure_puts(values: list[str], sync_mode: str, fsync_interval_bytes: int = 0) -> float:
    """Puts/second for one engine at ``sync_mode``, correctness-checked."""
    with tempfile.TemporaryDirectory(prefix=f"bench-dur-{sync_mode}-") as tmp:
        engine = LSMEngine(
            tmp,
            memtable_bytes=32 * 1024,
            sync_mode=sync_mode,
            fsync_interval_bytes=fsync_interval_bytes,
        )
        started = time.perf_counter()
        for index, value in enumerate(values):
            engine.put(f"key:{index:05d}", value)
        elapsed = time.perf_counter() - started
        engine.close()
        with LSMEngine(tmp, memtable_bytes=32 * 1024, sync_mode=sync_mode) as reopened:
            assert reopened.get("key:00000") == values[0]
            assert reopened.get(f"key:{len(values) - 1:05d}") == values[-1]
    return len(values) / elapsed if elapsed > 0 else 0.0


def measure_snapshot(values: list[str]) -> tuple[float, float, int]:
    """``(save_mb_s, load_mb_s, snapshot_bytes)`` for a TBS1 roundtrip."""
    store = TierBase(compressor=ZstdDictValueCompressor())
    store.train(values[:96])
    for index, value in enumerate(values):
        store.set(f"key:{index:05d}", value)
    with tempfile.TemporaryDirectory(prefix="bench-dur-tbs-") as tmp:
        path = Path(tmp) / "snapshot.tbs"
        started = time.perf_counter()
        store.save(path)
        save_seconds = time.perf_counter() - started
        size = path.stat().st_size
        started = time.perf_counter()
        loaded = TierBase.load(path, compressor=ZstdDictValueCompressor())
        load_seconds = time.perf_counter() - started
        assert len(loaded) == len(store)
        assert loaded.get("key:00000") == values[0]
    mb = size / (1024 * 1024)
    return (
        mb / save_seconds if save_seconds > 0 else 0.0,
        mb / load_seconds if load_seconds > 0 else 0.0,
        size,
    )


def test_durability_costs(benchmark):
    values = load_dataset("kv1", count=max(PUTS, SNAPSHOT_KEYS))

    def run() -> dict:
        return {
            "none": measure_puts(values[:PUTS], "none"),
            "flush": measure_puts(values[:PUTS], "flush"),
            "fsync": measure_puts(values[:PUTS], "fsync"),
            "fsync_batched": measure_puts(
                values[:PUTS], "fsync", fsync_interval_bytes=32 * 1024
            ),
            "snapshot": measure_snapshot(values[:SNAPSHOT_KEYS]),
        }

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    save_mb_s, load_mb_s, size = result["snapshot"]
    print()
    print(
        "LSM puts/s by WAL sync_mode: "
        f"none {result['none']:,.0f} | flush {result['flush']:,.0f} | "
        f"fsync {result['fsync']:,.0f} | fsync@32KiB-interval {result['fsync_batched']:,.0f}"
    )
    print(
        f"TBS1 snapshot ({SNAPSHOT_KEYS} keys, {size / 1024:.0f} KiB): "
        f"save {save_mb_s:.1f} MB/s, load {load_mb_s:.1f} MB/s"
    )

    # Correctness-shaped assertions only: every mode completed, recovered its
    # keys (asserted inside the measurements), and produced real throughput.
    # Relative wall-clock ordering (none >= flush >= fsync) is informational —
    # on tmpfs/overlay CI filesystems fsync can be nearly free.
    for mode in ("none", "flush", "fsync", "fsync_batched"):
        assert result[mode] > 0
    assert save_mb_s > 0 and load_mb_s > 0
