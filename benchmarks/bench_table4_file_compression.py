"""Table 4 — whole-file compression ratio and speed."""

from repro.bench import render_table, run_table4_file_compression


def test_table4_file_compression(benchmark, fast_settings):
    rows = benchmark.pedantic(run_table4_file_compression, args=(fast_settings,), iterations=1, rounds=1)
    print()
    print(
        render_table(
            rows,
            columns=["dataset", "method", "ratio", "paper_ratio", "comp_mb_s", "decomp_mb_s"],
            title="Table 4: whole-file compression",
        )
    )
    # Shape check: the PBC block variants reach the best ratios on KV datasets.
    for dataset in ("kv1", "kv2"):
        by_method = {row["method"]: row["ratio"] for row in rows if row["dataset"] == dataset}
        assert by_method["PBC_L"] <= by_method["LZMA"] + 0.02
        assert by_method["PBC_Z"] < by_method["Snappy"]
        assert by_method["PBC_L"] < by_method["Zstd"]
