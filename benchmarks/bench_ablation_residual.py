"""Extension — residual-stage ablation: PBC versus PBC_F / PBC_H (Section 5.2 options)."""

from repro.bench import render_table, run_ablation_residual


def test_ablation_residual(benchmark, fast_settings):
    rows = benchmark.pedantic(run_ablation_residual, args=(fast_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Ablation: residual stage (per-record ratio and speed)"))

    datasets = {row["dataset"] for row in rows}
    for dataset in datasets:
        by_method = {row["method"]: row for row in rows if row["dataset"] == dataset}
        base = by_method["PBC"]["ratio"]
        for method, row in by_method.items():
            if method == "PBC":
                continue
            if method.startswith("PBC_H"):
                # Entropy stages fall back to the raw payload behind a one-byte
                # marker, so they cost at most ~1 byte per record.
                assert row["ratio"] <= base + 0.03, (dataset, method)
            else:
                # PBC_F's FSST framing can add a few bytes per record when the
                # field payload is already tiny.
                assert row["ratio"] <= base + 0.15, (dataset, method)

    improved = [
        row
        for row in rows
        if row["method"] != "PBC"
        and row["ratio"]
        < next(
            base["ratio"]
            for base in rows
            if base["dataset"] == row["dataset"] and base["method"] == "PBC"
        )
    ]
    assert improved, "at least one residual stage should improve on plain PBC somewhere"
