"""Table 2 — dataset statistics (paper corpus versus generated corpus)."""

from repro.bench import render_table, run_table2_dataset_statistics
from repro.datasets import load_dataset


def test_table2_dataset_statistics(benchmark, bench_settings):
    rows = benchmark.pedantic(
        run_table2_dataset_statistics, args=(bench_settings,), iterations=1, rounds=1
    )
    print()
    print(render_table(rows, title="Table 2: dataset statistics (paper vs generated)"))
    assert len(rows) == len(bench_settings.datasets)


def test_dataset_generation_speed(benchmark):
    records = benchmark(load_dataset, "kv2", 500)
    assert len(records) == 500
