"""Extension — operation-log record codec throughput (the unified write path).

Every mutation in the system now flows through one binary record codec
(:mod:`repro.oplog.record`), so its encode/decode rates bound every write
path: LSM puts, TierBase SETs, batched ``put_many`` and WAL replay.  This
driver times a round trip over a representative batch and checks the shape
claims that motivated the codec:

* the single-buffer encoder beats the legacy double-copy WAL encoder;
* decode replays a gap-free prefix at a rate comparable to encode;
* torn tails and CRC corruption truncate, never crash.
"""

from repro.bench import render_table
from repro.bench.hotpaths import legacy_wal_encode_record, pair_wal_encode
from repro.oplog import OP_PUT, OpRecord, encode_records, iter_records

RECORDS = 2000
VALUE_BYTES = 128


def _batch() -> list[OpRecord]:
    value = b"v" * VALUE_BYTES
    return [
        OpRecord(lsn=index + 1, op=OP_PUT, key=f"bench:key:{index:08d}", value=value)
        for index in range(RECORDS)
    ]


def run_codec_roundtrip() -> dict:
    """Encode a batch, decode it back, and return the shape evidence."""
    batch = _batch()
    data = encode_records(batch)
    decoded = list(iter_records(data))
    legacy_bytes = b"".join(
        legacy_wal_encode_record(record.op, record.key, record.value.decode("utf-8"))
        for record in batch
    )
    return {
        "records": len(batch),
        "decoded": len(decoded),
        "encoded_bytes": len(data),
        "legacy_bytes": len(legacy_bytes),
        "tail_lsn": decoded[-1].lsn if decoded else 0,
    }


def test_record_codec_roundtrip(benchmark):
    result = benchmark.pedantic(run_codec_roundtrip, iterations=1, rounds=3)
    assert result["decoded"] == result["records"] == RECORDS
    assert result["tail_lsn"] == RECORDS
    print()
    print(render_table([result], title="oplog record codec round trip"))


def test_decode_stops_at_torn_tail():
    data = encode_records(_batch())
    torn = data[: len(data) - 7]
    decoded = list(iter_records(torn))
    assert 0 < len(decoded) < RECORDS
    assert [record.lsn for record in decoded] == list(range(1, len(decoded) + 1))


def test_encode_pair_improves():
    row = pair_wal_encode(records=1000, value_bytes=VALUE_BYTES, repeats=3)
    print()
    print(render_table([row], title="WAL record encode: double copy vs single buffer"))
    # On a shared CI runner the margin is noise; pin only that the new
    # codec is not dramatically slower than the legacy encoder.
    assert row["after"] > row["before"] * 0.7
