"""Service throughput — mixed GET/SET over the sharded concurrent KV service.

Drives `repro.service.KVService` (4 TierBase shards, PBC_F value compression,
compressed LRU read cache) with the batched mixed workload from
`repro.service.workload` and reports per-shard compression ratios, the cache
hit rate, and GET/SET latency percentiles — the same flow the
`repro serve-bench` CLI command exposes.

As with every benchmark here, the goal on a pure-Python substrate is the
*shape* of the result: compressed shards well below 100% memory, a non-zero
cache hit rate on a GET-heavy mix, and sane latency percentiles.
"""

from repro.bench import render_table
from repro.datasets import load_dataset
from repro.service import KVService, ServiceConfig, run_mixed_workload

#: Mixed-workload parameters (small: the substrate is pure Python).
SHARDS = 4
VALUES = 480
OPERATIONS = 1600
GET_FRACTION = 0.7
BATCH_SIZE = 16
CLIENTS = 2


def run_service_benchmark(dataset: str = "kv1") -> "tuple[object, object]":
    """One end-to-end run; returns ``(result, snapshot)``."""
    values = load_dataset(dataset, count=VALUES)
    config = ServiceConfig(
        shard_count=SHARDS, backend="tierbase", compressor="pbc_f", cache_entries=256
    )
    with KVService(config) as service:
        result = run_mixed_workload(
            service,
            values,
            operations=OPERATIONS,
            get_fraction=GET_FRACTION,
            batch_size=BATCH_SIZE,
            clients=CLIENTS,
            seed=2023,
        )
    return result, result.snapshot


def test_service_mixed_workload(benchmark):
    result, snapshot = benchmark.pedantic(run_service_benchmark, iterations=1, rounds=1)
    print()
    print(
        f"{result.operations} ops ({result.get_operations} GET / {result.set_operations} SET), "
        f"{CLIENTS} clients: {result.ops_per_second:,.0f} ops/s"
    )
    print(render_table(result.shard_rows(), title="Per-shard compression"))
    print(render_table(result.summary_rows(), title="Service summary"))

    # Every shard received keys and compresses its values well below raw size.
    assert len(snapshot.shards) == SHARDS
    assert all(shard.keys > 0 for shard in snapshot.shards)
    assert all(shard.ratio < 0.8 for shard in snapshot.shards)
    # The cache counters are internally consistent (hits+misses == lookups,
    # one lookup per GET) — serve-bench prints ratios it can trust.
    snapshot.validate()
    # The GET-heavy mix produces cache hits, and the percentiles are ordered.
    assert snapshot.cache.hit_rate > 0.0
    assert snapshot.get_latency.p99_ms >= snapshot.get_latency.p50_ms > 0.0
    assert snapshot.set_latency.p99_ms >= snapshot.set_latency.p50_ms > 0.0
    # All operations were accounted for (preload msets VALUES keys first).
    assert snapshot.gets == result.get_operations
    assert snapshot.sets == VALUES + result.set_operations
    assert result.operations == OPERATIONS


def test_service_uncompressed_baseline(benchmark):
    """The Uncompressed configuration stores at ratio 1.0 (Table 8's baseline row)."""

    def run() -> object:
        values = load_dataset("kv1", count=240)
        with KVService(ServiceConfig(shard_count=2, compressor="none")) as service:
            return run_mixed_workload(
                service, values, operations=480, get_fraction=0.5, batch_size=8
            )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert abs(result.snapshot.ratio - 1.0) < 1e-9
    assert result.snapshot.keys == 240
