"""Wire throughput — the RKV1 server/client stack vs the in-process service.

Serves a 2-shard `repro.service.KVService` on an ephemeral localhost port
(`repro.net.ThreadedKVServer`) and drives the mixed GET/SET wire workload
(`repro.net.loadgen`) the `repro client bench` CLI exposes, then runs the
same-shaped workload in-process (`repro.service.workload`) as the baseline —
the gap is the protocol + socket + event-loop cost per operation.

A pipelining-depth sweep (1 → 16 single-key frames per round trip) shows the
per-request network overhead being amortised: deeper pipelines must not lose
or corrupt a single response, and on localhost the ops/s at depth 16 should
comfortably beat depth 1.  As with every benchmark on this pure-Python
substrate, the *shape* is the assertion, not absolute numbers.
"""

from repro.bench import render_table
from repro.datasets import load_dataset
from repro.net import ServerConfig, ThreadedKVServer, run_wire_workload
from repro.service import KVService, ServiceConfig, run_mixed_workload

#: Workload parameters (small: the substrate is pure Python).
SHARDS = 2
VALUES = 320
OPERATIONS = 800
GET_FRACTION = 0.7
BATCH_SIZE = 8
CLIENTS = 2
PIPELINE_DEPTHS = (1, 4, 16)


def run_net_benchmark(dataset: str = "kv1") -> dict:
    """One end-to-end run; returns wire results, the sweep, and the baseline."""
    values = load_dataset(dataset, count=VALUES)
    config = ServiceConfig(
        shard_count=SHARDS, backend="tierbase", compressor="pbc_f", cache_entries=256
    )
    service = KVService(config)
    service.train(values[:256])
    outcome: dict = {"sweep": []}
    try:
        with ThreadedKVServer(service, ServerConfig(port=0, max_inflight=64)) as server:
            host, port = server.address
            outcome["batched"] = run_wire_workload(
                host, port, values,
                operations=OPERATIONS, get_fraction=GET_FRACTION,
                batch_size=BATCH_SIZE, clients=CLIENTS, seed=2023,
            )
            for depth in PIPELINE_DEPTHS:
                outcome["sweep"].append(
                    run_wire_workload(
                        host, port, values,
                        operations=OPERATIONS // 2, get_fraction=GET_FRACTION,
                        clients=CLIENTS, pipeline_depth=depth, seed=31 + depth,
                        preload=False,
                    )
                )
            outcome["snapshot"] = service.snapshot().validate()
    finally:
        service.close()

    # In-process baseline: same shape, no socket.
    baseline_service = KVService(config)
    try:
        outcome["baseline"] = run_mixed_workload(
            baseline_service, values,
            operations=OPERATIONS, get_fraction=GET_FRACTION,
            batch_size=BATCH_SIZE, clients=CLIENTS, seed=2023,
        )
    finally:
        baseline_service.close()
    return outcome


def test_wire_throughput_vs_in_process(benchmark):
    outcome = benchmark.pedantic(run_net_benchmark, iterations=1, rounds=1)
    batched, baseline = outcome["batched"], outcome["baseline"]
    print()
    print(
        f"wire (mget/mset × {BATCH_SIZE}): {batched.ops_per_second:,.0f} ops/s | "
        f"in-process baseline: {baseline.ops_per_second:,.0f} ops/s"
    )
    print(render_table(batched.summary_rows(), title="Wire workload (batched)"))
    sweep_rows = [
        {
            "depth": result.pipeline_depth,
            "ops_per_second": f"{result.ops_per_second:,.0f}",
            "op_p50_ms": f"{result.p50_ms:.3f}",
            "op_p99_ms": f"{result.p99_ms:.3f}",
            "lost": result.lost_responses,
            "corrupt": result.corrupt_responses,
        }
        for result in outcome["sweep"]
    ]
    print(render_table(sweep_rows, title="Pipelining-depth sweep (single-key frames)"))

    # Zero lost or corrupted responses anywhere — the wire soak bar.
    for result in [batched, *outcome["sweep"]]:
        assert result.lost_responses == 0
        assert result.corrupt_responses == 0
        assert result.operations > 0 and result.ops_per_second > 0
    # Wire ops cost more than in-process ops, but not absurdly more, and the
    # served snapshot's cache counters stay consistent under wire traffic.
    assert batched.ops_per_second > 0
    snapshot = outcome["snapshot"]
    assert len(snapshot.shards) == SHARDS
    assert all(shard.ratio < 1.0 for shard in snapshot.shards)
    # Pipelining amortises per-request overhead: depth 16 beats depth 1 on
    # wall-clock per op (allow generous slack — shared CI runners are noisy).
    deepest, shallow = outcome["sweep"][-1], outcome["sweep"][0]
    assert deepest.ops_per_second > shallow.ops_per_second * 0.8


def test_wire_single_client_correctness(benchmark):
    """Depth-1 single client: the degenerate pipeline still answers exactly."""

    def run() -> object:
        values = load_dataset("kv1", count=120)
        service = KVService(ServiceConfig(shard_count=1, compressor="none"))
        try:
            with ThreadedKVServer(service, ServerConfig(port=0)) as server:
                host, port = server.address
                return run_wire_workload(
                    host, port, values, operations=200, clients=1, pipeline_depth=1,
                )
        finally:
            service.close()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.lost_responses == 0 and result.corrupt_responses == 0
    assert result.operations == 200
