"""Figure 9 — compression ratio versus training-sample size and pattern-dictionary size."""

from repro.bench import render_table, run_fig9_pattern_size, run_fig9_training_size


def test_fig9a_training_size(benchmark, bench_settings):
    rows = benchmark.pedantic(
        run_fig9_training_size,
        args=(bench_settings,),
        kwargs={"datasets": ("kv1", "kv2"), "sample_sizes": (8, 16, 32, 64)},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_table(rows, title="Figure 9(a): ratio vs training-sample size"))
    # Shape check: more training data never hurts much; the ratio converges.
    for dataset in ("kv1", "kv2"):
        series = [row["ratio"] for row in rows if row["dataset"] == dataset]
        assert series[-1] <= series[0] + 0.05


def test_fig9b_pattern_size(benchmark, bench_settings):
    rows = benchmark.pedantic(
        run_fig9_pattern_size,
        args=(bench_settings,),
        kwargs={"datasets": ("kv1", "kv2"), "pattern_counts": (1, 2, 4, 8, 16)},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_table(rows, title="Figure 9(b): ratio vs pattern-dictionary size"))
    # Shape check: allowing more patterns never makes the ratio much worse, and
    # the dictionary grows with the pattern budget (diminishing returns).
    for dataset in ("kv1", "kv2"):
        series = [row for row in rows if row["dataset"] == dataset]
        assert series[-1]["ratio"] <= series[0]["ratio"] + 0.05
        assert series[-1]["dictionary_bytes"] >= series[0]["dictionary_bytes"]
