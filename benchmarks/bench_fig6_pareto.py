"""Figure 6 — Pareto frontier of compression ratio versus compression/decompression speed."""

from repro.bench import render_table, run_fig6_pareto


def test_fig6_pareto_frontier(benchmark, fast_settings):
    rows = benchmark.pedantic(run_fig6_pareto, args=(fast_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Figure 6: ratio/speed positions and Pareto membership"))

    by_method = {row["method"]: row for row in rows}
    # Shape checks: a PBC variant sits at (or within a couple of points of) the
    # best overall compression ratio, and PBC variants appear on the
    # decompression-speed Pareto frontier (the paper reports 4 of 5 frontier
    # positions for read-intensive scenarios).  Speed-ordering claims between
    # baselines are not asserted: the pure-Python baselines do not retain the
    # C libraries' relative speeds (see EXPERIMENTS.md).
    best_ratio = min(row["ratio"] for row in rows)
    best_pbc_ratio = min(row["ratio"] for row in rows if row["method"].startswith("PBC"))
    assert best_pbc_ratio <= best_ratio + 0.03
    assert any(row["pareto_decompression"] and row["method"].startswith("PBC") for row in rows)
    # PBC's ratio advantage over the lightweight codecs must be preserved.
    assert best_pbc_ratio < by_method["LZ4"]["ratio"]
    assert best_pbc_ratio < by_method["Snappy"]["ratio"]
