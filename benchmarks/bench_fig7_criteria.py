"""Figure 7 — clustering-criterion ablation (edit distance vs entropy vs encoding length)."""

from repro.bench import render_table, run_fig7_criteria

ABLATION_DATASETS = ("kv1", "kv5", "apache", "urls")


def test_fig7_clustering_criteria(benchmark, bench_settings):
    rows = benchmark.pedantic(
        run_fig7_criteria, args=(bench_settings,), kwargs={"datasets": ABLATION_DATASETS}, iterations=1, rounds=1
    )
    print()
    print(render_table(rows, title="Figure 7: compression ratio by clustering criterion"))

    # Shape check: averaged over the ablation datasets the EL-based criterion
    # must not lose to the naive edit-distance criterion (the paper shows it
    # strictly winning on every dataset).
    def average(criterion):
        ratios = [row["ratio"] for row in rows if row["criterion"] == criterion]
        return sum(ratios) / len(ratios)

    assert average("el") <= average("ed") + 0.02
    assert average("entropy") <= average("ed") + 0.05
