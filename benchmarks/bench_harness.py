"""Perf-harness smoke — one tiny grid run plus a self-compare.

Executes the ``wire`` experiment area at smoke scale (same cells as the
committed ``BENCH_wire.json``, far fewer operations), validates the
resulting document, and self-compares it — exercising exactly the pipeline
the CI ``perf-gate`` job runs against the committed baseline.  On a shared
runner the absolute numbers are noise; what this pins is that the harness
produces schema-valid, comparable documents end to end.
"""

from repro.bench import render_table
from repro.bench.harness import compare_documents, run_area, validate_document

OVERRIDES = {"operations": 96, "values": 64}
REPETITIONS = 2


def run_harness_benchmark() -> dict:
    """One smoke-scale wire grid run; returns the benchmark document."""
    return run_area("wire", repetitions=REPETITIONS, warmup=0, overrides=OVERRIDES, pairs=False)


def test_harness_smoke(benchmark):
    document = benchmark.pedantic(run_harness_benchmark, iterations=1, rounds=1)
    validate_document(document)
    assert len(document["rows"]) == 4 * REPETITIONS
    assert all(row["lost"] == 0 and row["corrupt"] == 0 for row in document["rows"])
    report, regressions = compare_documents(document, document, threshold=0.15)
    assert regressions == 0
    print()
    print(render_table(report, title="bench harness smoke (self-compare)"))
