"""Scenario mixes — the YCSB-style suite over the wire scan path.

Runs a small subset of the `repro.scenarios` registry (one point mix, one
scan-heavy mix, one paper-native mix) against in-process servers on both
backends, through the open-loop wire load generator with the built-in
correctness oracle.  The assertions are the oracle's: zero lost records,
zero corrupt values, zero out-of-order scans — on a pure-Python substrate
the throughput numbers are not the point, the end-to-end consistency of
the scan path under a mixed workload is.
"""

from repro.bench import render_table
from repro.scenarios import run_suite

#: Deliberately small: two backends × three mixes inside the bench-smoke budget.
MIXES = ("ycsb_b", "ycsb_e", "paper_trades")
BACKENDS = ("tierbase", "lsm")
OPERATIONS = 160
RATE = 2500.0
RECORDS = 96
VALUE_COUNT = 96


def run_scenarios_benchmark() -> list:
    """Run the mix matrix once; returns the per-mix results."""
    return run_suite(
        MIXES,
        backends=BACKENDS,
        operations=OPERATIONS,
        rate=RATE,
        records=RECORDS,
        value_count=VALUE_COUNT,
        compressor="pbc_f",
    )


def test_scenario_suite(benchmark):
    results = benchmark.pedantic(run_scenarios_benchmark, iterations=1, rounds=1)
    rows = [result.row() for result in results]
    print()
    print(
        render_table(
            [
                {
                    "scenario": row["scenario"],
                    "backend": row["backend"],
                    "ops": row["operations"],
                    "errors": row["errors"],
                    "achieved/s": f"{row['achieved_rate']:,.0f}",
                    "p99 ms": f"{row['p99_ms']:.3f}",
                    "scans": row["scan_count"],
                    "lost": row["lost"],
                    "corrupt": row["corrupt"],
                }
                for row in rows
            ],
            title="Scenario suite (smoke)",
        )
    )
    assert len(results) == len(MIXES) * len(BACKENDS)
    for result in results:
        assert result.open_loop.completed + result.open_loop.errors == OPERATIONS
        assert result.clean, result.row()
    # The scan-heavy mix must actually scan on both backends.
    scan_heavy = [result for result in results if result.scenario == "ycsb_e"]
    assert len(scan_heavy) == len(BACKENDS)
    for result in scan_heavy:
        assert result.scans > 0
        assert result.scan_items > 0
