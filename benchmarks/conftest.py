"""Shared configuration for the pytest-benchmark drivers.

Each benchmark module reproduces one table or figure of the paper by calling
the corresponding runner from :mod:`repro.bench.experiments`, printing the
resulting rows (paper reference values included where available) and timing a
representative kernel with ``pytest-benchmark``.

The workload sizes here are deliberately small: the reproduction runs on a
pure-Python substrate, so the goal is the *shape* of each result (who wins and
by roughly what factor), not the paper's absolute throughput numbers.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkSettings
from repro.datasets import dataset_names

#: Datasets used by the heavier sweeps (a representative subset of Table 2).
#: These sizes are shared with the CI bench-smoke job: the shape assertions
#: (who wins, by roughly what factor) are tuned to them, so shrinking them
#: further makes the training-dependent comparisons (e.g. PBC_F's FSST table)
#: unstable — keep them in sync with the assertions if they ever change.
FAST_DATASETS = ("kv1", "kv2", "kv4", "apache", "hdfs", "urls", "uuid")


@pytest.fixture(scope="session")
def bench_settings() -> BenchmarkSettings:
    """Settings for benchmarks that iterate over every dataset."""
    return BenchmarkSettings(record_count=160, train_count=80, max_patterns=16, sample_size=56)


@pytest.fixture(scope="session")
def fast_settings() -> BenchmarkSettings:
    """Settings for the heavier sweeps, restricted to a dataset subset."""
    return BenchmarkSettings(
        record_count=160, train_count=80, max_patterns=16, sample_size=56, datasets=FAST_DATASETS
    )
