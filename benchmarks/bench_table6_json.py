"""Tables 6 and 7 — JSON compression against Ion-B and JSON BinPack (BP-D)."""

from repro.bench import render_table, run_table6_json_compression, run_table7_json_per_dataset


def test_table6_json_compression(benchmark, bench_settings):
    rows = benchmark.pedantic(run_table6_json_compression, args=(bench_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Table 6: JSON record and file compression"))

    by_method = {row["method"]: row for row in rows}
    # Shape checks: the per-record PBC variants beat the Ion-like serialisation,
    # PBC_F stays competitive with the schema-driven BinPack codec, and the
    # +LZMA file configurations land close together.  (Plain PBC does not beat
    # BP-D on the byte-weighted aggregate here because very long JSON records
    # only contribute a pattern prefix on the pure-Python substrate — see the
    # Table 6 notes in EXPERIMENTS.md.)
    assert by_method["PBC"]["ratio"] < by_method["Ion-B"]["ratio"]
    assert by_method["PBC_F"]["ratio"] < by_method["Ion-B"]["ratio"]
    assert by_method["PBC_F"]["ratio"] <= by_method["BP-D"]["ratio"] * 1.2
    assert by_method["PBC_F"]["ratio"] <= by_method["PBC"]["ratio"] + 0.02
    assert by_method["PBC_L"]["ratio"] <= by_method["Ion-B+LZMA"]["ratio"] * 2.0


def test_table7_per_dataset_ratios(benchmark, bench_settings):
    rows = benchmark.pedantic(run_table7_json_per_dataset, args=(bench_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Table 7: per-dataset JSON file compression (BP-D vs PBC_L)"))
    assert {row["dataset"] for row in rows} == {"cities", "github", "unece"}
    for row in rows:
        assert 0 < row["BP-D"] < 1
        assert 0 < row["PBC_L"] < 1
