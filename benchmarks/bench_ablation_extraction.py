"""Extension — extraction-configuration ablation (DESIGN.md engineering knobs)."""

from repro.bench import render_table, run_ablation_extraction


def test_ablation_extraction(benchmark, fast_settings):
    rows = benchmark.pedantic(run_ablation_extraction, args=(fast_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Ablation: extraction configuration (ratio / training time)"))

    # Every configuration must stay usable: patterns extracted and a ratio below 1.
    for row in rows:
        assert row["patterns"] >= 1
        assert 0 < row["ratio"] < 1.2

    # Pruning exists to save time: with pruning disabled, training must not be
    # faster than the equivalent configuration with pruning on (no pre-grouping).
    by_key = {(row["dataset"], row["configuration"]): row for row in rows}
    for dataset in {row["dataset"] for row in rows}:
        pruned = by_key[(dataset, "no pre-grouping")]
        unpruned = by_key[(dataset, "no pruning")]
        assert unpruned["train_seconds"] >= pruned["train_seconds"] * 0.5
