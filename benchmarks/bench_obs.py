"""Instrumentation overhead — the metrics fabric on the wire GET path.

Serves the same 1-shard service twice — once with the metrics registry
enabled (the default) and once with ``metrics_enabled=False`` (every
instrument is the shared no-op) — and times unpipelined single-GET round
trips on each.  The round trip is syscall-dominated (two socket writes, two
reads, an executor hop), which is exactly why the ISSUE pins the overhead
bar here: if the per-request counter/histogram work is visible against a
socket round trip, it would dominate an in-process path.

The runs are interleaved and the best per-op time of each mode is compared
(best-of filters scheduler noise on shared CI runners); the enabled path
must cost **less than 5% more** than the disabled path.  An open-loop run
then shows the offered-vs-achieved report with instrumentation on.
"""

import time

from repro.bench import render_table
from repro.datasets import load_dataset
from repro.net import KVClient, ServerConfig, ThreadedKVServer, run_open_loop_workload
from repro.service import KVService, ServiceConfig

#: Unpipelined GETs per timed pass (one pass = one per-op sample).
OPERATIONS = 600
#: Interleaved passes per mode; the best pass per mode is compared.
ROUNDS = 5
#: Maximum tolerated enabled-vs-disabled slowdown on the wire GET path.
OVERHEAD_BAR = 1.05


def _timed_gets(client: KVClient, keys: list[str], operations: int) -> float:
    """Seconds per op over one unpipelined GET pass (keys cycled)."""
    count = len(keys)
    started = time.perf_counter()
    for index in range(operations):
        client.get(keys[index % count])
    return (time.perf_counter() - started) / operations


def run_overhead_benchmark() -> dict:
    values = load_dataset("kv1", count=64)
    keys = [f"kv-{index}" for index in range(len(values))]
    modes: dict[bool, dict] = {}
    for enabled in (True, False):
        service = KVService(ServiceConfig(shard_count=1, compressor="none"))
        server = ThreadedKVServer(
            service, ServerConfig(port=0, metrics_enabled=enabled)
        )
        server.start()
        host, port = server.address
        client = KVClient(host, port, pool_size=1)
        for key, value in zip(keys, values):
            client.set(key, value)
        modes[enabled] = {"service": service, "server": server, "client": client,
                          "samples": []}
    try:
        # Interleave the passes so drift (thermal, noisy neighbours) hits
        # both modes alike instead of biasing whichever ran second.
        for _ in range(ROUNDS):
            for enabled in (True, False):
                mode = modes[enabled]
                mode["samples"].append(
                    _timed_gets(mode["client"], keys, OPERATIONS)
                )
        enabled_host, enabled_port = modes[True]["server"].address
        open_loop = run_open_loop_workload(
            enabled_host, enabled_port, values, rate=2000.0, operations=1000,
            workers=4, preload=False,
        )
    finally:
        for mode in modes.values():
            mode["client"].close()
            mode["server"].stop()
            mode["service"].close()
    return {
        "enabled_s": min(modes[True]["samples"]),
        "disabled_s": min(modes[False]["samples"]),
        "open_loop": open_loop,
    }


def test_instrumentation_overhead_under_bar(benchmark):
    outcome = benchmark.pedantic(run_overhead_benchmark, iterations=1, rounds=1)
    enabled_s, disabled_s = outcome["enabled_s"], outcome["disabled_s"]
    ratio = enabled_s / disabled_s
    print()
    print(
        f"wire GET per-op: enabled {enabled_s * 1e6:.1f} µs | "
        f"disabled {disabled_s * 1e6:.1f} µs | ratio {ratio:.3f} "
        f"(bar {OVERHEAD_BAR:.2f})"
    )
    result = outcome["open_loop"]
    print(render_table(result.summary_rows(), title="Open-loop run (metrics on)"))
    assert result.errors == 0
    assert result.completed == result.offered_operations
    # The tentpole bar: metrics on the hot path must stay under 5% on the
    # syscall-dominated wire round trip.
    assert ratio < OVERHEAD_BAR, (
        f"instrumentation overhead {ratio:.3f}x exceeds {OVERHEAD_BAR:.2f}x"
    )
