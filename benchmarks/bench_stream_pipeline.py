"""Stream pipeline — throughput versus worker count and frame size.

Unlike the paper-artifact benchmarks, this one measures the new
:mod:`repro.stream` subsystem: how fast records flow through the parallel
frame-compression pipeline as a function of (a) worker count and (b) frame
size, for the CPU-bound PBC frame codec and for a GIL-releasing stdlib codec.

On a multi-core machine the process pool should deliver clearly super-1×
scaling for PBC frames (the ISSUE targets >1.5× at 4 workers); on a
single-core CI runner the table still prints, documenting the measured
(possibly flat) scaling honestly rather than asserting it.
"""

from __future__ import annotations

import io
import os
import time

from repro.bench import render_table
from repro.datasets import load_dataset
from repro.stream import StreamConfig, StreamWriter


def _records(count: int) -> list[str]:
    return load_dataset("apache", count=count)


def _run_once(records: list[str], codec: str, workers: int, frame_records: int, executor: str) -> dict:
    sink = io.BytesIO()
    config = StreamConfig(
        codec=codec,
        frame_records=frame_records,
        workers=workers,
        executor=executor,
        timed_stats=False,
    )
    started = time.perf_counter()
    with StreamWriter(sink, config) as writer:
        writer.write_many(records)
        summary = writer.close()
    elapsed = time.perf_counter() - started
    stats = summary.stats
    assert stats is not None
    return {
        "codec": codec,
        "workers": workers,
        "frame_records": frame_records,
        "frames": len(summary.frames),
        "ratio": round(stats.ratio, 3),
        "seconds": round(elapsed, 3),
        "MB_per_s": round(stats.original_bytes / 1e6 / elapsed, 3) if elapsed > 0 else 0.0,
    }


def test_stream_pipeline_scaling(benchmark):
    record_count = int(os.environ.get("STREAM_BENCH_RECORDS", "3000"))
    records = _records(record_count)
    worker_counts = (1, 2, 4)
    rows = []

    def run_sweep() -> list[dict]:
        sweep = []
        for codec, executor in (("pbc", "process"), ("gzip", "thread")):
            for workers in worker_counts:
                sweep.append(_run_once(records, codec, workers, frame_records=500, executor=executor))
        return sweep

    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Stream pipeline: throughput vs workers (500-record frames)"))

    pbc = {row["workers"]: row for row in rows if row["codec"] == "pbc"}
    speedup = pbc[4]["MB_per_s"] / pbc[1]["MB_per_s"] if pbc[1]["MB_per_s"] else 0.0
    cores = os.cpu_count() or 1
    print(f"PBC 4-worker speedup over 1 worker: {speedup:.2f}x on {cores} core(s)")
    # The >1.5x target needs real cores; never assert it on a starved runner.
    # Shared CI runners report 4 vCPUs but are oversubscribed, so the timing
    # assertion is informational there (the bench-smoke job still executes
    # every path); it stays enforced on real development machines.
    if cores >= 4 and not os.environ.get("CI"):
        assert speedup > 1.5, f"expected >1.5x PBC speedup at 4 workers, got {speedup:.2f}x"

    # Correctness-adjacent shape checks that hold regardless of core count.
    for row in rows:
        assert row["ratio"] < 1.0
        assert row["frames"] == (record_count + 499) // 500


def test_stream_frame_size_tradeoff(benchmark):
    records = _records(2000)
    frame_sizes = (125, 500, 2000)

    def run_sweep() -> list[dict]:
        return [
            _run_once(records, "pbc", workers=0, frame_records=size, executor="serial")
            for size in frame_sizes
        ]

    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Stream pipeline: frame size trade-off (PBC, serial)"))
    # Larger frames amortise the per-frame dictionary: ratio must not degrade.
    ratios = [row["ratio"] for row in rows]
    assert ratios[-1] <= ratios[0]
