"""Table 3 — line-by-line (per-record) compression ratio and speed."""

from repro.bench import render_table, run_table3_line_by_line
from repro.bench.experiments import BenchmarkSettings


def test_table3_line_by_line(benchmark, fast_settings):
    rows = benchmark.pedantic(run_table3_line_by_line, args=(fast_settings,), iterations=1, rounds=1)
    print()
    print(
        render_table(
            rows,
            columns=["dataset", "method", "ratio", "paper_ratio", "comp_mb_s", "decomp_mb_s"],
            title="Table 3: line-by-line compression",
        )
    )
    # Shape check: PBC variants must beat the general-purpose baselines on the
    # production key-value datasets, as in the paper.
    for dataset in ("kv1", "kv2"):
        by_method = {row["method"]: row["ratio"] for row in rows if row["dataset"] == dataset}
        assert by_method["PBC"] < by_method["Zstd"]
        assert by_method["PBC_F"] <= by_method["PBC"] + 0.08


def test_pbc_single_record_compression_speed(benchmark):
    from repro import PBCCompressor, ExtractionConfig
    from repro.datasets import load_dataset

    records = load_dataset("kv1", count=300)
    compressor = PBCCompressor(config=ExtractionConfig(max_patterns=8, sample_size=64))
    compressor.train(records[:100])
    record = records[150]
    payload = benchmark(compressor.compress, record)
    assert compressor.decompress(payload) == record
