"""Extension — LSM storage-engine integration (persistent-engine analogue of Figure 5 / Table 8)."""

from repro.bench import render_table, run_lsm_integration


def test_lsm_integration(benchmark, bench_settings):
    rows = benchmark.pedantic(run_lsm_integration, args=(bench_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="LSM engine: space and point-lookup throughput per storage policy"))

    by_policy = {row["policy"]: row for row in rows}
    # Shape checks mirroring Figure 5 / Table 8 on the persistent engine: both
    # compressed policies save space versus raw values, per-record PBC_F keeps
    # point lookups much faster than whole-block decompression, and PBC_F's
    # space usage is at least competitive with the Zstd-like block compression.
    assert by_policy["Zstd blocks"]["space_ratio"] < by_policy["Uncompressed"]["space_ratio"]
    assert by_policy["PBC_F records"]["space_ratio"] < by_policy["Uncompressed"]["space_ratio"]
    assert by_policy["PBC_F records"]["lookups_per_s"] > by_policy["Zstd blocks"]["lookups_per_s"] * 2
    assert by_policy["PBC_F records"]["space_ratio"] <= by_policy["Zstd blocks"]["space_ratio"] * 1.3
