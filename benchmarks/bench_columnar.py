"""Extension — columnar comparison: lightweight encodings and PIDS-like decomposition vs PBC."""

from repro.bench import render_table, run_columnar_comparison


def test_columnar_comparison(benchmark, bench_settings):
    rows = benchmark.pedantic(run_columnar_comparison, args=(bench_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Columnar comparison: lightweight / PIDS-like / PBC"))

    by_workload = {row["workload"]: row for row in rows}
    single = by_workload["urls (single structure)"]
    multi = by_workload["kv1+apache (multi structure)"]

    # Shape checks reproducing the paper's Section 2.2 argument: the
    # single-pattern PIDS-like decomposition is competitive on single-structure
    # columns (here it even wins, because its sub-columns get column-level
    # dictionary encoding that per-record PBC cannot use — see EXPERIMENTS.md),
    # but on multi-structure machine-generated data PBC wins outright and its
    # relative advantage widens sharply.
    assert multi["pbc"] < multi["pids_like"]
    assert multi["pbc_vs_pids_gain"] > single["pbc_vs_pids_gain"] * 1.5
    # Plain lightweight column encodings cannot exploit the shared structure of
    # high-cardinality machine-generated values at all.
    assert multi["pbc"] < multi["lightweight"]
    assert single["pids_like"] < single["lightweight"]
