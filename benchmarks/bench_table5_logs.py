"""Table 5 — log compression: LogReducer versus PBC_L."""

from repro.bench import render_table, run_table5_log_compression


def test_table5_log_compression(benchmark, bench_settings):
    rows = benchmark.pedantic(run_table5_log_compression, args=(bench_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Table 5: log compression (average over log datasets)"))

    by_method = {row["method"]: row for row in rows}
    # Shape checks from the paper: the two methods land in the same ratio
    # ballpark, and PBC_L's decompression throughput is at least competitive.
    # (The paper's "much faster" margin comes from native decoders; on the
    # pure-Python substrate with tiny workloads the two land within a small
    # factor of each other, so the strict ">" is not a stable signal here.)
    assert by_method["PBC_L"]["ratio"] <= by_method["LogReducer"]["ratio"] * 2.5
    assert by_method["PBC_L"]["decomp_mb_s"] > by_method["LogReducer"]["decomp_mb_s"] * 0.5
