"""Figure 5 — random access: compression ratio and lookup speed versus block size."""

from repro.bench import render_table, run_fig5_random_access


def test_fig5_random_access(benchmark, bench_settings):
    rows = benchmark.pedantic(
        run_fig5_random_access,
        args=(bench_settings,),
        kwargs={"datasets": ("kv2", "unece"), "block_sizes": (1, 4, 16, 64)},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_table(rows, title="Figure 5: random access vs block size"))

    # Shape checks mirroring the paper: Zstd's ratio improves with block size
    # while its lookup speed deteriorates; PBC_F is unaffected by block size
    # and looks up faster than large-block Zstd.
    kv2 = [row for row in rows if row["dataset"] == "kv2"]
    zstd = {row["block_size"]: row for row in kv2 if row["method"] == "Zstd"}
    pbcf = {row["block_size"]: row for row in kv2 if row["method"] == "PBC_F"}
    largest, smallest = max(zstd), min(zstd)
    assert zstd[largest]["ratio"] < zstd[smallest]["ratio"]
    assert zstd[largest]["lookups_per_second"] < zstd[smallest]["lookups_per_second"]
    assert pbcf[largest]["ratio"] == pbcf[smallest]["ratio"]
    assert pbcf[largest]["lookups_per_second"] > zstd[largest]["lookups_per_second"]
