"""Figure 8 — pattern-extraction time with and without 1-gram distance pruning."""

from repro.bench import render_table, run_fig8_pruning

PRUNING_DATASETS = ("kv1", "kv5", "apache", "urls")


def test_fig8_pruning_running_time(benchmark, bench_settings):
    rows = benchmark.pedantic(
        run_fig8_pruning, args=(bench_settings,), kwargs={"datasets": PRUNING_DATASETS}, iterations=1, rounds=1
    )
    print()
    print(render_table(rows, title="Figure 8: pattern-extraction time (naive vs 1-gram pruning)"))

    # Shape check: pruning must cut extraction time (or at least DP work) on
    # the aggregate, as in the paper.
    naive_time = sum(row["extraction_seconds"] for row in rows if row["method"] == "naive")
    pruned_time = sum(row["extraction_seconds"] for row in rows if row["method"] == "1-gram pruning")
    pruned_work = sum(
        row["pruned_by_bound"] + row["pruned_by_early_exit"]
        for row in rows
        if row["method"] == "1-gram pruning"
    )
    assert pruned_time <= naive_time * 1.1
    assert pruned_work > 0
