"""Retrain cost — epoch-based model install vs the stop-the-world rewrite.

Before the :mod:`repro.codecs` refactor, a TierBase retrain had to decompress
every stored value with the old dictionary, train, and recompress everything
under the new one (and the LSM shard tore down and re-ingested the whole
engine) — a stop-the-world pause proportional to the number of live keys.
With versioned model epochs a retrain installs a new
:class:`~repro.codecs.VersionedModel` and touches no stored payload: old
epochs keep decoding via the headers stamped into every value.

This driver measures both on the same store state:

* the retrain pause itself (``retrain(rewrite=True)`` — the legacy behaviour,
  kept exactly for this comparison — vs the default epoch install), and
* GET/SET throughput of a mixed workload that retrains mid-run.

The epoch pause should be roughly the cost of training alone, independent of
the key count; the rewrite pause grows with every stored value.
"""

from __future__ import annotations

import os
import time

from repro.core.extraction import ExtractionConfig
from repro.datasets import load_dataset
from repro.tierbase import PBCValueCompressor, TierBase

#: Workload sizes (small: the substrate is pure Python).
KEYS = 600
TRAIN = 96
MIXED_OPS = 800


def make_loaded_store(values: list[str]) -> TierBase:
    """A trained TierBase holding ``KEYS`` pbc_f-compressed values."""
    store = TierBase(
        compressor=PBCValueCompressor(config=ExtractionConfig(max_patterns=8, sample_size=64))
    )
    store.train(values[:TRAIN])
    for index, value in enumerate(values[:KEYS]):
        store.set(f"k{index}", value)
    return store


def measure_retrain_pause(values: list[str], rewrite: bool) -> float:
    """Seconds one retrain blocks the store, with and without the rewrite."""
    store = make_loaded_store(values)
    started = time.perf_counter()
    store.retrain(values[:TRAIN], rewrite=rewrite)
    return time.perf_counter() - started


def measure_mixed_throughput(values: list[str], rewrite: bool) -> tuple[float, float]:
    """``(ops_per_second, retrain_pause)`` of a GET/SET mix retraining mid-run."""
    store = make_loaded_store(values)
    started = time.perf_counter()
    pause = 0.0
    for op in range(MIXED_OPS):
        index = (op * 37) % KEYS
        if op == MIXED_OPS // 2:
            retrain_started = time.perf_counter()
            store.retrain(values[:TRAIN], rewrite=rewrite)
            pause = time.perf_counter() - retrain_started
        if op % 3 == 0:
            store.set(f"k{index}", values[index])
        else:
            store.get(f"k{index}")
    elapsed = time.perf_counter() - started
    return MIXED_OPS / elapsed if elapsed > 0 else 0.0, pause


def test_retrain_epoch_vs_rewrite(benchmark):
    values = load_dataset("kv1", count=KEYS)

    def run() -> dict:
        return {
            "rewrite_pause": measure_retrain_pause(values, rewrite=True),
            "epoch_pause": measure_retrain_pause(values, rewrite=False),
            "rewrite_mixed": measure_mixed_throughput(values, rewrite=True),
            "epoch_mixed": measure_mixed_throughput(values, rewrite=False),
        }

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    rewrite_ops, rewrite_pause = result["rewrite_mixed"]
    epoch_ops, epoch_pause = result["epoch_mixed"]
    print()
    print(
        f"retrain pause over {KEYS} keys: "
        f"rewrite {result['rewrite_pause'] * 1000:.1f}ms vs "
        f"epoch {result['epoch_pause'] * 1000:.1f}ms"
    )
    print(
        f"mixed {MIXED_OPS} ops with mid-run retrain: "
        f"rewrite {rewrite_ops:,.0f} ops/s (pause {rewrite_pause * 1000:.1f}ms) vs "
        f"epoch {epoch_ops:,.0f} ops/s (pause {epoch_pause * 1000:.1f}ms)"
    )

    # The epoch install does strictly less work than the stop-the-world
    # rewrite (training only, zero payloads touched), so it must pause less.
    # Single-shot wall-clock comparisons are informational on oversubscribed
    # shared CI runners (same policy as bench_stream_pipeline's speedup gate).
    if not os.environ.get("CI"):
        assert result["epoch_pause"] < result["rewrite_pause"]
        assert epoch_pause < rewrite_pause
