"""Table 8 — TierBase case study: memory usage and SET/GET throughput."""

from repro.bench import render_table, run_table8_tierbase


def test_table8_tierbase_case_study(benchmark, bench_settings):
    rows = benchmark.pedantic(run_table8_tierbase, args=(bench_settings,), iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Table 8: TierBase case study"))

    for workload in ("A", "B"):
        by_method = {row["method"]: row for row in rows if row["workload"] == workload}
        # Shape checks: both compressors save memory versus uncompressed, PBC_F
        # saves at least as much as the Zstd dictionary, and uncompressed SETs
        # remain the fastest (compression costs CPU).
        assert by_method["Zstd"]["memory_percent"] < 100.0
        assert by_method["PBC_F"]["memory_percent"] <= by_method["Zstd"]["memory_percent"] + 5.0
        assert by_method["Uncompressed"]["set_qps"] >= by_method["PBC_F"]["set_qps"]
