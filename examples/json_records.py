#!/usr/bin/env python
"""JSON scenario: PBC against JSON-specific binary serialisations.

Reproduces the Section 7.4.2 comparison in miniature (Tables 6 and 7): JSON
documents are compressed per record with the Ion-like self-describing binary
format, the BinPack-like schema-driven format, and PBC / PBC_F.  The point the
paper makes — pattern-based compression captures co-occurrence beyond the
schema's key level — shows up as PBC's lower per-record ratios.

Run with::

    python examples/json_records.py
"""

from repro.bench import render_table
from repro.core.compressor import PBCCompressor, PBCFCompressor
from repro.core.extraction import ExtractionConfig
from repro.datasets import JSON_DATASETS, load_dataset
from repro.jsonenc import BinPackCodec, IonLikeCodec, infer_schema


def main() -> None:
    rows = []
    for dataset in JSON_DATASETS:
        count = 120 if dataset == "unece" else 400
        records = load_dataset(dataset, count=count)
        original = sum(len(record.encode()) for record in records)

        ion = IonLikeCodec()
        binpack = BinPackCodec()
        binpack.train(records[:64])

        pbc = PBCCompressor(config=ExtractionConfig(max_patterns=16, sample_size=64))
        pbc.train(records[:96])
        pbc_f = PBCFCompressor(dictionary=pbc.dictionary, config=ExtractionConfig(max_patterns=16))
        pbc_f.train_residual(records[:96])

        rows.append(
            {
                "dataset": dataset,
                "Ion-B": round(sum(len(ion.compress(r.encode())) for r in records) / original, 3),
                "BP-D": round(sum(len(binpack.compress(r.encode())) for r in records) / original, 3),
                "PBC": round(pbc.measure(records).ratio, 3),
                "PBC_F": round(pbc_f.measure(records).ratio, 3),
            }
        )
    print(render_table(rows, title="Per-record JSON compression ratios (Table 6 scenario)"))

    # Show what the schema-driven baseline actually infers.
    sample = load_dataset("cities", count=50)
    schema = infer_schema([__import__("json").loads(record) for record in sample])
    print("\ninferred cities schema (BP-D input):")
    for name, node in schema.properties.items():
        marker = "required" if name in schema.required else "optional"
        print(f"  {name:14s} {node.kind:8s} ({marker})")


if __name__ == "__main__":
    main()
