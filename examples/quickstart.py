#!/usr/bin/env python
"""Quickstart: train PBC on machine-generated records and compress them.

This walks through the full PBC life cycle from the paper's Figure 1:

1. generate (or load) machine-generated records,
2. extract a pattern dictionary offline from a small sample,
3. compress and decompress individual records (random access friendly),
4. inspect the discovered patterns and the achieved compression ratio.

Run with::

    python examples/quickstart.py
"""

from repro import ExtractionConfig, PBCCompressor
from repro.datasets import load_dataset


def main() -> None:
    # 1. Machine-generated records: the synthetic stand-in for the paper's
    #    production key-value workload KV1 (accounting/charging records).
    records = load_dataset("kv1", count=2000)
    print(f"loaded {len(records)} records, example:\n  {records[0]}\n")

    # 2. Offline pattern extraction from a small sample (Figure 1a).
    compressor = PBCCompressor(config=ExtractionConfig(max_patterns=16, sample_size=128))
    report = compressor.train(records[:256])
    print(f"extracted {len(report.dictionary)} patterns from {report.sample_count} sampled records:")
    for pattern in report.dictionary:
        print(f"  [{pattern.pattern_id}] {pattern.display()}")
    print()

    # 3. Per-record compression and decompression (Figure 1b/c).
    record = records[1500]
    payload = compressor.compress(record)
    assert compressor.decompress(payload) == record
    print(f"one record: {len(record)} bytes -> {len(payload)} bytes compressed\n")

    # 4. Whole-dataset measurement.
    stats = compressor.measure(records)
    print(
        f"dataset ratio {stats.ratio:.3f} "
        f"({stats.compressed_bytes}/{stats.original_bytes} bytes), "
        f"outlier rate {stats.outlier_rate:.2%}, "
        f"compress {stats.compress_mb_per_second:.1f} MB/s, "
        f"decompress {stats.decompress_mb_per_second:.1f} MB/s"
    )


if __name__ == "__main__":
    main()
