#!/usr/bin/env python
"""Log archival scenario: PBC against a parser-based log compressor.

Mirrors the Table 5 experiment: system logs are compressed as whole files with
(a) the LogReducer-style parser-based codec and (b) PBC with an LZMA block
backend (PBC_L), and ratios plus throughput are compared.  It also shows the
random-access advantage of per-record PBC for interactive log lookup
(the Figure 5 story applied to logs).

Run with::

    python examples/log_archival.py
"""

import random
import time

from repro.bench import render_table
from repro.blockstore import BlockStore, RecordStore
from repro.compressors import LZMACodec, ZstdLikeCodec
from repro.core.compressor import PBCBlockCompressor, PBCCompressor
from repro.core.extraction import ExtractionConfig
from repro.datasets import LOG_DATASETS, load_dataset
from repro.logs import LogReducerCodec


def archive_comparison() -> None:
    rows = []
    for dataset in ("apache", "hdfs", "android"):
        lines = load_dataset(dataset, count=400)
        log_reducer = LogReducerCodec(preset=6).measure(lines)

        pbc = PBCCompressor(config=ExtractionConfig(max_patterns=16, sample_size=96))
        pbc.train(lines[:128])
        pbc_l = PBCBlockCompressor(pbc, LZMACodec(preset=6), name="PBC_L").measure(lines)

        rows.append(
            {
                "dataset": dataset,
                "LogReducer_ratio": round(log_reducer.ratio, 3),
                "PBC_L_ratio": round(pbc_l.ratio, 3),
                "LogReducer_decomp_MBps": round(log_reducer.decompress_mb_per_second, 2),
                "PBC_L_decomp_MBps": round(pbc_l.original_bytes / 1e6 / pbc_l.decompress_seconds, 2),
            }
        )
    print(render_table(rows, title="Log archival: LogReducer vs PBC_L (Table 5 scenario)"))


def random_access_demo() -> None:
    lines = load_dataset("hdfs", count=500)
    pbc = PBCCompressor(config=ExtractionConfig(max_patterns=16, sample_size=96))
    pbc.train(lines[:128])

    record_store = RecordStore.from_records(lines, pbc)
    block_store = BlockStore.from_records(lines, ZstdLikeCodec(level=3), block_size=64)

    rng = random.Random(1)
    indices = [rng.randrange(len(lines)) for _ in range(200)]
    per_record = record_store.measure_lookups(indices)
    per_block = block_store.measure_lookups(indices)

    print("\nRandom access to individual log lines (Figure 5 scenario):")
    print(f"  PBC per-record store : ratio {record_store.ratio:.3f}, {per_record.lookups_per_second:,.0f} lookups/s")
    print(f"  Zstd block store (64): ratio {block_store.ratio:.3f}, {per_block.lookups_per_second:,.0f} lookups/s")


def main() -> None:
    started = time.perf_counter()
    archive_comparison()
    random_access_demo()
    print(f"\ntotal example runtime: {time.perf_counter() - started:.1f}s over {len(LOG_DATASETS)} log dialects available")


if __name__ == "__main__":
    main()
