#!/usr/bin/env python
"""Stream archival scenario: compress a log stream to disk, then seek into it.

This walkthrough exercises the whole :mod:`repro.stream` subsystem on a
synthetic machine-generated log:

1. write a mixed stream (Apache access lines, then a burst of HDFS lines — a
   pattern drift) through the adaptive parallel pipeline into a seekable
   container file,
2. inspect the frame index: which codec each frame got, and where the drift
   detector retrained the pattern dictionary,
3. random-access single records — decompressing exactly one frame per lookup,
4. compare against whole-file LZMA archival (better ratio, no random access).

Run with::

    python examples/stream_archival.py
"""

import lzma
import random
import tempfile
import time
from pathlib import Path

from repro.bench import render_table
from repro.datasets import load_dataset
from repro.stream import (
    AdaptiveConfig,
    StreamConfig,
    StreamReader,
    StreamWriter,
    frame_codec_by_id,
)


def build_stream(path: Path, records: list[str]) -> None:
    config = StreamConfig(
        codec="adaptive",
        frame_records=400,
        workers=2,
        executor="thread",
        timed_stats=True,
        adaptive=AdaptiveConfig(sample_size=48, train_size=160, drift_window=2),
    )
    with StreamWriter(path, config) as writer:
        writer.write_many(records)
        summary = writer.close()
    stats = summary.stats
    assert stats is not None
    print(
        f"wrote {stats.records} records in {len(summary.frames)} frames: "
        f"{stats.original_bytes} -> {path.stat().st_size} bytes "
        f"(ratio {path.stat().st_size / stats.original_bytes:.3f}), "
        f"{summary.retrain_count} drift retrain(s)"
    )
    rows = [
        {
            "frame": position,
            "codec": frame_codec_by_id(frame.codec_id).name,
            "records": frame.record_count,
            "bytes": frame.length,
        }
        for position, frame in enumerate(summary.frames)
    ]
    print(render_table(rows, title="Frame index (note the codec switch after the drift)"))


def random_access_demo(path: Path, records: list[str]) -> None:
    with StreamReader(path) as reader:
        indices = random.sample(range(len(reader)), 8)
        started = time.perf_counter()
        for index in indices:
            assert reader.get(index) == records[index]
        elapsed = time.perf_counter() - started
        print(
            f"{len(indices)} random lookups in {elapsed * 1000:.1f} ms, "
            f"{reader.frames_decompressed} frame(s) decompressed "
            f"(of {reader.frame_count} total)"
        )


def archival_comparison(path: Path, records: list[str]) -> None:
    original = sum(len(record.encode('utf-8')) for record in records)
    whole_file = len(lzma.compress("\n".join(records).encode("utf-8"), preset=6))
    rows = [
        {
            "method": "stream container (adaptive, seekable)",
            "bytes": path.stat().st_size,
            "ratio": round(path.stat().st_size / original, 3),
            "random_access": "one frame per lookup",
        },
        {
            "method": "whole-file LZMA (Table 4 style)",
            "bytes": whole_file,
            "ratio": round(whole_file / original, 3),
            "random_access": "decompress everything",
        },
    ]
    print(render_table(rows, title="Archival trade-off"))


def main() -> None:
    random.seed(2023)
    records = load_dataset("apache", count=1600) + load_dataset("hdfs", count=800)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "logs.rps"
        build_stream(path, records)
        random_access_demo(path, records)
        archival_comparison(path, records)


if __name__ == "__main__":
    main()
