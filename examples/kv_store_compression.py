#!/usr/bin/env python
"""TierBase scenario: value compression inside an in-memory key-value store.

Reproduces the Section 7.5 integration in miniature: the same workload is
loaded into three TierBase instances — uncompressed, Zstd with a trained
dictionary (the store's original solution), and PBC_F (the paper's
contribution) — and memory usage plus SET/GET throughput are compared, like
Table 8.

Run with::

    python examples/kv_store_compression.py
"""

from repro.bench import render_table
from repro.core.extraction import ExtractionConfig
from repro.datasets import load_dataset
from repro.tierbase import (
    NoopValueCompressor,
    PBCValueCompressor,
    TierBase,
    ZstdDictValueCompressor,
    run_workload,
)


def main() -> None:
    rows = []
    for workload_name, dataset in (("A", "kv1"), ("B", "kv2")):
        values = load_dataset(dataset, count=600)
        baseline_memory = None
        for compressor in (
            NoopValueCompressor(),
            ZstdDictValueCompressor(level=3),
            PBCValueCompressor(config=ExtractionConfig(max_patterns=16, sample_size=96)),
        ):
            store = TierBase(compressor=compressor)
            result = run_workload(store, values, workload_name=workload_name, get_operations=len(values))
            if baseline_memory is None:
                baseline_memory = result.memory_bytes
            rows.append(
                {
                    "workload": workload_name,
                    "compressor": compressor.name,
                    "memory_%": round(100.0 * result.memory_bytes / baseline_memory, 1),
                    "set_qps": round(result.set_qps),
                    "get_qps": round(result.get_qps),
                    "needs_retraining": store.needs_retraining(),
                }
            )
    print(render_table(rows, title="TierBase value compression (Table 8 scenario)"))

    # Demonstrate the monitoring / re-training loop: feed the PBC store values
    # from a different workload so the unmatched rate rises.
    store = TierBase(compressor=PBCValueCompressor(config=ExtractionConfig(max_patterns=8, sample_size=64)))
    kv1 = load_dataset("kv1", count=300)
    store.train(kv1[:128])
    drifted = load_dataset("kv5", count=300)  # a different template family
    for index, value in enumerate(kv1 + drifted):
        store.set(f"key:{index}", value)
    print(
        f"\nafter workload drift: observed value ratio {store.monitor.ratio:.3f}, "
        f"needs retraining: {store.needs_retraining()}"
    )
    store.retrain(drifted[:128] + kv1[:128])
    print(f"after retraining:     observed value ratio {store.stats().value_ratio:.3f}")


if __name__ == "__main__":
    main()
