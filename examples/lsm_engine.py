#!/usr/bin/env python
"""Value compression inside an LSM storage engine (RocksDB/LevelDB-style).

The paper's introduction observes that key-value engines compress data in
blocks, which makes point lookups pay for whole-block decompression; PBC's
per-record compression avoids that.  This example stores a log workload in the
reproduction's LSM engine (:mod:`repro.lsm`) under three SSTable policies —

* values stored raw,
* data blocks compressed with the Zstd-like codec (RocksDB configuration), and
* values compressed individually with workload-trained PBC_F —

and reports on-disk space, point-lookup throughput and the effect of deletes,
flushes and compaction.

Run with::

    python examples/lsm_engine.py
"""

import random
import tempfile
from pathlib import Path

from repro.compressors import ZstdLikeCodec
from repro.core.extraction import ExtractionConfig
from repro.datasets import load_dataset
from repro.lsm import BlockCompressionPolicy, LSMEngine, PlainPolicy, RecordCompressionPolicy
from repro.tierbase import PBCValueCompressor


def build_engine(directory: Path, policy, items, compaction_trigger: int = 4) -> LSMEngine:
    engine = LSMEngine(
        directory,
        policy=policy,
        memtable_bytes=32 * 1024,
        block_bytes=4096,
        compaction_trigger=compaction_trigger,
    )
    for key, value in items:
        engine.put(key, value)
    engine.flush()
    return engine


def main() -> None:
    records = load_dataset("hdfs", count=1500)
    items = [(f"log:{index:07d}", record) for index, record in enumerate(records)]
    rng = random.Random(7)
    lookup_keys = [key for key, _ in rng.sample(items, 300)]

    pbc = PBCValueCompressor(config=ExtractionConfig(max_patterns=16, sample_size=96))
    pbc.train([value for _, value in items[:200]])

    policies = (
        ("raw values", PlainPolicy()),
        ("Zstd-like block compression", BlockCompressionPolicy(ZstdLikeCodec())),
        ("per-record PBC_F values", RecordCompressionPolicy(pbc)),
    )

    print(f"storing {len(items)} HDFS log lines in the LSM engine under three policies\n")
    print(f"{'policy':32s} {'disk bytes':>12s} {'space ratio':>12s} {'lookups/s':>12s}")
    with tempfile.TemporaryDirectory() as tmp:
        for name, policy in policies:
            engine = build_engine(Path(tmp) / name.replace(" ", "-"), policy, items)
            stats = engine.stats()
            timing = engine.measure_lookups(lookup_keys)
            print(
                f"{name:32s} {stats.sstable_file_bytes:>12,d} {stats.space_ratio:>12.3f} "
                f"{timing.lookups_per_second:>12,.0f}"
            )
            engine.close()

        # Show the full LSM life cycle with the PBC policy: overwrites, deletes,
        # flush and compaction.
        print("\nLSM life cycle with per-record PBC_F values:")
        engine = build_engine(
            Path(tmp) / "lifecycle", RecordCompressionPolicy(pbc), items[:600], compaction_trigger=100
        )
        for index in range(0, 600, 3):
            engine.delete(f"log:{index:07d}")
        engine.flush()
        before = engine.stats()
        engine.compact()
        after = engine.stats()
        print(f"  tables before/after compaction : {before.sstable_count} -> {after.sstable_count}")
        print(f"  disk bytes before/after        : {before.sstable_file_bytes:,d} -> {after.sstable_file_bytes:,d}")
        live = sum(1 for _ in engine.scan())
        print(f"  live entries after deletes     : {live}")
        engine.close()


if __name__ == "__main__":
    main()
