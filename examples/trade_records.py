#!/usr/bin/env python
"""Financial trade records: the paper's Section 1 motivating example, end to end.

The introduction of the paper shows a C ``struct trade`` serialised to JSON
with a fixed ``sprintf`` template, where the template accounts for three
quarters of every record.  This example

1. generates trade records from several serialisation templates (different
   services emit different layouts — exactly the multi-structure situation
   that defeats single-schema methods like PIDS),
2. trains PBC on a small sample and shows the templates it rediscovered,
3. compares PBC / PBC_F / PBC_H against a dictionary-trained Zstd-like codec
   and plain per-record Zstd on ratio, and
4. demonstrates random access: reading one trade never decompresses anything
   but that trade.

Run with::

    python examples/trade_records.py
"""

from repro import ExtractionConfig, PBCCompressor, PBCFCompressor, PBCHCompressor
from repro.compressors import ZstdLikeCodec, train_dictionary
from repro.datasets import load_dataset


def main() -> None:
    records = load_dataset("trades", count=3000)
    sample = records[:300]
    print(f"generated {len(records)} trade records; examples:")
    for record in records[:3]:
        print(f"  {record}")
    print()

    # Offline pattern extraction (Figure 1a).
    config = ExtractionConfig(max_patterns=12, sample_size=160)
    pbc = PBCCompressor(config=config)
    report = pbc.train(sample)
    print(f"PBC rediscovered {len(report.dictionary)} serialisation templates:")
    for pattern in report.dictionary:
        print(f"  [{pattern.pattern_id}] {pattern.display()}")
    print()

    # Per-record baselines: Zstd-like with and without an offline-trained dictionary.
    plain_zstd = ZstdLikeCodec()
    dictionary = train_dictionary((record.encode("utf-8") for record in sample), max_size=4096)
    dict_zstd = ZstdLikeCodec(dictionary=dictionary)

    def codec_ratio(codec) -> float:
        original = sum(len(record.encode("utf-8")) for record in records)
        compressed = sum(len(codec.compress(record.encode("utf-8"))) for record in records)
        return compressed / original

    pbc_f = PBCFCompressor(config=config)
    pbc_f.train(sample)
    pbc_h = PBCHCompressor(config=config, entropy="rans")
    pbc_h.train(sample)

    print("per-record compression ratio (lower is better):")
    print(f"  Zstd (no dictionary) : {codec_ratio(plain_zstd):.3f}")
    print(f"  Zstd (trained dict)  : {codec_ratio(dict_zstd):.3f}")
    print(f"  PBC                  : {pbc.measure(records).ratio:.3f}")
    print(f"  PBC_F (FSST stage)   : {pbc_f.measure(records).ratio:.3f}")
    print(f"  PBC_H (rANS stage)   : {pbc_h.measure(records).ratio:.3f}")
    print()

    # Random access: decompress one stored trade without touching the others.
    payloads = pbc.compress_many(records)
    index = 2048
    restored = pbc.decompress(payloads[index])
    assert restored == records[index]
    print(f"random access to trade #{index}: {len(payloads[index])} compressed bytes -> {restored}")


if __name__ == "__main__":
    main()
