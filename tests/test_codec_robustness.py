"""Cross-codec robustness tests: every registered codec, same contract.

These tests treat the codec registry as the single source of truth and verify
the properties the storage substrates rely on for *every* codec at once:
byte-exact roundtrips on representative machine-generated payloads, sane
behaviour on degenerate inputs, and no silent corruption when payloads are
truncated.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compressors import get_codec
from repro.datasets import load_dataset

#: The general-purpose byte codecs registered by :mod:`repro.compressors`.
#: Data-type-specific codecs that other packages add to the registry (the
#: Ion-like JSON codec, for instance) only accept their own input format and
#: are excluded from this byte-level contract sweep.
_GENERAL_PURPOSE_CODECS = ("zstd", "lz4", "snappy", "fsst", "gzip", "lzma", "repair", "sequitur")

#: Codecs whose compression is too slow for the large-payload cases.
_SLOW_CODECS = {"repair", "sequitur"}

REPRESENTATIVE_PAYLOADS = {
    "empty": b"",
    "single-byte": b"x",
    "short-record": b'{"symbol": "IBM", "side": "B", "quantity": 100, "price": 50.25}',
    "repetitive": b"GET /api/v1/orders?id=12345 HTTP/1.1 200\n" * 64,
    "binary": bytes(range(256)) * 4,
    "unicode": "clé=värde;值=データ;".encode("utf-8") * 16,
}


def all_codecs() -> list[str]:
    return list(_GENERAL_PURPOSE_CODECS)


@pytest.mark.parametrize("codec_name", all_codecs())
class TestCodecContract:
    @pytest.mark.parametrize("label", sorted(REPRESENTATIVE_PAYLOADS))
    def test_roundtrip_representative_payloads(self, codec_name, label):
        codec = get_codec(codec_name)
        payload = REPRESENTATIVE_PAYLOADS[label]
        assert codec.decompress(codec.compress(payload)) == payload

    def test_roundtrip_dataset_records(self, codec_name):
        codec = get_codec(codec_name)
        for dataset in ("kv1", "apache", "cities"):
            for record in load_dataset(dataset, count=5):
                payload = record.encode("utf-8")
                assert codec.decompress(codec.compress(payload)) == payload

    def test_compression_is_deterministic(self, codec_name):
        codec = get_codec(codec_name)
        payload = REPRESENTATIVE_PAYLOADS["repetitive"]
        assert codec.compress(payload) == codec.compress(payload)

    def test_record_convenience_helpers(self, codec_name):
        codec = get_codec(codec_name)
        record = "level=INFO worker=3 latency=35ms"
        assert codec.decompress_record(codec.compress_record(record)) == record

    def test_truncation_does_not_silently_return_the_original(self, codec_name):
        codec = get_codec(codec_name)
        payload = REPRESENTATIVE_PAYLOADS["repetitive"]
        blob = codec.compress(payload)
        truncated = blob[: max(1, len(blob) // 2)]
        try:
            result = codec.decompress(truncated)
        except Exception:
            return  # rejecting the damaged payload is the expected outcome
        assert result != payload

    def test_repetitive_machine_data_compresses(self, codec_name):
        codec = get_codec(codec_name)
        payload = REPRESENTATIVE_PAYLOADS["repetitive"]
        if hasattr(codec, "train"):
            # Trained codecs (FSST) only pay off after fitting their symbol table.
            codec.train([payload])
        assert len(codec.compress(payload)) < len(payload)


@pytest.mark.parametrize("codec_name", [name for name in all_codecs() if name not in _SLOW_CODECS])
class TestCodecProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(max_size=400))
    def test_roundtrip_property(self, codec_name, data):
        codec = get_codec(codec_name)
        assert codec.decompress(codec.compress(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(text=st.text(alphabet="abcdefgh0123456789=;:/-_ ", max_size=300))
    def test_roundtrip_machine_like_text_property(self, codec_name, text):
        codec = get_codec(codec_name)
        payload = text.encode("utf-8")
        assert codec.decompress(codec.compress(payload)) == payload
