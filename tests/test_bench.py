"""Tests for the benchmark harness (reporting, Pareto analysis, registry, runners)."""

import pytest

from repro.bench import (
    BenchmarkSettings,
    EXPERIMENTS,
    ParetoPoint,
    experiment_ids,
    get_experiment,
    is_pareto_optimal,
    pareto_frontier,
    render_table,
    run_experiment,
    run_fig9_pattern_size,
    run_table2_dataset_statistics,
)

TINY = BenchmarkSettings(
    record_count=60,
    train_count=40,
    max_patterns=4,
    sample_size=24,
    datasets=("kv1", "kv4"),
)


class TestReporting:
    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_render_alignment_and_title(self):
        rows = [{"dataset": "kv1", "ratio": 0.236}, {"dataset": "alilogs", "ratio": 0.425}]
        text = render_table(rows, title="Table X")
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert "dataset" in lines[1] and "ratio" in lines[1]
        assert "0.236" in text and "alilogs" in text

    def test_column_selection_and_missing_cells(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = render_table(rows, columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")


class TestPareto:
    def test_dominated_points_excluded(self):
        points = [
            ParetoPoint("good-ratio", 0.1, 10.0),
            ParetoPoint("good-speed", 0.5, 100.0),
            ParetoPoint("dominated", 0.6, 5.0),
        ]
        frontier = {point.name for point in pareto_frontier(points)}
        assert frontier == {"good-ratio", "good-speed"}
        assert is_pareto_optimal("good-ratio", points)
        assert not is_pareto_optimal("dominated", points)

    def test_single_point_is_optimal(self):
        points = [ParetoPoint("only", 0.3, 1.0)]
        assert pareto_frontier(points) == points

    def test_duplicate_points_both_kept(self):
        points = [ParetoPoint("a", 0.3, 1.0), ParetoPoint("b", 0.3, 1.0)]
        assert {point.name for point in pareto_frontier(points)} == {"a", "b"}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = set(experiment_ids())
        assert {"table2", "table3", "table4", "table5", "table6", "table7", "table8",
                "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b"} <= ids

    def test_experiments_carry_bench_module_paths(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.bench_module.startswith("benchmarks/")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("table99")


class TestRunners:
    def test_table2_rows(self):
        rows = run_table2_dataset_statistics(TINY)
        assert {row["dataset"] for row in rows} == set(TINY.datasets)
        for row in rows:
            assert row["generated_records"] == TINY.record_count
            assert row["generated_avg_len"] > 0

    def test_fig9_pattern_size_rows(self):
        rows = run_fig9_pattern_size(TINY, datasets=("kv1",), pattern_counts=(1, 4))
        assert len(rows) == 2
        assert all(0 < row["ratio"] <= 1.5 for row in rows)
        assert rows[0]["dictionary_bytes"] > 0

    def test_run_experiment_by_id(self):
        rows = run_experiment("table2", TINY)
        assert rows and "dataset" in rows[0]

    def test_table3_rows_have_expected_methods(self):
        rows = run_experiment("table3", TINY)
        methods = {row["method"] for row in rows}
        assert methods == {"FSST", "LZ4", "Zstd", "PBC", "PBC_F"}
        for row in rows:
            assert 0 < row["ratio"] <= 2.5
            assert row["comp_mb_s"] >= 0

    def test_fig7_criteria_rows(self):
        rows = run_experiment("fig7", TINY, datasets=("kv1",))
        criteria = {row["criterion"] for row in rows}
        assert criteria == {"ed", "entropy", "el"}
