"""Tests for the sharded concurrent KV service (``repro.service``)."""

from __future__ import annotations

import threading

import pytest

from repro.datasets import load_dataset
from repro.exceptions import ServiceError
from repro.service import (
    CompressedLRUCache,
    KVService,
    ServiceConfig,
    ShardRouter,
    make_value_compressor,
    run_mixed_workload,
)

from tests.conftest import make_template_records


@pytest.fixture
def values():
    return load_dataset("kv1", count=200)


def make_service(**overrides) -> KVService:
    defaults = dict(shard_count=4, compressor="pbc_f", cache_entries=128, train_size=64)
    defaults.update(overrides)
    return KVService(ServiceConfig(**defaults))


# -------------------------------------------------------------------- routing


class TestShardRouter:
    def test_routing_is_deterministic_across_instances(self):
        first, second = ShardRouter(8), ShardRouter(8)
        keys = [f"user:{index}" for index in range(500)]
        assert [first.shard_for(key) for key in keys] == [second.shard_for(key) for key in keys]

    def test_routing_spreads_sequential_keys(self):
        router = ShardRouter(4)
        placements = [router.shard_for(f"user:{index}") for index in range(1000)]
        counts = [placements.count(shard) for shard in range(4)]
        # Every shard gets a meaningful slice of a sequential key space.
        assert all(count > 100 for count in counts)

    def test_group_keys_preserves_positions(self):
        router = ShardRouter(3)
        keys = [f"k{index}" for index in range(40)]
        groups = router.group_keys(keys)
        flattened = sorted(position for positions in groups.values() for position in positions)
        assert flattened == list(range(40))
        for shard_id, positions in groups.items():
            assert all(router.shard_for(keys[position]) == shard_id for position in positions)

    def test_single_shard_and_invalid_count(self):
        assert ShardRouter(1).shard_for("anything") == 0
        with pytest.raises(ServiceError):
            ShardRouter(0)


# ---------------------------------------------------------------------- cache


class TestCompressedLRUCache:
    def test_hit_miss_and_recency(self):
        cache = CompressedLRUCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"  # refreshes "a"
        cache.put("c", b"3")  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        stats = cache.stats()
        assert stats.hits == 2 and stats.misses == 1 and stats.evictions == 1

    def test_byte_capacity_evicts(self):
        cache = CompressedLRUCache(max_entries=100, max_bytes=10)
        cache.put("a", b"x" * 6)
        cache.put("b", b"y" * 6)
        assert cache.get("a") is None
        assert cache.get("b") == b"y" * 6
        assert cache.stats().compressed_bytes <= 10

    def test_invalidate(self):
        cache = CompressedLRUCache()
        cache.put("a", b"1")
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None
        assert cache.stats().invalidations == 1


# -------------------------------------------------------------------- service


class TestKVServiceBasics:
    def test_set_get_delete_roundtrip(self, values):
        with make_service() as service:
            service.train(values[:64])
            for index, value in enumerate(values[:50]):
                service.set(f"k:{index}", value)
            assert len(service) == 50
            for index, value in enumerate(values[:50]):
                assert service.get(f"k:{index}") == value
            assert service.delete("k:0")
            assert not service.delete("k:0")
            assert service.get("k:0") is None
            assert service.get("nope") is None

    def test_mset_mget_preserve_order_and_missing_keys(self, values):
        with make_service() as service:
            service.train(values[:64])
            items = [(f"k:{index}", value) for index, value in enumerate(values[:40])]
            service.mset(items)
            keys = [key for key, _ in items] + ["missing:1", "missing:2"]
            results = service.mget(keys)
            assert results[:40] == [value for _, value in items]
            assert results[40:] == [None, None]
            assert service.mget([]) == []

    def test_values_are_stored_compressed(self, values):
        with make_service() as service:
            service.train(values[:64])
            service.mset([(f"k:{index}", value) for index, value in enumerate(values)])
            snapshot = service.snapshot()
            assert snapshot.ratio < 0.8
            assert all(shard.keys > 0 for shard in snapshot.shards)
            assert sum(shard.keys for shard in snapshot.shards) == len(values)

    def test_closed_service_rejects_operations(self, values):
        service = make_service()
        service.close()
        with pytest.raises(ServiceError):
            service.get("k")
        service.close()  # idempotent

    def test_invalid_configs(self):
        with pytest.raises(ServiceError):
            ServiceConfig(shard_count=0)
        with pytest.raises(ServiceError):
            ServiceConfig(backend="redis")
        with pytest.raises(ServiceError):
            ServiceConfig(compressor="brotli")
        with pytest.raises(ServiceError):
            make_value_compressor("nope")
        with pytest.raises(ServiceError):
            KVService(ServiceConfig(backend="lsm", directory=None))


class TestCacheIntegration:
    def test_get_fills_cache_and_hits_decompress(self, values):
        with make_service() as service:
            service.train(values[:64])
            service.set("k:0", values[0])
            assert service.get("k:0") == values[0]  # miss: fills the cache
            assert service.get("k:0") == values[0]  # hit: decompressed from cache
            snapshot = service.snapshot()
            assert snapshot.cache.hits >= 1
            assert snapshot.cache_hits >= 1
            # The cache holds the compressed payload, not the raw value.
            cached = service.cache.get("k:0")
            assert cached is not None and cached != values[0].encode("utf-8")

    def test_overwrite_invalidates_cache(self, values):
        with make_service() as service:
            service.train(values[:64])
            service.set("k:0", values[0])
            assert service.get("k:0") == values[0]
            assert "k:0" in service.cache
            service.set("k:0", values[1])
            assert "k:0" not in service.cache
            assert service.get("k:0") == values[1]

    def test_delete_invalidates_cache(self, values):
        with make_service() as service:
            service.train(values[:64])
            service.set("k:0", values[0])
            service.get("k:0")
            assert "k:0" in service.cache
            service.delete("k:0")
            assert "k:0" not in service.cache
            assert service.get("k:0") is None


class TestConcurrency:
    def test_concurrent_mixed_get_set_is_consistent(self, values):
        """Writers own disjoint key ranges; readers hammer every key meanwhile."""
        with make_service(cache_entries=64) as service:
            service.train(values[:64])
            workers = 4
            per_worker = 30
            errors: list[Exception] = []

            def writer(worker_id: int) -> None:
                try:
                    for index in range(per_worker):
                        key = f"w{worker_id}:{index}"
                        service.set(key, values[(worker_id * per_worker + index) % len(values)])
                        service.get(key)
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            def reader() -> None:
                try:
                    for index in range(per_worker * 2):
                        service.mget([f"w{index % workers}:{index % per_worker}"])
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [
                threading.Thread(target=writer, args=(worker_id,)) for worker_id in range(workers)
            ] + [threading.Thread(target=reader) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert errors == []
            # After the dust settles, every written key holds exactly its value.
            for worker_id in range(workers):
                for index in range(per_worker):
                    expected = values[(worker_id * per_worker + index) % len(values)]
                    assert service.get(f"w{worker_id}:{index}") == expected
            snapshot = service.snapshot()
            assert snapshot.sets == workers * per_worker

    def test_mixed_workload_driver(self, values):
        with make_service() as service:
            result = run_mixed_workload(
                service, values, operations=400, get_fraction=0.6, batch_size=8, clients=2
            )
            assert result.operations == 400
            assert result.get_operations + result.set_operations == 400
            assert result.ops_per_second > 0
            assert result.snapshot.cache.hit_rate > 0.0
            assert result.snapshot.get_latency.p99_ms >= result.snapshot.get_latency.p50_ms


class TestRetraining:
    def test_injected_drift_triggers_background_retraining(self):
        """Train on one template family, then write a different one: the
        outlier rate crosses the monitor threshold and the shard retrains."""
        trained = make_template_records(120, seed=3)
        drifted = [
            f"DRIFT|{index:06d}|completely=different&layout={index * 7}" for index in range(400)
        ]
        with KVService(
            ServiceConfig(shard_count=2, compressor="pbc", cache_entries=64, train_size=64)
        ) as service:
            service.train(trained)
            service.mset([(f"d:{index}", value) for index, value in enumerate(drifted)])
            # Retrain tasks are queued on the shard executors; snapshot() runs
            # after them because each executor is single-worker FIFO.
            snapshot = service.snapshot()
            assert snapshot.retrain_events >= 1
            # Values written before the retrain still round-trip afterwards.
            results = service.mget([f"d:{index}" for index in range(len(drifted))])
            assert results == drifted

    def test_auto_retrain_can_be_disabled(self):
        trained = make_template_records(120, seed=3)
        drifted = [f"DRIFT|{index:06d}|other-layout={index * 3}" for index in range(300)]
        with KVService(
            ServiceConfig(
                shard_count=2, compressor="pbc", train_size=64, auto_retrain=False
            )
        ) as service:
            service.train(trained)
            service.mset([(f"d:{index}", value) for index, value in enumerate(drifted)])
            assert service.snapshot().retrain_events == 0


class TestLSMBackend:
    def test_lsm_backend_roundtrip_and_cache(self, tmp_path, values):
        config = ServiceConfig(
            shard_count=2, backend="lsm", compressor="pbc", directory=tmp_path, cache_entries=64
        )
        with KVService(config) as service:
            service.train(values[:64])
            service.mset([(f"x:{index}", value) for index, value in enumerate(values[:80])])
            assert service.get("x:5") == values[5]
            assert service.get("x:5") == values[5]  # served from the compressed cache
            assert service.snapshot().cache.hits >= 1
            assert service.delete("x:5")
            assert service.get("x:5") is None
            snapshot = service.snapshot()
            assert all(shard.backend == "lsm" for shard in snapshot.shards)
            assert snapshot.ratio < 1.0
        # Shard directories were created on disk.
        assert sorted(path.name for path in tmp_path.iterdir()) == ["shard-000", "shard-001"]
