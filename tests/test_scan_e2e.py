"""End-to-end scans over the wire while the key range is under write fire.

The consistency bar: a wire scan's result is always a key-ordered,
duplicate-free view with no tombstoned keys and no torn values — even while
concurrent writers mutate the scanned range, while other clients pipeline
requests on the same server, and while a drift-triggered retrain swaps the
compression model mid-scan.  Per-shard scans run on the shard worker (so
each shard contributes a consistent slice); the key set is held constant
under update-only write fire, so full-range scans must see exactly the
preloaded key population every time.

Every wait is bounded so a regression fails loudly instead of hanging.
"""

from __future__ import annotations

import threading

import pytest

from repro.net import KVClient, ServerConfig, ThreadedKVServer
from repro.net.server import SCAN_CHUNK_PAIRS
from repro.service import KVService, ServiceConfig

from tests.conftest import make_template_records

WAIT = 30.0
KEYS = 200


@pytest.fixture
def server():
    service = KVService(ServiceConfig(shard_count=2, compressor="none"))
    threaded = ThreadedKVServer(service, ServerConfig(port=0, max_inflight=32))
    threaded.start()
    try:
        yield threaded
    finally:
        threaded.stop()
        service.close()


def preload(host: str, port: int, universe: list[str]) -> list[str]:
    keys = [f"s{index:05d}" for index in range(KEYS)]
    with KVClient(host, port, timeout=WAIT) as client:
        client.mset(
            [(key, universe[index % len(universe)]) for index, key in enumerate(keys)]
        )
    return keys


def check_scan(results, keys, universe, deleted=frozenset()):
    """One scan's consistency bar; returns nothing, asserts everything."""
    scanned = [key for key, _ in results]
    assert scanned == sorted(scanned), "scan keys out of order"
    assert len(scanned) == len(set(scanned)), "duplicate keys in one scan"
    assert set(scanned) == set(keys) - deleted, "lost or resurfaced keys"
    for key, value in results:
        assert value in universe, f"torn value at {key!r}"


class TestScanUnderWrites:
    def test_scans_stay_consistent_under_concurrent_writers(self, server):
        """4 writers hammer the range while 3 clients scan it in a loop."""
        host, port = server.address
        universe = [f"value-{index:04d}" for index in range(50)]
        keys = preload(host, port, universe)
        stop = threading.Event()
        failures: list[BaseException] = []

        def writer_loop(writer_id: int) -> None:
            import random

            rng = random.Random(writer_id)
            try:
                with KVClient(host, port, timeout=WAIT) as client:
                    while not stop.is_set():
                        batch = [
                            (keys[rng.randrange(KEYS)], universe[rng.randrange(len(universe))])
                            for _ in range(16)
                        ]
                        client.mset(batch)
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        def scanner_loop() -> None:
            try:
                with KVClient(host, port, pool_size=1, timeout=WAIT) as client:
                    for _ in range(15):
                        check_scan(list(client.scan("s", "t")), keys, universe)
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        writers = [threading.Thread(target=writer_loop, args=(seed,)) for seed in range(4)]
        scanners = [threading.Thread(target=scanner_loop) for _ in range(3)]
        for thread in writers + scanners:
            thread.start()
        for thread in scanners:
            thread.join(timeout=WAIT)
        stop.set()
        for thread in writers:
            thread.join(timeout=WAIT)
        assert not failures, failures

    def test_tombstoned_keys_never_resurface_in_scans(self, server):
        """Keys deleted before scanning stay invisible while writers keep
        updating the surviving keys."""
        host, port = server.address
        universe = [f"value-{index:04d}" for index in range(20)]
        keys = preload(host, port, universe)
        deleted = frozenset(keys[::7])
        with KVClient(host, port, timeout=WAIT) as client:
            for key in sorted(deleted):
                assert client.delete(key)
        stop = threading.Event()
        failures: list[BaseException] = []
        live = [key for key in keys if key not in deleted]

        def writer_loop() -> None:
            import random

            rng = random.Random(99)
            try:
                with KVClient(host, port, timeout=WAIT) as client:
                    while not stop.is_set():
                        client.set(
                            live[rng.randrange(len(live))],
                            universe[rng.randrange(len(universe))],
                        )
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        writer = threading.Thread(target=writer_loop)
        writer.start()
        try:
            with KVClient(host, port, timeout=WAIT) as client:
                for _ in range(20):
                    check_scan(
                        list(client.scan("s", "t")), keys, universe, deleted=deleted
                    )
        finally:
            stop.set()
            writer.join(timeout=WAIT)
        assert not failures, failures

    def test_limit_returns_exact_global_prefix_under_writes(self, server):
        host, port = server.address
        universe = [f"value-{index:04d}" for index in range(10)]
        keys = preload(host, port, universe)
        with KVClient(host, port, timeout=WAIT) as client:
            results = list(client.scan("s", "t", limit=17))
            assert [key for key, _ in results] == sorted(keys)[:17]


class TestChunkedScanResponses:
    def test_scan_larger_than_one_chunk_arrives_complete_and_ordered(self, server):
        """More results than SCAN_CHUNK_PAIRS forces a multi-frame MKVALUE
        stream; the client must reassemble it completely, in order."""
        host, port = server.address
        count = SCAN_CHUNK_PAIRS * 2 + 57
        with KVClient(host, port, timeout=WAIT) as client:
            for start in range(0, count, 64):
                client.mset(
                    [
                        (f"c{index:06d}", f"v{index}")
                        for index in range(start, min(start + 64, count))
                    ]
                )
            results = list(client.scan("c", "d"))
        assert len(results) == count
        assert results == [(f"c{index:06d}", f"v{index}") for index in range(count)]

    def test_abandoned_scan_does_not_poison_the_pool(self, server):
        """Dropping a scan iterator mid-stream discards that connection; the
        client keeps working for every later request."""
        host, port = server.address
        with KVClient(host, port, pool_size=1, timeout=WAIT) as client:
            client.mset([(f"c{index:06d}", "v") for index in range(SCAN_CHUNK_PAIRS * 2)])
            iterator = client.scan("c", "d")
            next(iterator)  # first chunk in flight...
            iterator.close()  # ...abandoned mid-stream
            assert client.get("c000000") == "v"
            assert len(list(client.scan("c", "d"))) == SCAN_CHUNK_PAIRS * 2

    def test_other_clients_progress_while_a_big_scan_streams(self, server):
        """A bounded-chunk scan cannot head-of-line-block other connections."""
        host, port = server.address
        with KVClient(host, port, timeout=WAIT) as loader:
            loader.mset([(f"c{index:06d}", "v" * 100) for index in range(1500)])
        with KVClient(host, port, pool_size=1, timeout=WAIT) as scanner:
            iterator = scanner.scan("c", "d")
            consumed = [next(iterator) for _ in range(10)]  # scan parked mid-stream
            with KVClient(host, port, timeout=WAIT) as other:
                assert other.ping()
                other.set("x", "y")
                assert other.get("x") == "y"
            rest = list(iterator)
            assert len(consumed) + len(rest) == 1500


def test_drift_retrain_mid_scan_zero_stale_decodes():
    """Drifted writes force a background retrain while a scanner loops over
    the trained keys: every scanned value must decode exactly (no stale
    epochs), and at least one retrain must actually fire."""
    trained = make_template_records(120, seed=3)
    drifted = [
        f"DRIFT|{index:06d}|completely=different&layout={index * 7}"
        for index in range(300)
    ]
    service = KVService(
        ServiceConfig(shard_count=2, compressor="pbc", cache_entries=128, train_size=64)
    )
    service.train(trained)
    stop = threading.Event()
    failures: list[BaseException] = []
    allowed = set(trained)

    with ThreadedKVServer(service, ServerConfig(port=0)) as threaded:
        host, port = threaded.address
        with KVClient(host, port, timeout=WAIT) as writer:
            writer.mset([(f"t:{index:04d}", value) for index, value in enumerate(trained)])

        def scanner_loop() -> None:
            try:
                with KVClient(host, port, pool_size=1, timeout=WAIT) as scanner:
                    while not stop.is_set():
                        results = list(scanner.scan("t:", "t;"))
                        assert len(results) == len(trained)
                        for key, value in results:
                            assert value in allowed, f"stale decode at {key!r}"
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        scanner = threading.Thread(target=scanner_loop)
        scanner.start()
        try:
            with KVClient(host, port, timeout=WAIT) as writer:
                for start in range(0, len(drifted), 25):
                    writer.mset(
                        [
                            (f"d:{start + offset}", value)
                            for offset, value in enumerate(drifted[start : start + 25])
                        ]
                    )
                stats = writer.stats()
        finally:
            stop.set()
            scanner.join(timeout=WAIT)
    service.close()
    assert not failures, failures
    assert stats["retrain_events"] >= 1, stats