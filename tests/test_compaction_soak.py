"""Compaction soak: concurrent writers/scanners plus kill-at-random-point
crash injection while background compaction is running.

The crash harness reuses the exact-ack protocol of ``test_durability.py``
(see ``durability_worker.py``): the worker runs a deterministic op stream —
single puts, batched ``put_many``, deletes, flushes, parked scans — against
a background-compaction engine and acks each completed op over a pipe.  The
parent SIGKILLs it after ``m`` acks land, so the kill falls into an
arbitrary crash window: mid-WAL-batch, mid-flush, or — the new surface —
mid-*merge* on the scheduler thread (torn ``.tmp`` output, output published
but inputs not yet retired).  Recovery must land on a state explained by
the ack stream: some acked prefix, at most one unacked op, and for a torn
``put_many`` batch a strict prefix of that batch.
"""

from __future__ import annotations

import itertools
import sys
import threading
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))  # for durability_worker
import durability_worker as worker

from tests.test_durability import matching_prefix, run_and_kill

from repro.lsm import LSMEngine


def compaction_candidates(
    ops: list, lower: int, upper: int
) -> list[dict[str, str]]:
    """Every legal recovered state: full prefixes plus torn-batch prefixes.

    For each candidate completed-op count ``m`` the state after ``ops[:m]``
    is legal; if ``ops[m]`` is a ``put_many`` batch, the WAL may addition-
    ally have persisted any strict prefix of that batch (a torn batch
    replays as a prefix — the engine's documented guarantee).
    """
    states = []
    for m in range(lower, upper):
        base = worker.apply_compaction(ops[:m])
        states.append(base)
        if m < len(ops) and ops[m][0] == "batch":
            for cut in range(1, len(ops[m][1])):
                states.append(worker.apply_partial_batch(base, ops[m][1], cut))
    return states


def check_compaction_recovery(
    directory: Path, sync_mode: str, seed: int, m_drained: int
) -> None:
    ops = list(itertools.islice(worker.compaction_ops(seed), m_drained + 2))
    # Recover with the same background configuration the worker crashed
    # under: the scheduler must come up cleanly over whatever the kill left
    # (quarantined tmp files, superseded tables, a torn WAL tail).
    engine = LSMEngine(
        directory,
        memtable_bytes=1024,
        compaction_trigger=2,
        sync_mode=sync_mode,
        background_compaction=True,
    )
    try:
        recovered = dict(engine.scan())
    finally:
        engine.close()
    lower = 0 if sync_mode == "none" else m_drained
    candidates = compaction_candidates(ops, lower, m_drained + 2)
    match = matching_prefix(recovered, candidates)
    assert match is not None, (
        f"recovered state matches no acked prefix (sync_mode={sync_mode}, "
        f"seed={seed}, m_drained={m_drained}): {sorted(recovered)[:6]}..."
    )


class TestCrashDuringBackgroundCompaction:
    @pytest.mark.parametrize("seed", [11, 47, 203])
    @pytest.mark.parametrize("sync_mode", ["fsync", "flush"])
    def test_kill_at_random_point_recovers_acked_prefix(
        self, tmp_path, sync_mode, seed
    ):
        kill_after = 40 + (seed % 37)
        m = run_and_kill(
            ["compaction", str(tmp_path), sync_mode, str(seed)], kill_after
        )
        check_compaction_recovery(tmp_path, sync_mode, seed, m)

    def test_kill_in_none_mode_recovers_some_prefix(self, tmp_path):
        seed = 77
        m = run_and_kill(["compaction", str(tmp_path), "none", str(seed)], 60)
        check_compaction_recovery(tmp_path, "none", seed, m)

    def test_recovery_is_idempotent(self, tmp_path):
        """Re-opening a crashed store repeatedly converges: same state every
        time, no quarantine churn after the first recovery."""
        seed = 31
        m = run_and_kill(["compaction", str(tmp_path), "fsync", str(seed)], 55)
        states = []
        for _ in range(3):
            engine = LSMEngine(
                tmp_path,
                memtable_bytes=1024,
                compaction_trigger=2,
                sync_mode="fsync",
                background_compaction=True,
            )
            try:
                states.append(dict(engine.scan()))
            finally:
                engine.close()
        assert states[0] == states[1] == states[2]
        check_compaction_recovery(tmp_path, "fsync", seed, m)


class TestConcurrentSoak:
    def test_writers_and_scanners_race_the_compactor(self, tmp_path):
        """In-process soak: parallel writers (put + put_many), parallel
        scanners parked mid-iteration, background merges throughout — no
        exceptions, no lost acked write, scheduler healthy at the end."""
        engine = LSMEngine(
            tmp_path,
            memtable_bytes=2048,
            compaction_trigger=2,
            sync_mode="none",
            background_compaction=True,
        )
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer(worker_id: int) -> None:
            try:
                for index in range(300):
                    key = f"w{worker_id}:{index:04d}"
                    if index % 5 == 4:
                        engine.put_many(
                            [
                                (f"w{worker_id}:batch:{index:04d}:{n}", "b" * 48)
                                for n in range(4)
                            ]
                        )
                    else:
                        engine.put(key, f"value-{worker_id}-{index}" + "x" * 32)
                    if index % 40 == 39:
                        engine.flush()
            except BaseException as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        def scanner() -> None:
            try:
                while not stop.is_set():
                    iterator = engine.scan()
                    for _ in itertools.islice(iterator, 50):
                        pass  # park partway, drop the iterator mid-table
                    list(itertools.islice(engine.scan("w1:", "w2:"), 25))
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        writers = [threading.Thread(target=writer, args=(n,)) for n in range(3)]
        scanners = [threading.Thread(target=scanner) for _ in range(2)]
        try:
            for thread in writers + scanners:
                thread.start()
            for thread in writers:
                thread.join(timeout=120)
            stop.set()
            for thread in scanners:
                thread.join(timeout=60)
            assert not errors, errors
            assert all(not thread.is_alive() for thread in writers + scanners)
            assert engine._scheduler is not None
            assert engine._scheduler.alive and engine._scheduler.error is None
            # Every non-overwritten write is readable after the dust settles.
            for worker_id in range(3):
                for index in range(0, 300, 37):
                    if index % 5 == 4:
                        continue  # that index issued a batch, not the keyed put
                    key = f"w{worker_id}:{index:04d}"
                    assert (
                        engine.get(key) == f"value-{worker_id}-{index}" + "x" * 32
                    ), key
        finally:
            engine.close()
