"""Tests for the minimal encoding-length merge dynamic programs (Algorithms 1-2)."""

from hypothesis import given, settings, strategies as st

from repro.core.alignment import generic_merge, merge_increment_bounded, monotonic_merge
from repro.core.distance import one_gram_distance
from repro.core.pattern import WILDCARD, tokens_from_string, tokens_to_display


def merge_strings(left: str, right: str, size_x: int = 1, size_y: int = 1):
    return monotonic_merge(tokens_from_string(left), tokens_from_string(right), size_x, size_y)


class TestMonotonicMerge:
    def test_identical_strings_keep_everything(self):
        result = merge_strings("abcdef", "abcdef")
        assert result.increment == 0
        assert tokens_to_display(result.tokens) == "abcdef"

    def test_paper_example_structure(self):
        # Example 2 / Figure 4: merging 'ab3*2' and 'ab*12'.
        tokens_x = ["a", "b", "3", WILDCARD, "2"]
        tokens_y = ["a", "b", WILDCARD, "1", "2"]
        result = monotonic_merge(tokens_x, tokens_y, 1, 1)
        display = tokens_to_display(result.tokens)
        assert display.startswith("ab")
        assert display.endswith("2")
        assert "*" in display

    def test_disjoint_strings_become_wildcard(self):
        result = merge_strings("aaa", "bbb")
        assert tokens_to_display(result.tokens) == "*"
        assert result.increment > 0

    def test_common_template_is_preserved(self):
        result = merge_strings("user-11-x", "user-42-y")
        display = tokens_to_display(result.tokens)
        assert display.startswith("user-")
        assert "*" in display

    def test_separators_survive_on_ties(self):
        # Keeping the ':' separators is encoding-length neutral under VARCHAR but
        # preferred by the literal-count tie-breaking.
        result = merge_strings("cnt:alpha:11:2222", "cnt:beta:93:4871")
        display = tokens_to_display(result.tokens)
        assert display.count(":") == 3

    def test_empty_inputs(self):
        assert monotonic_merge([], [], 1, 1).increment == 0
        result = monotonic_merge(tokens_from_string("ab"), [], 2, 3)
        assert tokens_to_display(result.tokens) == "*"

    def test_increment_scales_with_cluster_size(self):
        small = merge_strings("abcX", "abcY", 1, 1)
        large = merge_strings("abcX", "abcY", 10, 10)
        assert large.increment > small.increment

    def test_merged_pattern_is_common_subsequence(self):
        left, right = "order_1234_sym_IBM", "order_77_sym_GOOG"
        result = merge_strings(left, right)
        literals = [token for token in result.tokens if token is not WILDCARD]

        def is_subsequence(needle, haystack):
            iterator = iter(haystack)
            return all(character in iterator for character in needle)

        assert is_subsequence(literals, left)
        assert is_subsequence(literals, right)

    @given(
        st.text(alphabet="ab1:", max_size=16),
        st.text(alphabet="ab1:", max_size=16),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_pattern_always_common_subsequence(self, left, right, size_x, size_y):
        result = monotonic_merge(tokens_from_string(left), tokens_from_string(right), size_x, size_y)
        literals = [token for token in result.tokens if token is not WILDCARD]

        def is_subsequence(needle, haystack):
            iterator = iter(haystack)
            return all(character in iterator for character in needle)

        assert is_subsequence(literals, left)
        assert is_subsequence(literals, right)

    @given(st.text(alphabet="abc12-", max_size=14), st.text(alphabet="abc12-", max_size=14))
    @settings(max_examples=60, deadline=None)
    def test_one_gram_distance_is_lower_bound(self, left, right):
        result = monotonic_merge(tokens_from_string(left), tokens_from_string(right), 1, 1)
        assert result.increment >= one_gram_distance(left, right)


class TestBoundedMerge:
    def test_matches_unbounded_when_bound_is_loose(self):
        for left, right in (("abc", "abd"), ("user-1", "user-22"), ("xyz", "pqr")):
            full = merge_strings(left, right)
            bounded = merge_increment_bounded(
                tokens_from_string(left), tokens_from_string(right), 1, 1, bound=10**9
            )
            assert bounded == full.increment

    def test_returns_none_when_bound_exceeded(self):
        result = merge_increment_bounded(
            tokens_from_string("aaaaaaaaaa"), tokens_from_string("bbbbbbbbbb"), 5, 5, bound=1
        )
        assert result is None

    @given(
        st.text(alphabet="abc1-", min_size=1, max_size=12),
        st.text(alphabet="abc1-", min_size=1, max_size=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_consistency_property(self, left, right, size_x, size_y):
        tokens_x = tokens_from_string(left)
        tokens_y = tokens_from_string(right)
        full = monotonic_merge(tokens_x, tokens_y, size_x, size_y)
        bounded = merge_increment_bounded(tokens_x, tokens_y, size_x, size_y, bound=10**9)
        assert bounded == full.increment


class TestGenericMerge:
    def test_identical_records(self):
        tokens = tokens_from_string("abc1")
        result = generic_merge(["abc1"], ["abc1"], tokens, tokens)
        assert result.increment == 0
        assert tokens_to_display(result.tokens) == "abc1"

    def test_prefers_cheap_field_encodings(self):
        # The digit fields can be stored as integers, so the generic DP should
        # keep the shared literal prefix as pattern.
        result = generic_merge(
            ["id=1234"], ["id=5678"], tokens_from_string("id=1234"), tokens_from_string("id=5678")
        )
        display = tokens_to_display(result.tokens)
        assert display.startswith("id=")

    def test_agreement_with_monotonic_on_small_inputs(self):
        # On tiny inputs both DPs must find patterns of equal VARCHAR quality
        # (the generic DP optimises real encoders, so it can only be <=).
        for left, right in (("ab1", "ab2"), ("x=1,y=2", "x=9,y=8")):
            monotonic = merge_strings(left, right)
            generic = generic_merge(
                [left], [right], tokens_from_string(left), tokens_from_string(right)
            )
            assert generic.increment <= max(monotonic.increment, 0) + len(left) + len(right)
