"""Overload-protection tests: bounded queues, rate limits, and size limits.

The ISSUE's protection bar: pushing an open-loop workload past
``max_inflight`` keeps the in-flight gauge bounded (backpressure, not
collapse); a rate-limited connection gets typed
:class:`~repro.exceptions.RateLimitedError` while an unlimited peer on the
same server is still served; an oversized SET is refused with
:class:`~repro.exceptions.LimitExceededError` *without* killing the
connection — and every rejection shows up as a labelled
``repro_rejections_total`` counter.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import LimitExceededError, RateLimitedError, RemoteError
from repro.net import KVClient, ServerConfig, ThreadedKVServer, run_open_loop_workload
from repro.obs import parse_text
from repro.service import KVService, ServiceConfig

from tests.conftest import make_template_records

#: Bound on every blocking wait in this file.
WAIT = 30.0


def _serve(config: ServerConfig):
    service = KVService(ServiceConfig(shard_count=2, compressor="none"))
    threaded = ThreadedKVServer(service, config)
    threaded.start()
    return service, threaded


def _rejections(host: str, port: int) -> dict[tuple[str, str], float]:
    """``{(opcode, reason): count}`` from a wire scrape."""
    with KVClient(host, port, pool_size=1) as client:
        samples = parse_text(client.metrics())
    return {
        (dict(labels)["opcode"], dict(labels)["reason"]): value
        for (name, labels), value in samples.items()
        if name == "repro_rejections_total"
    }


# ------------------------------------------------------------------ queue depth


class TestBoundedQueue:
    def test_inflight_gauge_stays_bounded_past_max_inflight(self):
        """An open-loop workload offered far past a tiny ``max_inflight``
        must keep the in-flight gauge within the documented bound
        (``max_inflight + 2`` per connection) — backpressure holds the
        backlog in the sockets, not in server memory."""
        max_inflight = 4
        workers = 4
        service, server = _serve(ServerConfig(port=0, max_inflight=max_inflight))
        try:
            host, port = server.address
            gauge = server.server.registry.get("repro_inflight_requests")
            assert gauge is not None
            observed: list[float] = []
            stop = threading.Event()

            def sample() -> None:
                while not stop.is_set():
                    observed.append(gauge.value)

            sampler = threading.Thread(target=sample, name="gauge-sampler")
            sampler.start()
            try:
                result = run_open_loop_workload(
                    host, port, make_template_records(64), rate=20_000.0,
                    operations=4000, workers=workers, timeout=WAIT,
                )
            finally:
                stop.set()
                sampler.join(timeout=WAIT)
            assert result.errors == 0
            assert result.completed == 4000
            # One loadgen connection per worker, plus the preload connection.
            bound = (workers + 1) * (max_inflight + 2)
            assert max(observed) <= bound
            assert max(observed) >= 1, "sampler never saw a request in flight"
            assert gauge.value == 0, "in-flight gauge must drain back to zero"
        finally:
            server.stop()
            service.close()


# ------------------------------------------------------------------- rate limit


class TestRateLimit:
    def test_limited_connection_rejected_while_peer_is_served(self):
        """Connection A blasting past its per-connection budget gets a typed
        RateLimitedError; connection B (its own fresh bucket) keeps being
        served; the rejection is counted with reason="rate"."""
        service, server = _serve(
            ServerConfig(port=0, rate_limit=25.0, rate_burst=10)
        )
        try:
            host, port = server.address
            with KVClient(host, port, pool_size=1) as blaster:
                blaster.set("k", "v")
                with pytest.raises(RateLimitedError) as excinfo:
                    for _ in range(200):
                        blaster.get("k")
                assert isinstance(excinfo.value, RemoteError)
                assert "req/s" in str(excinfo.value)

                # The offending connection survives its own rejection: after
                # a refill interval it is served again.
                time.sleep(0.2)
                assert blaster.get("k") == "v"

                # An independent connection draws from its own bucket.
                with KVClient(host, port, pool_size=1) as peer:
                    for index in range(5):
                        peer.set(f"peer-{index}", "ok")
                        assert peer.get(f"peer-{index}") == "ok"

            rejections = _rejections(host, port)
            assert rejections.get(("GET", "rate"), 0) >= 1
        finally:
            server.stop()
            service.close()

    def test_open_loop_reports_typed_rejections(self):
        """Open-loop load far past the rate budget: rejections surface in the
        result's error tally under the typed exception name, and completions
        plus errors still account for every offered operation."""
        service, server = _serve(ServerConfig(port=0, rate_limit=20.0, rate_burst=5))
        try:
            host, port = server.address
            result = run_open_loop_workload(
                host, port, ["v"], rate=2000.0, operations=400,
                workers=2, preload=False, timeout=WAIT,
            )
            assert result.errors > 0
            assert result.error_kinds.get("RateLimitedError", 0) == result.errors
            assert result.completed + result.errors == 400
        finally:
            server.stop()
            service.close()


# ------------------------------------------------------------------ size limits


class TestSizeLimits:
    def test_oversized_set_is_rejected_without_killing_connection(self):
        service, server = _serve(
            ServerConfig(port=0, max_value_bytes=64, max_batch_items=4)
        )
        try:
            host, port = server.address
            with KVClient(host, port, pool_size=1) as client:
                with pytest.raises(LimitExceededError) as excinfo:
                    client.set("big", "x" * 1000)
                assert "64" in str(excinfo.value)
                # pool_size=1: this MUST be the same TCP connection — the
                # rejection refused one request, not the session.
                client.set("small", "ok")
                assert client.get("small") == "ok"

                with pytest.raises(LimitExceededError):
                    client.mget([f"k{index}" for index in range(16)])
                with pytest.raises(LimitExceededError):
                    client.mset([(f"k{index}", "v") for index in range(16)])
                assert client.get("small") == "ok"

            rejections = _rejections(host, port)
            assert rejections.get(("SET", "value_bytes")) == 1
            assert rejections.get(("MGET", "batch_items")) == 1
            assert rejections.get(("MSET", "batch_items")) == 1
        finally:
            server.stop()
            service.close()

    def test_unlimited_server_accepts_the_same_payloads(self):
        """The default config is byte-for-byte the pre-observability
        behaviour: no limit objects engage, nothing is rejected."""
        service, server = _serve(ServerConfig(port=0))
        try:
            host, port = server.address
            with KVClient(host, port, pool_size=1) as client:
                client.set("big", "x" * 100_000)
                assert client.get("big") == "x" * 100_000
                client.mset([(f"k{index}", "v") for index in range(64)])
                assert client.mget([f"k{index}" for index in range(64)]) == ["v"] * 64
            assert _rejections(host, port) == {}
        finally:
            server.stop()
            service.close()
