"""Tests for the adaptive binary arithmetic coder."""

import pytest
from hypothesis import given, strategies as st

from repro.entropy.arithmetic import (
    ArithmeticCodec,
    BitTreeModel,
    arithmetic_decode,
    arithmetic_encode,
)
from repro.exceptions import DecodingError


class TestBitTreeModel:
    def test_initial_probability_is_uniform(self):
        model = BitTreeModel()
        zeros, total = model.probability_zero(1)
        assert zeros * 2 == total

    def test_update_shifts_probability(self):
        model = BitTreeModel()
        for _ in range(10):
            model.update(1, 0)
        zeros, total = model.probability_zero(1)
        assert zeros / total > 0.8

    def test_counts_are_rescaled(self):
        model = BitTreeModel()
        for _ in range(1 << 17):
            model.update(1, 1)
        zeros, total = model.probability_zero(1)
        assert total < 1 << 17
        assert zeros >= 1


class TestArithmeticStream:
    def test_empty_payload(self):
        assert arithmetic_encode(b"") == b""
        assert arithmetic_decode(b"", 0) == b""

    def test_roundtrip_text(self):
        data = b"status=OK;latency=12ms;host=web-01" * 30
        encoded = arithmetic_encode(data)
        assert arithmetic_decode(encoded, len(data)) == data

    def test_adaptivity_compresses_repetitive_input(self):
        data = b"A" * 5000
        encoded = arithmetic_encode(data)
        assert len(encoded) < len(data) / 20

    def test_decode_empty_payload_for_nonzero_length_raises(self):
        with pytest.raises(DecodingError):
            arithmetic_decode(b"", 5)

    def test_shared_model_carries_state_across_records(self):
        # Encoding a second record with a model warmed on the first one must be
        # decodable with a decoder model warmed the same way.
        first = b"user=alice;action=login"
        second = b"user=bob;action=logout"
        encoder_model = BitTreeModel()
        first_encoded = arithmetic_encode(first, encoder_model)
        second_encoded = arithmetic_encode(second, encoder_model)
        decoder_model = BitTreeModel()
        assert arithmetic_decode(first_encoded, len(first), decoder_model) == first
        assert arithmetic_decode(second_encoded, len(second), decoder_model) == second

    def test_warm_model_encodes_repeated_structure_smaller(self):
        record = b"GET /api/v1/orders?id=12345 HTTP/1.1 200"
        cold = len(arithmetic_encode(record))
        model = BitTreeModel()
        for _ in range(50):
            warm_payload = arithmetic_encode(record, model)
        assert len(warm_payload) < cold

    @given(st.binary(max_size=500))
    def test_roundtrip_property(self, data):
        encoded = arithmetic_encode(data)
        assert arithmetic_decode(encoded, len(data)) == data

    @given(st.lists(st.binary(min_size=1, max_size=64), max_size=8))
    def test_shared_model_sequence_property(self, records):
        encoder_model = BitTreeModel()
        encoded = [arithmetic_encode(record, encoder_model) for record in records]
        decoder_model = BitTreeModel()
        for record, payload in zip(records, encoded):
            assert arithmetic_decode(payload, len(record), decoder_model) == record


class TestArithmeticCodec:
    def test_empty_roundtrip(self):
        codec = ArithmeticCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_roundtrip_and_compression_on_log_line(self):
        codec = ArithmeticCodec()
        payload = b"2023-11-21 12:00:01 INFO worker-3 processed batch 99182 in 35ms\n" * 40
        blob = codec.compress(payload)
        assert codec.decompress(blob) == payload
        # The order-0 bit-tree model adapts gradually, so expect a modest but
        # real size reduction on a repetitive log payload.
        assert len(blob) < len(payload) * 0.7

    def test_roundtrip_binary_payload(self):
        codec = ArithmeticCodec()
        payload = bytes(range(256)) * 3
        assert codec.decompress(codec.compress(payload)) == payload

    @given(st.binary(max_size=300))
    def test_roundtrip_property(self, payload):
        codec = ArithmeticCodec()
        assert codec.decompress(codec.compress(payload)) == payload
