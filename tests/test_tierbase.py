"""Tests for the TierBase key-value store simulator (Table 8 substrate)."""

import pytest

from repro.core.extraction import ExtractionConfig
from repro.datasets import load_dataset
from repro.exceptions import StoreError
from repro.tierbase import (
    NoopValueCompressor,
    PBCValueCompressor,
    TierBase,
    ZstdDictValueCompressor,
    run_workload,
)


@pytest.fixture
def values():
    return load_dataset("kv1", count=150)


class TestBasicOperations:
    def test_set_get_delete(self):
        store = TierBase()
        store.set("k1", "value-1")
        assert store.get("k1") == "value-1"
        assert "k1" in store
        assert store.exists("k1")
        assert store.delete("k1")
        assert not store.delete("k1")
        with pytest.raises(KeyError):
            store.get("k1")

    def test_overwrite(self):
        store = TierBase()
        store.set("k", "old")
        store.set("k", "new")
        assert store.get("k") == "new"
        assert len(store) == 1

    def test_keys_iteration(self):
        store = TierBase()
        for index in range(5):
            store.set(f"k{index}", str(index))
        assert sorted(store.keys()) == [f"k{index}" for index in range(5)]

    def test_stats_counters(self):
        store = TierBase()
        store.set("a", "1")
        store.get("a")
        with pytest.raises(KeyError):
            store.get("missing")
        stats = store.stats()
        assert stats.sets == 1
        assert stats.gets == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.keys == 1

    def test_train_requires_values(self):
        with pytest.raises(StoreError):
            TierBase().train([])


class TestCompressedStores:
    def test_zstd_dictionary_compression_saves_memory(self, values):
        plain = TierBase(compressor=NoopValueCompressor())
        compressed = TierBase(compressor=ZstdDictValueCompressor(level=1))
        compressed.train(values[:64])
        for index, value in enumerate(values):
            plain.set(f"k{index}", value)
            compressed.set(f"k{index}", value)
        assert compressed.memory_bytes < plain.memory_bytes
        assert compressed.get("k10") == values[10]

    def test_pbc_compression_saves_more_memory_than_zstd(self, values):
        zstd_store = TierBase(compressor=ZstdDictValueCompressor(level=1))
        pbc_store = TierBase(
            compressor=PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48))
        )
        zstd_store.train(values[:64])
        pbc_store.train(values[:64])
        for index, value in enumerate(values):
            zstd_store.set(f"k{index}", value)
            pbc_store.set(f"k{index}", value)
        assert pbc_store.memory_bytes < zstd_store.memory_bytes
        assert pbc_store.get("k42") == values[42]

    def test_value_ratio_reported(self, values):
        store = TierBase(compressor=PBCValueCompressor(config=ExtractionConfig(max_patterns=4, sample_size=32)))
        store.train(values[:48])
        for index, value in enumerate(values[:80]):
            store.set(f"k{index}", value)
        assert store.stats().value_ratio < 0.8


class TestMonitoring:
    def test_monitor_flags_poor_compression(self):
        store = TierBase(compressor=NoopValueCompressor(), ratio_threshold=0.5)
        for index in range(80):
            store.set(f"k{index}", f"incompressible-{index}")
        assert store.needs_retraining()

    def test_monitor_quiet_below_threshold(self, values):
        store = TierBase(
            compressor=PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48)),
            ratio_threshold=0.9,
        )
        store.train(values[:64])
        for index, value in enumerate(values):
            store.set(f"k{index}", value)
        assert not store.needs_retraining()

    def test_retrain_recompresses_existing_values(self, values):
        store = TierBase(compressor=PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48)))
        store.train(values[:32])
        for index, value in enumerate(values[:60]):
            store.set(f"k{index}", value)
        before = {key: store.get(key) for key in store.keys()}
        store.retrain(values[:96])
        assert store.monitor.retraining_events == 1
        assert {key: store.get(key) for key in store.keys()} == before

    def test_retrain_on_drifted_family_preserves_stored_values(self, values):
        """Regression: stored payloads must be decoded with the *old* dictionary.

        The stored values pattern-match the original dictionary, while the
        retraining sample is a completely different template family — if
        retrain() installed the new dictionary before reading the old payloads
        back, every pre-retrain value would be corrupted or undecodable.
        """
        drifted = load_dataset("apache", count=96)
        store = TierBase(
            compressor=PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48))
        )
        store.train(values[:64])
        for index, value in enumerate(values[:60]):
            store.set(f"k{index}", value)
        before = {key: store.get(key) for key in store.keys()}
        store.retrain(drifted)
        assert {key: store.get(key) for key in store.keys()} == before


class TestWorkloadDriver:
    def test_run_workload_reports_throughput(self, values):
        store = TierBase(compressor=NoopValueCompressor())
        result = run_workload(store, values[:100], workload_name="A", get_operations=50)
        assert result.set_operations == 100
        assert result.get_operations == 50
        assert result.set_qps > 0
        assert result.get_qps > 0
        assert result.memory_usage_percent <= 100.0 + 1e-6

    def test_compressed_workload_uses_less_memory(self, values):
        uncompressed = run_workload(TierBase(compressor=NoopValueCompressor()), values, workload_name="A", get_operations=20)
        pbc = run_workload(
            TierBase(compressor=PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48))),
            values,
            workload_name="A",
            get_operations=20,
        )
        assert pbc.memory_bytes < uncompressed.memory_bytes
