"""Tests for the log parser and the LogReducer-style codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import load_dataset
from repro.logs import LogParser, LogReducerCodec, PARAMETER_TOKEN
from repro.logs.parser import detokenize_line, tokenize_line


class TestTokenisation:
    def test_roundtrip_preserves_whitespace(self):
        line = "03-17 16:13:38.811  1702  8671 D Tag: message"
        assert detokenize_line(tokenize_line(line)) == line

    def test_empty_line(self):
        assert detokenize_line(tokenize_line("")) == ""


class TestLogParser:
    def test_same_template_grouped(self):
        parser = LogParser()
        lines = [f"INFO connection from 10.0.0.{index} established" for index in range(20)]
        parsed = parser.parse(lines)
        assert len({item.template_id for item in parsed}) == 1
        template = parser.get_template(parsed[0].template_id)
        assert PARAMETER_TOKEN in template.tokens
        assert "established" in template.tokens

    def test_different_templates_separated(self):
        parser = LogParser(tree_depth=2)
        lines = ["INFO user alice logged in", "ERROR disk sda1 is full", "INFO user bob logged in"]
        parsed = parser.parse(lines)
        assert parsed[0].template_id == parsed[2].template_id
        assert parsed[0].template_id != parsed[1].template_id

    def test_parameters_extracted_in_order(self):
        parser = LogParser()
        parser.parse_line("job 12 finished in 340 ms")
        parsed = parser.parse_line("job 77 finished in 125 ms")
        assert parsed.parameters == ["77", "125"]

    def test_reconstruct_roundtrip(self):
        parser = LogParser()
        lines = [f"block blk_{index} replicated to node{index % 3}" for index in range(10)]
        parser.parse(lines)
        for line in lines:
            parsed_line = parser.parse_line(line)
            template = parser.get_template(parsed_line.template_id)
            assert template.reconstruct(template.extract_parameters(tokenize_line(line))) == line

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            LogParser(similarity_threshold=0.0)
        with pytest.raises(ValueError):
            LogParser(tree_depth=0)

    def test_template_counts(self):
        parser = LogParser()
        parser.parse([f"metric cpu={index}" for index in range(5)])
        template = parser.get_template(0)
        assert template.count == 5


class TestLogReducerCodec:
    def test_roundtrip_synthetic(self):
        lines = [f"2023-05-01 10:{index:02d}:00 INFO request {1000 + index} served in {index * 3} ms" for index in range(60)]
        codec = LogReducerCodec(preset=1)
        blob = codec.compress_lines(lines)
        assert codec.decompress_lines(blob) == lines

    def test_roundtrip_empty_and_single(self):
        codec = LogReducerCodec(preset=1)
        assert codec.decompress_lines(codec.compress_lines([])) == []
        assert codec.decompress_lines(codec.compress_lines(["just one line"])) == ["just one line"]

    @pytest.mark.parametrize("dataset", ["apache", "hdfs", "android"])
    def test_roundtrip_on_log_datasets(self, dataset):
        lines = load_dataset(dataset, count=120)
        codec = LogReducerCodec(preset=1)
        assert codec.decompress_lines(codec.compress_lines(lines)) == lines

    def test_compresses_better_than_half(self):
        lines = load_dataset("hdfs", count=200)
        stats = LogReducerCodec(preset=6).measure(lines)
        assert stats.ratio < 0.5
        assert stats.template_count >= 1
        assert stats.compress_mb_per_second > 0

    def test_numeric_columns_use_delta_encoding(self):
        # Monotonically increasing timestamps compress far better than random text.
        increasing = [f"tick {1_650_000_000 + index}" for index in range(300)]
        shuffled = [f"tick {hash(str(index)) % 10**9}" for index in range(300)]
        codec = LogReducerCodec(preset=1)
        assert len(codec.compress_lines(increasing)) < len(codec.compress_lines(shuffled))

    @given(
        st.lists(
            st.text(alphabet="abcdefgh0123456789 .:-", max_size=40),
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, lines):
        codec = LogReducerCodec(preset=0)
        assert codec.decompress_lines(codec.compress_lines(lines)) == lines
