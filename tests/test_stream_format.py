"""Tests for the seekable stream container format (repro.stream.format)."""

import io
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FrameCorruptionError, StreamFormatError
from repro.stream.format import (
    HEADER_SIZE,
    MAGIC,
    StreamContainerReader,
    StreamContainerWriter,
    decode_frame,
    encode_frame,
    pack_records,
    unpack_records,
)
from repro.stream.framecodecs import compress_frame, decompress_frame, frame_codec_by_name


def build_container(frames):
    """Write ``frames`` (lists of records) raw-coded into an in-memory container."""
    buffer = io.BytesIO()
    writer = StreamContainerWriter(buffer)
    raw = frame_codec_by_name("raw")
    for records in frames:
        body, _ = raw.encode(records)
        writer.append_frame(raw.codec_id, b"", body, len(records))
    writer.finish()
    buffer.seek(0)
    return buffer


class TestRecordBlocks:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(max_size=24), max_size=30))
    def test_pack_roundtrip_property(self, records):
        assert unpack_records(pack_records(records)) == records

    def test_trailing_bytes_rejected(self):
        with pytest.raises(StreamFormatError):
            unpack_records(pack_records(["a", "b"]) + b"\x00")

    def test_truncated_block_rejected(self):
        payload = pack_records(["hello", "world"])
        with pytest.raises(StreamFormatError):
            unpack_records(payload[:-3])


class TestFrameEncoding:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=64), st.binary(max_size=32), st.integers(0, 10_000))
    def test_frame_roundtrip_property(self, body, dict_payload, record_count):
        frame = decode_frame(encode_frame(7, dict_payload, body, record_count))
        assert frame.codec_id == 7
        assert frame.dict_payload == dict_payload
        assert frame.body == body
        assert frame.record_count == record_count

    def test_crc_detects_any_single_byte_flip(self):
        payload = encode_frame(1, b"dict", b"body-bytes", 3)
        for position in range(len(payload)):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0x01
            with pytest.raises((FrameCorruptionError, StreamFormatError)):
                decode_frame(bytes(corrupted))

    def test_verify_off_skips_crc(self):
        payload = bytearray(encode_frame(1, b"", b"body", 1))
        payload[-1] ^= 0xFF  # corrupt only the stored CRC
        assert decode_frame(bytes(payload), verify=False).body == b"body"


class TestContainer:
    def test_roundtrip_and_index(self):
        frames = [["a", "b", "c"], ["d"], ["e", "f"]]
        reader = StreamContainerReader(build_container(frames))
        assert reader.frame_count == 3
        assert reader.record_count == 6
        assert [f.first_record for f in reader.frames] == [0, 3, 4]
        for position, records in enumerate(frames):
            raw = reader.read_frame(position)
            assert decompress_frame(raw.codec_id, raw.dict_payload, raw.body) == records

    def test_frame_for_record_binary_search(self):
        reader = StreamContainerReader(build_container([["a", "b", "c"], ["d"], ["e", "f"]]))
        assert [reader.frame_for_record(i) for i in range(6)] == [0, 0, 0, 1, 2, 2]
        with pytest.raises(StreamFormatError):
            reader.frame_for_record(6)
        with pytest.raises(StreamFormatError):
            reader.frame_for_record(-1)

    def test_empty_container(self):
        reader = StreamContainerReader(build_container([]))
        assert reader.frame_count == 0
        assert reader.record_count == 0

    def test_not_a_stream_file(self, tmp_path):
        path = tmp_path / "not_a_stream.txt"
        path.write_bytes(b"just some text, definitely not a container" * 4)
        with pytest.raises(StreamFormatError):
            StreamContainerReader(path)

    def test_bad_header_magic(self):
        data = bytearray(build_container([["x"]]).getvalue())
        data[0] ^= 0xFF
        with pytest.raises(StreamFormatError):
            StreamContainerReader(io.BytesIO(bytes(data)))

    def test_truncated_file(self):
        data = build_container([["x", "y"]]).getvalue()
        with pytest.raises(StreamFormatError):
            StreamContainerReader(io.BytesIO(data[: len(data) // 2]))

    def test_corrupted_frame_body_raises_on_read(self):
        data = bytearray(build_container([["hello world"]]).getvalue())
        data[HEADER_SIZE + 6] ^= 0xFF  # inside the first frame's body
        reader = StreamContainerReader(io.BytesIO(bytes(data)))
        with pytest.raises(FrameCorruptionError):
            reader.read_frame(0)

    def test_corrupted_footer_raises_on_open(self):
        data = build_container([["hello"], ["world"]]).getvalue()
        # The footer sits between the last frame and the 16-byte trailer.
        corrupted = bytearray(data)
        corrupted[-20] ^= 0xFF
        with pytest.raises(FrameCorruptionError):
            StreamContainerReader(io.BytesIO(bytes(corrupted)))

    def test_append_after_finish_rejected(self):
        writer = StreamContainerWriter(io.BytesIO())
        writer.finish()
        with pytest.raises(StreamFormatError):
            writer.append_frame(0, b"", b"", 1)

    def test_header_layout_is_stable(self):
        buffer = io.BytesIO()
        StreamContainerWriter(buffer)
        assert buffer.getvalue()[: len(MAGIC)] == MAGIC
        assert zlib.crc32(b"") == 0  # sanity: crc32 available


class TestFrameCodecRoundtrips:
    @pytest.mark.parametrize("name", ["raw", "gzip", "lzma", "zstd", "fsst", "pbc", "pbc_f"])
    def test_codec_frame_roundtrip(self, name):
        records = [f"job-{i:04d} state=OK latency={i % 97}ms" for i in range(48)]
        codec = frame_codec_by_name(name)
        frame = compress_frame(codec.codec_id, records)
        assert frame.record_count == 48
        assert decompress_frame(frame.codec_id, frame.dict_payload, frame.body) == records

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.text(min_size=0, max_size=20), min_size=1, max_size=12))
    def test_pbc_frame_roundtrip_property(self, records):
        codec = frame_codec_by_name("pbc")
        frame = compress_frame(codec.codec_id, records)
        assert decompress_frame(frame.codec_id, frame.dict_payload, frame.body) == records
