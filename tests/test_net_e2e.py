"""End-to-end tests of the ``RKV1`` server/client on an ephemeral port.

The soak bar from the ISSUE: 8 concurrent pipelined clients with zero lost or
corrupted responses, fault injection (mid-stream disconnects, half-written
frames, garbage bytes) that must leave the server serving everyone else,
graceful shutdown that answers every request already received, and a
drift-triggered retrain under live wire traffic with no stale reads.

Every wait in this file is bounded (socket timeouts, thread joins with
timeouts) so a regression fails loudly instead of hanging the suite; the CI
``net-e2e`` job additionally wraps the whole file in a hard 120 s timeout.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time

import pytest

from repro.exceptions import NetError, ProtocolError, RemoteError
from repro.net import (
    AsyncKVClient,
    GetRequest,
    KVClient,
    ServerConfig,
    SetRequest,
    ThreadedKVServer,
    FrameDecoder,
    encode_frame,
)
from repro.service import KVService, ServiceConfig

from tests.conftest import make_template_records

#: Bound on every blocking wait in this file.
WAIT = 30.0


@pytest.fixture
def server():
    """A served KVService (2 uncompressed shards) on an ephemeral port."""
    service = KVService(ServiceConfig(shard_count=2, compressor="none"))
    threaded = ThreadedKVServer(service, ServerConfig(port=0, max_inflight=32))
    threaded.start()
    try:
        yield threaded
    finally:
        threaded.stop()
        service.close()


def _drain_frames(sock: socket.socket, count: int) -> list:
    decoder = FrameDecoder()
    frames: list = []
    while len(frames) < count:
        data = sock.recv(64 * 1024)
        if not data:
            decoder.eof()
            raise NetError("server closed early")
        frames.extend(decoder.feed(data))
    return frames


# ---------------------------------------------------------------- multi-client


class TestConcurrentClients:
    def test_eight_pipelined_clients_match_dict_model(self, server):
        """8 clients × mixed pipelined GET/SET/MGET/DEL over disjoint key
        spaces: every response must match a per-client dict model exactly."""
        host, port = server.address
        clients = 8
        rounds = 30
        errors: list[BaseException] = []

        def client_loop(client_id: int) -> None:
            rng = random.Random(client_id)
            model: dict[str, str] = {}
            space = [f"c{client_id}:k{index}" for index in range(24)]
            try:
                with KVClient(host, port, pool_size=1, timeout=WAIT) as client:
                    for round_index in range(rounds):
                        choice = rng.random()
                        if choice < 0.35:
                            # pipelined mixed batch: sets then gets, one round trip
                            pipe = client.pipeline()
                            writes = [
                                (rng.choice(space), f"v{client_id}:{round_index}:{i}")
                                for i in range(4)
                            ]
                            for key, value in writes:
                                pipe.set(key, value)
                            reads = [rng.choice(space) for _ in range(4)]
                            for key in reads:
                                pipe.get(key)
                            results = pipe.execute()
                            for key, value in writes:
                                model[key] = value
                            for key, got in zip(reads, results[len(writes):]):
                                assert got == model.get(key), (key, got)
                        elif choice < 0.6:
                            keys = [rng.choice(space) for _ in range(6)]
                            assert client.mget(keys) == [model.get(k) for k in keys]
                        elif choice < 0.85:
                            items = [
                                (rng.choice(space), f"m{client_id}:{round_index}:{i}")
                                for i in range(5)
                            ]
                            client.mset(items)
                            model.update(dict(items))
                        else:
                            key = rng.choice(space)
                            assert client.delete(key) == (key in model)
                            model.pop(key, None)
                    # final audit: the whole model, over the wire
                    keys = sorted(model)
                    assert client.mget(keys) == [model[k] for k in keys]
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=client_loop, args=(client_id,))
            for client_id in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=WAIT)
            assert not thread.is_alive(), "client thread hung"
        assert not errors, errors
        # Zero lost/corrupted responses, and the server really saw 8 clients.
        assert server.server.connections_served >= clients
        assert server.server.protocol_errors == 0

    def test_shared_keys_converge_to_a_written_value(self, server):
        host, port = server.address
        written: set[str] = set()
        lock = threading.Lock()

        def writer(client_id: int) -> None:
            with KVClient(host, port, pool_size=1, timeout=WAIT) as client:
                for index in range(25):
                    value = f"w{client_id}:{index}"
                    with lock:
                        written.add(value)
                    client.set("shared", value)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=WAIT)
        with KVClient(host, port, timeout=WAIT) as client:
            assert client.get("shared") in written

    def test_async_client_pipelined_get(self, server):
        host, port = server.address

        async def main() -> None:
            async with await AsyncKVClient.connect(host, port) as client:
                await client.mset([(f"a:{i}", f"v{i}") for i in range(40)])
                values = await client.pipelined_get(
                    [f"a:{i}" for i in range(40)], depth=8
                )
                assert values == [f"v{i}" for i in range(40)]
                assert await client.get("a:0") == "v0"
                assert await client.delete("a:0") is True
                stats = await client.stats()
                assert stats["keys"] == 39

        asyncio.run(asyncio.wait_for(main(), timeout=WAIT))


# -------------------------------------------------------------- fault injection


class TestFaultInjection:
    def test_mid_stream_disconnect_leaves_others_served(self, server):
        host, port = server.address
        with KVClient(host, port, timeout=WAIT) as healthy:
            healthy.set("stable", "yes")
            # 1: half-written frame, then hard close.
            half = socket.create_connection((host, port), timeout=WAIT)
            half.sendall(encode_frame(SetRequest(key=b"h", value=b"x" * 500))[:7])
            half.close()
            # 2: pipelined requests, disconnect without reading responses.
            rude = socket.create_connection((host, port), timeout=WAIT)
            rude.sendall(
                b"".join(encode_frame(GetRequest(key=b"stable")) for _ in range(50))
            )
            rude.close()
            # 3: garbage bytes → server answers ERR and closes that connection.
            garbage = socket.create_connection((host, port), timeout=WAIT)
            garbage.sendall(b"\x00" * 16)
            frames = _drain_frames(garbage, 1)
            assert frames[0].kind == "ProtocolError"
            assert garbage.recv(1024) == b""  # closed after the error frame
            garbage.close()
            # The healthy connection never noticed.
            deadline = time.monotonic() + WAIT
            while time.monotonic() < deadline:
                if server.server.protocol_errors >= 1:
                    break
                time.sleep(0.02)
            assert server.server.protocol_errors == 1
            assert healthy.get("stable") == "yes"
            assert healthy.ping()

    def test_requests_in_same_chunk_as_garbage_still_execute(self, server):
        """A SET packed into the same TCP segment as trailing garbage must be
        applied and answered before the ERR frame — outcomes may not depend
        on kernel segmentation."""
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=WAIT)
        sock.sendall(
            encode_frame(SetRequest(key=b"packed", value=b"survives")) + b"JUNKJUNK"
        )
        ok, err = _drain_frames(sock, 2)
        assert type(ok).__name__ == "OkResponse"
        assert err.kind == "ProtocolError"
        assert sock.recv(1024) == b""  # closed after the error frame
        sock.close()
        with KVClient(host, port, timeout=WAIT) as client:
            assert client.get("packed") == "survives"

    def test_remote_errors_are_typed_not_fatal(self):
        """An untrained compressor fails a SET server-side; the client sees a
        RemoteError that also subclasses the original exception type, and the
        connection stays usable."""
        from repro.exceptions import CompressorError

        service = KVService(ServiceConfig(shard_count=1, compressor="pbc_f"))
        with ThreadedKVServer(service, ServerConfig(port=0)) as threaded:
            host, port = threaded.address
            with KVClient(host, port, timeout=WAIT) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.set("k", "v")
                assert isinstance(excinfo.value, CompressorError)  # dual-typed
                assert excinfo.value.kind == "MissingModelError"
                assert client.ping()  # same pooled connection still healthy
                assert client.get("k") is None
        service.close()

    def test_oversized_frame_rejected_not_buffered(self, server):
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=WAIT)
        # Declare a body far beyond the server's limit; send no body at all.
        huge = ServerConfig().max_body * 4
        from repro.entropy.varint import encode_uvarint

        sock.sendall(b"RKV1\x03" + encode_uvarint(huge))
        frames = _drain_frames(sock, 1)
        assert frames[0].kind == "ProtocolError"
        assert "exceeds" in frames[0].message
        sock.close()


# ------------------------------------------------------------ graceful shutdown


class TestGracefulShutdown:
    def test_drain_answers_every_received_request(self):
        service = KVService(ServiceConfig(shard_count=2, compressor="none"))
        threaded = ThreadedKVServer(service, ServerConfig(port=0, max_inflight=64))
        host, port = threaded.start()
        try:
            with KVClient(host, port, timeout=WAIT) as client:
                client.mset([(f"k{i}", f"v{i}") for i in range(32)])
            # Pipeline 64 GETs on a raw socket and stop the server before
            # reading a single response: drain must answer all 64.
            sock = socket.create_connection((host, port), timeout=WAIT)
            sock.sendall(
                b"".join(
                    encode_frame(GetRequest(key=f"k{i % 32}".encode()))
                    for i in range(64)
                )
            )
            time.sleep(0.2)  # let the reader decode + queue them
            threaded.stop(drain=True)
            frames = _drain_frames(sock, 64)
            for index, frame in enumerate(frames):
                assert frame.value == f"v{index % 32}".encode()
            sock.close()
        finally:
            service.close()

    def test_transport_failures_are_typed_net_errors(self):
        """Killing the server under a connected client surfaces as NetError
        (the documented contract), never a raw ConnectionError/timeout."""
        service = KVService(ServiceConfig(shard_count=1, compressor="none"))
        threaded = ThreadedKVServer(service, ServerConfig(port=0))
        host, port = threaded.start()
        client = KVClient(host, port, timeout=5.0)
        client.set("k", "v")
        threaded.stop(drain=False)
        with pytest.raises(NetError):
            for _ in range(3):  # first call may see a clean close, then reset
                client.get("k")
        client.close()
        service.close()

    def test_bind_failure_cleans_up_threaded_server(self):
        """A busy port fails with NetError and leaves the object restartable
        on a free port — no leaked event-loop thread."""
        service = KVService(ServiceConfig(shard_count=1, compressor="none"))
        blocker = ThreadedKVServer(service, ServerConfig(port=0))
        host, port = blocker.start()
        failed = ThreadedKVServer(service, ServerConfig(host=host, port=port))
        before = threading.active_count()
        with pytest.raises(NetError, match="bind"):
            failed.start()
        assert threading.active_count() == before  # loop thread was joined
        blocker.stop()  # frees the port…
        host2, port2 = failed.start()  # …and the failed server is not wedged
        assert (host2, port2) == (host, port)
        failed.stop()
        service.close()

    def test_stopped_server_refuses_new_connections(self):
        service = KVService(ServiceConfig(shard_count=1, compressor="none"))
        threaded = ThreadedKVServer(service, ServerConfig(port=0))
        host, port = threaded.start()
        threaded.stop()
        with pytest.raises(NetError):
            with KVClient(host, port, timeout=2.0) as client:
                client.ping()
        service.close()


# ------------------------------------------------- retrain under live traffic


def test_drift_retrain_under_live_traffic_no_stale_reads():
    """The wire version of ``test_background_retrain_keeps_old_epoch_payloads_
    live``: drifted writes stream in over TCP while a reader hammers the keys
    written at the old epoch — every read must return the exact value, and at
    least one background retrain must fire."""
    trained = make_template_records(120, seed=3)
    drifted = [
        f"DRIFT|{index:06d}|completely=different&layout={index * 7}"
        for index in range(300)
    ]
    service = KVService(
        ServiceConfig(shard_count=2, compressor="pbc", cache_entries=128, train_size=64)
    )
    service.train(trained)
    stop_reading = threading.Event()
    read_errors: list[BaseException] = []

    with ThreadedKVServer(service, ServerConfig(port=0)) as threaded:
        host, port = threaded.address
        with KVClient(host, port, timeout=WAIT) as writer:
            writer.mset([(f"t:{i}", value) for i, value in enumerate(trained)])

        def reader_loop() -> None:
            rng = random.Random(11)
            try:
                with KVClient(host, port, pool_size=1, timeout=WAIT) as reader:
                    while not stop_reading.is_set():
                        index = rng.randrange(len(trained))
                        value = reader.get(f"t:{index}")
                        assert value == trained[index], f"stale read at t:{index}"
            except BaseException as error:  # noqa: BLE001
                read_errors.append(error)

        reader = threading.Thread(target=reader_loop)
        reader.start()
        try:
            with KVClient(host, port, timeout=WAIT) as writer:
                for start in range(0, len(drifted), 25):
                    writer.mset(
                        [
                            (f"d:{start + offset}", value)
                            for offset, value in enumerate(drifted[start : start + 25])
                        ]
                    )
                stats = writer.stats()
                # Old-epoch and new-epoch keys both read back exactly.
                assert writer.mget([f"t:{i}" for i in range(len(trained))]) == trained
                assert writer.mget([f"d:{i}" for i in range(len(drifted))]) == drifted
        finally:
            stop_reading.set()
            reader.join(timeout=WAIT)
        assert not reader.is_alive(), "reader thread hung"
        assert not read_errors, read_errors
        assert stats["retrain_events"] >= 1, stats
    service.close()
