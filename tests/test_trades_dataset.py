"""Tests for the extra 'trades' dataset (the Section 1 motivating example)."""

import json
import random

import pytest

from repro import ExtractionConfig, PBCCompressor
from repro.datasets import (
    DATASET_SPECS,
    EXTRA_DATASET_SPECS,
    dataset_names,
    extra_dataset_names,
    get_spec,
    load_dataset,
)
from repro.datasets.trades import generate_trades
from repro.exceptions import DatasetError


class TestRegistry:
    def test_trades_is_an_extra_dataset_not_a_table2_dataset(self):
        assert "trades" in extra_dataset_names()
        assert "trades" not in dataset_names()
        assert "trades" not in DATASET_SPECS
        assert "trades" in EXTRA_DATASET_SPECS

    def test_get_spec_resolves_extras(self):
        spec = get_spec("trades")
        assert spec.category == "extra"

    def test_unknown_dataset_error_lists_extras(self):
        with pytest.raises(DatasetError) as excinfo:
            get_spec("nonexistent")
        assert "trades" in str(excinfo.value)

    def test_load_dataset_works_for_extras(self):
        records = load_dataset("trades", count=50)
        assert len(records) == 50

    def test_load_is_deterministic_per_seed(self):
        assert load_dataset("trades", count=40, seed=1) == load_dataset("trades", count=40, seed=1)
        assert load_dataset("trades", count=40, seed=1) != load_dataset("trades", count=40, seed=2)


class TestGenerator:
    def test_most_records_are_json_documents(self):
        records = generate_trades(200, random.Random(3))
        json_like = [record for record in records if record.startswith("{")]
        assert len(json_like) > len(records) / 2
        for record in json_like[:20]:
            document = json.loads(record)
            assert "symbol" in document or "exec_id" in document

    def test_templates_cover_fix_and_outlier_forms(self):
        records = generate_trades(200, random.Random(5))
        assert any(record.startswith("35=8|") for record in records)
        assert any(record.startswith("manual adjustment") for record in records)

    def test_record_lengths_are_in_expected_band(self):
        records = generate_trades(300, random.Random(7))
        average = sum(len(record) for record in records) / len(records)
        assert 60 < average < 160


class TestCompressibility:
    def test_pbc_compresses_trades_well(self):
        records = load_dataset("trades", count=800)
        compressor = PBCCompressor(config=ExtractionConfig(max_patterns=12, sample_size=96, seed=3))
        compressor.train(records[:200])
        stats = compressor.measure(records)
        assert stats.ratio < 0.45
        assert stats.outlier_rate < 0.1
