"""Tests for the Ion-like and BinPack-like JSON serialisations."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import load_dataset
from repro.exceptions import EncodingError
from repro.jsonenc import BinPackCodec, IonLikeCodec, decode_value, encode_value, infer_schema

DOCUMENTS = [
    None,
    True,
    False,
    0,
    -17,
    2**40,
    3.14159,
    "",
    "hello ☃",
    [],
    [1, "two", None, [3.5]],
    {},
    {"a": 1, "b": {"c": [True, "x"]}, "d": None},
]


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class TestIonValueEncoding:
    @pytest.mark.parametrize("document", DOCUMENTS, ids=[str(index) for index in range(len(DOCUMENTS))])
    def test_roundtrip(self, document):
        assert decode_value(encode_value(document)) == document

    def test_small_integers_are_compact(self):
        assert len(encode_value(5)) == 2
        assert len(encode_value(-5)) == 2

    def test_rejects_unsupported_types(self):
        with pytest.raises(EncodingError):
            encode_value({1: "non-string key"})
        with pytest.raises(EncodingError):
            encode_value({"x": object()})

    @given(st.recursive(
        st.none() | st.booleans() | st.integers(min_value=-(2**40), max_value=2**40)
        | st.floats(allow_nan=False, allow_infinity=False) | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20,
    ))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, document):
        assert decode_value(encode_value(document)) == document


class TestIonCodec:
    def test_canonical_json_roundtrip(self):
        codec = IonLikeCodec()
        text = '{"b": 2, "a": [1, 2.5, "x"], "c": null}'
        restored = codec.decompress(codec.compress(text.encode()))
        assert json.loads(restored) == json.loads(text)

    def test_non_json_rejected(self):
        with pytest.raises(EncodingError):
            IonLikeCodec().compress(b"not json at all {")

    def test_smaller_than_text_for_numeric_documents(self):
        document = {"values": list(range(100)), "flag": True}
        text = canonical(document).encode()
        assert len(IonLikeCodec().compress(text)) < len(text)


class TestSchemaInference:
    def test_scalar_kinds(self):
        assert infer_schema([1, 2, 3]).kind == "integer"
        assert infer_schema([1.5, 2.5]).kind == "number"
        assert infer_schema([True, False]).kind == "boolean"
        assert infer_schema(["a" * 40, "b" * 40]).kind == "string"
        assert infer_schema([None, None]).kind == "null"

    def test_mixed_types_fall_back_to_any(self):
        assert infer_schema([1, "x"]).kind == "any"

    def test_nullable_detection(self):
        node = infer_schema([1, None, 3])
        assert node.kind == "integer"
        assert node.nullable

    def test_low_cardinality_strings_become_enum(self):
        node = infer_schema(["GET", "POST", "GET", "GET", "POST", "PUT"] * 3)
        assert node.kind == "enum"
        assert set(node.enum_values) == {"GET", "POST", "PUT"}

    def test_object_required_and_optional(self):
        node = infer_schema([{"a": 1, "b": 2}, {"a": 3}])
        assert node.kind == "object"
        assert node.required == {"a"}
        assert set(node.properties) == {"a", "b"}

    def test_array_items(self):
        node = infer_schema([[1, 2], [3]])
        assert node.kind == "array"
        assert node.items.kind == "integer"

    def test_schema_serialisation_roundtrip(self):
        node = infer_schema([{"a": 1, "b": "x", "tags": ["u", "v"]}, {"a": 2, "tags": []}])
        restored = type(node).from_dict(node.to_dict())
        assert restored.to_dict() == node.to_dict()


class TestBinPackCodec:
    def _documents(self):
        return [
            {"id": index, "kind": "click" if index % 2 else "view", "user": f"user-{index}", "score": index / 3}
            for index in range(40)
        ]

    def test_roundtrip_documents(self):
        documents = self._documents()
        codec = BinPackCodec()
        codec.train(documents[:20])
        for document in documents:
            payload = codec.encode_document(document)
            assert codec.decode_document(payload) == document

    def test_codec_interface_roundtrip(self):
        documents = self._documents()
        codec = BinPackCodec()
        codec.train([canonical(document) for document in documents[:20]])
        blob = codec.compress(canonical(documents[-1]).encode())
        assert json.loads(codec.decompress(blob)) == documents[-1]

    def test_handles_extra_keys_not_in_schema(self):
        codec = BinPackCodec()
        codec.train([{"a": 1}, {"a": 2}])
        document = {"a": 3, "unexpected": {"deep": [1, 2, 3]}}
        assert codec.decode_document(codec.encode_document(document)) == document

    def test_handles_missing_optional_keys(self):
        codec = BinPackCodec()
        codec.train([{"a": 1, "opt": "x"}, {"a": 2}])
        assert codec.decode_document(codec.encode_document({"a": 5})) == {"a": 5}

    def test_missing_required_key_rejected(self):
        codec = BinPackCodec()
        codec.train([{"a": 1}, {"a": 2}])
        with pytest.raises(EncodingError):
            codec.encode_document({})

    def test_enum_escape_for_unseen_values(self):
        codec = BinPackCodec()
        codec.train([{"method": "GET"}, {"method": "POST"}, {"method": "GET"}])
        document = {"method": "DELETE"}
        assert codec.decode_document(codec.encode_document(document)) == document

    def test_beats_ion_on_schemaful_records(self):
        records = load_dataset("cities", count=80)
        binpack = BinPackCodec()
        binpack.train(records[:40])
        ion = IonLikeCodec()
        binpack_bytes = sum(len(binpack.compress(record.encode())) for record in records)
        ion_bytes = sum(len(ion.compress(record.encode())) for record in records)
        assert binpack_bytes < ion_bytes

    def test_untrained_codec_is_self_describing(self):
        codec = BinPackCodec()
        document = {"anything": [1, "x", None]}
        assert codec.decode_document(codec.encode_document(document)) == document
