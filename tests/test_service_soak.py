"""Concurrency soak tests for :class:`~repro.service.KVService` internals.

The PR 2–3 coverage gap named by the ISSUE: the compressed LRU cache is
invalidated inside each shard's single-worker executor, which is what makes
"delete wins" safe — a reader racing a delete may see the old value *while
the delete is in flight*, but once a delete has returned, no later read may
resurrect the deleted key from the cache (the cache fill happens inside the
shard task, serialised with the delete's invalidation).  These tests hammer
exactly that interleaving, plus the new :meth:`ServiceSnapshot.validate`
cache-counter invariant.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.datasets import load_dataset
from repro.exceptions import ServiceError
from repro.service import CacheStats, KVService, ServiceConfig
from repro.service.stats import LatencySummary, ServiceSnapshot


@pytest.fixture
def values():
    return load_dataset("kv1", count=200)


# --------------------------------------------------- concurrent delete + mget


class TestConcurrentDeleteMGet:
    def _run_soak(self, config: ServiceConfig, values, rounds: int = 40) -> None:
        with KVService(config) as service:
            if config.compressor != "none":
                service.train(values[:64])
            keys = [f"k:{index}" for index in range(len(values))]
            expected = dict(zip(keys, values))
            service.mset(list(zip(keys, values)))
            # Warm the cache so deletes race genuine cache entries.
            service.mget(keys)

            doomed = keys[:: 2]  # every other key gets deleted
            survivors = [key for key in keys if key not in set(doomed)]
            start = threading.Barrier(3)
            reader_errors: list[BaseException] = []

            def deleter() -> None:
                start.wait()
                for key in doomed:
                    service.delete(key)

            def reader(seed: int) -> None:
                rng = random.Random(seed)
                start.wait()
                try:
                    for _ in range(rounds):
                        batch = [keys[rng.randrange(len(keys))] for _ in range(16)]
                        results = service.mget(batch)
                        for key, result in zip(batch, results):
                            # Racing a delete may read the old value or None,
                            # but never a *different* value.
                            assert result is None or result == expected[key], key
                except BaseException as error:  # noqa: BLE001
                    reader_errors.append(error)

            threads = [
                threading.Thread(target=deleter),
                threading.Thread(target=reader, args=(1,)),
                threading.Thread(target=reader, args=(2,)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), "soak thread hung"
            assert not reader_errors, reader_errors

            # Deletes have all returned: no read below may resurrect a key.
            assert service.mget(doomed) == [None] * len(doomed)
            for key in doomed:
                assert key not in service.cache, f"cache resurrected deleted {key}"
            # A second pass cannot re-materialise them either (a stale cache
            # fill racing the first pass would surface here).
            assert service.mget(doomed) == [None] * len(doomed)
            assert service.mget(survivors) == [expected[key] for key in survivors]
            # Quiescent now: the cache counters must balance exactly.
            service.snapshot().validate()

    def test_tierbase_uncompressed(self, values):
        self._run_soak(
            ServiceConfig(shard_count=4, compressor="none", cache_entries=256), values
        )

    def test_tierbase_pbc_f(self, values):
        self._run_soak(
            ServiceConfig(
                shard_count=2, compressor="pbc_f", cache_entries=256, train_size=64
            ),
            values,
            rounds=20,
        )

    def test_interleaved_delete_set_keeps_last_write(self, values):
        """delete/set ping-pong on one key from two threads: the final state
        must match whichever operation truly came last, and the cache must
        agree with the backend."""
        with KVService(ServiceConfig(shard_count=1, compressor="none")) as service:
            service.set("k", "v0")
            barrier = threading.Barrier(2)

            def flipper() -> None:
                barrier.wait()
                for index in range(50):
                    service.set("k", f"v{index}")

            def dropper() -> None:
                barrier.wait()
                for _ in range(50):
                    service.delete("k")

            threads = [threading.Thread(target=flipper), threading.Thread(target=dropper)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            backend_value = service._shards[0].backend.get("k")
            # The cache may hold nothing, but anything it holds must decode
            # to the backend's value (no resurrection of a deleted epoch).
            cached = service.get("k")
            assert cached == backend_value


# ----------------------------------------------------- snapshot invariants


def _snapshot(cache: CacheStats, gets: int, cache_hits: int = 0) -> ServiceSnapshot:
    return ServiceSnapshot(
        shards=(),
        cache=cache,
        get_latency=LatencySummary.empty(),
        set_latency=LatencySummary.empty(),
        gets=gets,
        sets=0,
        deletes=0,
        cache_hits=cache_hits,
        retrain_events=0,
    )


class TestSnapshotValidate:
    def test_real_workload_snapshot_validates(self, values):
        with KVService(ServiceConfig(shard_count=2, compressor="none")) as service:
            keys = [f"k:{index}" for index in range(len(values))]
            service.mset(list(zip(keys, values)))
            service.mget(keys)
            for key in keys[:20]:
                service.get(key)
            service.delete(keys[0])
            snapshot = service.snapshot().validate()
            assert snapshot.cache.hits + snapshot.cache.misses == snapshot.cache.lookups
            assert snapshot.cache.lookups == snapshot.gets

    def test_raising_get_does_not_poison_the_invariant(self, values):
        """A GET that raises (corrupt cached payload → propagated decode
        error) still counted its cache lookup; the gets counter must keep
        pace or every later validate() on this service fails."""
        with KVService(
            ServiceConfig(shard_count=1, compressor="pbc_f", train_size=64)
        ) as service:
            service.train(values[:64])
            service.set("k", values[0])
            service.cache.put("k", b"\xff garbage that is no versioned payload")
            with pytest.raises(Exception):
                service.get("k")
            service.get("missing")  # a healthy GET afterwards
            snapshot = service.snapshot().validate()
            assert snapshot.cache.lookups == snapshot.gets == 2

    def test_hits_plus_misses_must_equal_lookups(self):
        bad = CacheStats(
            entries=0, compressed_bytes=0, hits=5, misses=5, evictions=0,
            invalidations=0, lookups=11,
        )
        with pytest.raises(ServiceError, match="hits"):
            _snapshot(bad, gets=11).validate()

    def test_lookups_must_equal_service_gets(self):
        cache = CacheStats(
            entries=0, compressed_bytes=0, hits=4, misses=6, evictions=0,
            invalidations=0, lookups=10,
        )
        with pytest.raises(ServiceError, match="GET"):
            _snapshot(cache, gets=9).validate()

    def test_service_cache_hits_cannot_exceed_raw_hits(self):
        cache = CacheStats(
            entries=0, compressed_bytes=0, hits=2, misses=8, evictions=0,
            invalidations=0, lookups=10,
        )
        with pytest.raises(ServiceError, match="decoded"):
            _snapshot(cache, gets=10, cache_hits=3).validate()

    def test_negative_counters_rejected(self):
        cache = CacheStats(
            entries=0, compressed_bytes=0, hits=0, misses=0, evictions=-1,
            invalidations=0, lookups=0,
        )
        with pytest.raises(ServiceError, match="negative"):
            _snapshot(cache, gets=0).validate()

    def test_valid_snapshot_returns_self(self):
        cache = CacheStats(
            entries=1, compressed_bytes=10, hits=7, misses=3, evictions=0,
            invalidations=2, lookups=10,
        )
        snapshot = _snapshot(cache, gets=10, cache_hits=7)
        assert snapshot.validate() is snapshot
