"""Tests for the stream-frame block codec adapter (repro.stream.adapter)."""

import pytest

from repro.blockstore import BlockStore
from repro.exceptions import FrameCorruptionError, StreamError
from repro.lsm.sstable import BlockCompressionPolicy, SSTable, write_sstable
from repro.stream import StreamFrameCodec, pack_records

from tests.conftest import make_template_records


@pytest.fixture(scope="module")
def records():
    return make_template_records(160, seed=31)


class TestByteMode:
    def test_roundtrip(self):
        codec = StreamFrameCodec()
        payload = b"machine-generated payload " * 40
        assert codec.decompress(codec.compress(payload)) == payload

    def test_compresses_redundant_data(self):
        codec = StreamFrameCodec()
        payload = b"the same line over and over\n" * 100
        assert len(codec.compress(payload)) < len(payload)

    def test_never_catastrophic_on_random_bytes(self):
        import random

        rng = random.Random(4)
        payload = bytes(rng.randrange(256) for _ in range(512))
        frame = StreamFrameCodec().compress(payload)
        # raw is always a candidate, so overhead is bounded by the frame header.
        assert len(frame) < len(payload) + 64
        assert StreamFrameCodec().decompress(frame) == payload

    def test_fixed_codec(self):
        codec = StreamFrameCodec(codec="gzip")
        payload = b"abc" * 200
        assert codec.decompress(codec.compress(payload)) == payload

    def test_record_codecs_rejected_in_byte_mode(self):
        with pytest.raises(StreamError):
            StreamFrameCodec(codec="pbc")

    def test_corruption_detected(self):
        codec = StreamFrameCodec()
        frame = bytearray(codec.compress(b"hello world " * 30))
        frame[len(frame) // 2] ^= 0xFF
        with pytest.raises(FrameCorruptionError):
            codec.decompress(bytes(frame))


class TestRecordsMode:
    def test_record_block_roundtrip(self, records):
        codec = StreamFrameCodec(records_mode=True)
        block = pack_records(records[:64])
        assert codec.decompress(codec.compress(block)) == block

    def test_pbc_fixed_codec_in_records_mode(self, records):
        codec = StreamFrameCodec(codec="pbc", records_mode=True)
        block = pack_records(records[:64])
        assert codec.decompress(codec.compress(block)) == block

    def test_falls_back_to_bytes_for_non_record_payloads(self):
        codec = StreamFrameCodec(records_mode=True)
        payload = b"\xff\xfe not a record block \x00\x01" * 20
        assert codec.decompress(codec.compress(payload)) == payload

    def test_empty_record_block_roundtrips(self):
        # Pattern codecs cannot train on zero records; the empty block must
        # take the byte path instead of crashing.
        codec = StreamFrameCodec(records_mode=True)
        block = pack_records([])
        assert codec.decompress(codec.compress(block)) == block

    def test_empty_block_with_fixed_record_codec(self):
        codec = StreamFrameCodec(codec="pbc", records_mode=True)
        block = pack_records([])
        assert codec.decompress(codec.compress(block)) == block

    def test_empty_payload_in_byte_mode(self):
        codec = StreamFrameCodec()
        assert codec.decompress(codec.compress(b"")) == b""


class TestBlockStoreIntegration:
    def test_blockstore_uses_stream_frames(self, records):
        store = BlockStore.from_records(
            records, StreamFrameCodec(records_mode=True), block_size=32
        )
        assert len(store) == len(records)
        assert store.ratio < 1.0
        for index in (0, 31, 32, 95, len(records) - 1):
            assert store.get(index) == records[index]


class TestSSTableIntegration:
    def test_sstable_block_policy_uses_stream_frames(self, tmp_path, records):
        entries = sorted((f"key:{i:05d}", records[i]) for i in range(len(records)))
        policy = BlockCompressionPolicy(StreamFrameCodec())
        info = write_sstable(tmp_path / "frames.sst", entries, policy, block_bytes=2048)
        assert info.entry_count == len(entries)
        table = SSTable(tmp_path / "frames.sst", policy)
        for key, value in entries[:: len(entries) // 10]:
            found, stored = table.get(key)
            assert found and stored == value
        assert not table.get("key:99999")[0]
        assert list(table.scan()) == entries
