"""Tests for the bit-level reader and writer."""

import pytest
from hypothesis import given, strategies as st

from repro.entropy.bitio import BitReader, BitWriter
from repro.exceptions import DecodingError


class TestBitWriter:
    def test_empty_writer(self):
        assert BitWriter().getvalue() == b""

    def test_single_byte(self):
        writer = BitWriter()
        writer.write_bits(0xAB, 8)
        assert writer.getvalue() == b"\xab"

    def test_msb_first_packing(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bits(0, 7)
        assert writer.getvalue() == b"\x80"

    def test_padding_to_byte_boundary(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b1010_0000])

    def test_bit_length_tracks_written_bits(self):
        writer = BitWriter()
        writer.write_bits(3, 2)
        writer.write_bits(1, 5)
        assert writer.bit_length == 7

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_write_bytes(self):
        writer = BitWriter()
        writer.write_bytes(b"\x01\x02")
        assert writer.getvalue() == b"\x01\x02"


class TestBitReader:
    def test_read_back_single_bits(self):
        reader = BitReader(b"\xA0")
        assert [reader.read_bit() for _ in range(4)] == [1, 0, 1, 0]

    def test_read_across_byte_boundary(self):
        reader = BitReader(b"\x12\x34")
        assert reader.read_bits(12) == 0x123

    def test_zero_width_read(self):
        assert BitReader(b"").read_bits(0) == 0

    def test_exhausted_stream_rejected(self):
        reader = BitReader(b"\x00")
        reader.read_bits(8)
        with pytest.raises(DecodingError):
            reader.read_bit()

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        reader.read_bits(3)
        assert reader.bits_remaining == 13


class TestRoundtrip:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=1, max_value=16)), max_size=50))
    def test_write_read_sequence(self, fields):
        writer = BitWriter()
        normalised = []
        for value, width in fields:
            value &= (1 << width) - 1
            normalised.append((value, width))
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in normalised:
            assert reader.read_bits(width) == value

    @given(st.binary(max_size=64))
    def test_write_read_bytes(self, payload):
        writer = BitWriter()
        writer.write_bit(1)  # force misalignment
        writer.write_bytes(payload)
        reader = BitReader(writer.getvalue())
        assert reader.read_bit() == 1
        assert reader.read_bytes(len(payload)) == payload
