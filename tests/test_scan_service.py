"""Scan contracts above the engines: TierBase ordering and service-level merge.

Pins the two contracts the wire scan path depends on:

* `TierBase.keys()` iterates in sorted key order (the documented contract
  `TierBase.scan` and the service merge build on), and `TierBase.scan`
  honours bounds/limits with decode-on-yield;
* `KVService.scan` returns an identical, globally key-ordered, merged
  stream no matter which shard backend serves it — the lsm/tierbase
  order-equality regression.
"""

import random

import pytest

from repro.service import KVService, ServiceConfig
from repro.tierbase import TierBase


def make_tierbase() -> TierBase:
    return TierBase()  # NoopValueCompressor by default


class TestTierBaseOrdering:
    def test_keys_are_sorted(self):
        store = make_tierbase()
        rng = random.Random(7)
        keys = [f"k{rng.randrange(10_000):05d}" for _ in range(200)]
        for key in keys:
            store.set(key, f"value-{key}")
        listed = list(store.keys())
        assert listed == sorted(set(keys))

    def test_keys_sorted_after_deletes_and_overwrites(self):
        store = make_tierbase()
        for index in range(50):
            store.set(f"k{index:03d}", "v")
        for index in range(0, 50, 3):
            store.delete(f"k{index:03d}")
        for index in range(0, 50, 7):
            store.set(f"k{index:03d}", "back")
        listed = list(store.keys())
        assert listed == sorted(listed)
        assert len(listed) == len(set(listed))

    def test_scan_is_ordered_and_bounded(self):
        store = make_tierbase()
        for index in (5, 1, 9, 3, 7):
            store.set(f"k{index}", f"v{index}")
        assert list(store.scan("k3", "k8")) == [("k3", "v3"), ("k5", "v5"), ("k7", "v7")]
        assert list(store.scan(limit=2)) == [("k1", "v1"), ("k3", "v3")]
        assert list(store.scan("k9", "k1")) == []
        assert list(store.scan(limit=0)) == []

    def test_scan_decodes_through_the_compressor(self):
        store = make_tierbase()  # the noop compressor still roundtrips bytes<->str
        store.set("a", "alpha")
        store.set("b", "beta")
        assert list(store.scan()) == [("a", "alpha"), ("b", "beta")]


def populate(service: KVService, rng_seed: int = 2023) -> dict[str, str]:
    rng = random.Random(rng_seed)
    expected: dict[str, str] = {}
    for index in range(300):
        key = f"key:{rng.randrange(500):04d}"
        value = f"value-{index}"
        service.set(key, value)
        expected[key] = value
    for key in list(expected)[::5]:
        service.delete(key)
        del expected[key]
    return expected


@pytest.fixture(params=["tierbase", "lsm"])
def backend(request):
    return request.param


class TestServiceScan:
    def test_scan_is_globally_ordered(self, backend, tmp_path):
        config = ServiceConfig(
            shard_count=3,
            backend=backend,
            compressor="none",
            directory=tmp_path if backend == "lsm" else None,
        )
        with KVService(config) as service:
            expected = populate(service)
            results = service.scan()
            assert results == sorted(expected.items())
            bounded = service.scan("key:0100", "key:0300")
            assert bounded == [
                (key, value)
                for key, value in sorted(expected.items())
                if "key:0100" <= key < "key:0300"
            ]
            assert service.scan(limit=10) == sorted(expected.items())[:10]
            assert service.scan("z", "a") == []
            assert service.scan(limit=0) == []

    def test_backends_return_identical_scans(self, tmp_path):
        """The order-equality regression: lsm and tierbase must agree."""
        outputs = {}
        for backend in ("tierbase", "lsm"):
            config = ServiceConfig(
                shard_count=2,
                backend=backend,
                compressor="none",
                directory=tmp_path / backend if backend == "lsm" else None,
            )
            with KVService(config) as service:
                populate(service)
                outputs[backend] = {
                    "full": service.scan(),
                    "bounded": service.scan("key:0050", "key:0400"),
                    "limited": service.scan(limit=25),
                }
        assert outputs["tierbase"] == outputs["lsm"]
        assert outputs["tierbase"]["full"] == sorted(outputs["tierbase"]["full"])

    def test_scan_with_per_shard_limit_still_globally_correct(self, tmp_path):
        """Each shard truncates at `limit`, but the merged prefix is exact.

        With limit=N, every shard returns its first N entries; since the
        global first N live in the union of those prefixes, the merged
        islice is the true global prefix.
        """
        config = ServiceConfig(shard_count=4, backend="tierbase", compressor="none")
        with KVService(config) as service:
            for index in range(200):
                service.set(f"k{index:04d}", str(index))
            assert service.scan(limit=7) == [(f"k{i:04d}", str(i)) for i in range(7)]
