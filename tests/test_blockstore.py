"""Tests for the block-wise and record-wise compressed stores (Figure 5 substrate)."""

import pytest

from repro.blockstore import BlockStore, CodecRecordCompressor, RecordStore
from repro.compressors import FSSTCodec, GzipCodec, ZstdLikeCodec
from repro.core.compressor import PBCCompressor
from repro.core.extraction import ExtractionConfig
from repro.exceptions import StoreError


@pytest.fixture
def records():
    return [f"key={index:04d};value=payload-{index % 7};ts={1650000000 + index}" for index in range(100)]


class TestBlockStore:
    def test_invalid_block_size_rejected(self):
        with pytest.raises(StoreError):
            BlockStore(GzipCodec(), block_size=0)

    def test_point_lookups_return_original_records(self, records):
        store = BlockStore.from_records(records, ZstdLikeCodec(level=1), block_size=16)
        for index in (0, 15, 16, 57, 99):
            assert store.get(index) == records[index]

    def test_out_of_range_rejected(self, records):
        store = BlockStore.from_records(records, GzipCodec(), block_size=10)
        with pytest.raises(StoreError):
            store.get(100)
        with pytest.raises(StoreError):
            store.get(-1)

    def test_larger_blocks_compress_better(self, records):
        small = BlockStore.from_records(records, GzipCodec(), block_size=1)
        large = BlockStore.from_records(records, GzipCodec(), block_size=50)
        assert large.ratio < small.ratio

    def test_lookup_stats(self, records):
        store = BlockStore.from_records(records, GzipCodec(), block_size=8)
        stats = store.measure_lookups([3, 9, 27])
        assert stats.lookups == 3
        assert stats.lookups_per_second > 0

    def test_len_and_sizes(self, records):
        store = BlockStore.from_records(records, GzipCodec(), block_size=8)
        assert len(store) == len(records)
        assert store.compressed_bytes > 0


class TestRecordStore:
    def test_codec_adapter_roundtrip(self, records):
        fsst = FSSTCodec()
        fsst.train(record.encode() for record in records[:50])
        store = RecordStore.from_records(records, CodecRecordCompressor(fsst))
        for index in (0, 42, 99):
            assert store.get(index) == records[index]

    def test_pbc_backed_store(self, records):
        pbc = PBCCompressor(config=ExtractionConfig(max_patterns=4, sample_size=48))
        pbc.train(records[:50])
        store = RecordStore.from_records(records, pbc)
        assert store.ratio < 1.0
        assert store.get(77) == records[77]

    def test_out_of_range_rejected(self, records):
        pbc = PBCCompressor(config=ExtractionConfig(max_patterns=4, sample_size=32))
        pbc.train(records[:30])
        store = RecordStore.from_records(records, pbc)
        with pytest.raises(StoreError):
            store.get(len(records))

    def test_lookup_speed_unaffected_by_block_size_concept(self, records):
        # A record store has no blocks: every payload decodes independently.
        fsst = FSSTCodec()
        fsst.train(record.encode() for record in records[:50])
        store = RecordStore.from_records(records, CodecRecordCompressor(fsst))
        stats = store.measure_lookups(list(range(50)))
        assert stats.lookups == 50
