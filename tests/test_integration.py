"""End-to-end integration tests across modules (datasets -> PBC -> stores)."""

import pytest

from repro import ExtractionConfig, PBCCompressor, PBCFCompressor
from repro.blockstore import BlockStore, RecordStore
from repro.compressors import LZMACodec, ZstdLikeCodec, train_dictionary
from repro.core.compressor import PBCBlockCompressor
from repro.core.pattern import PatternDictionary
from repro.datasets import load_dataset
from repro.tierbase import PBCValueCompressor, TierBase, run_workload

CONFIG = ExtractionConfig(max_patterns=8, sample_size=64)


@pytest.fixture(scope="module")
def kv1_records():
    return load_dataset("kv1", count=300)


@pytest.fixture(scope="module")
def trained_pbc(kv1_records):
    compressor = PBCCompressor(config=CONFIG)
    compressor.train(kv1_records[:120])
    return compressor


class TestEndToEndCompression:
    def test_full_dataset_roundtrip(self, trained_pbc, kv1_records):
        payloads = trained_pbc.compress_many(kv1_records)
        assert trained_pbc.decompress_many(payloads) == kv1_records

    def test_compression_beats_dictionary_zstd_on_short_records(self, trained_pbc, kv1_records):
        dictionary = train_dictionary(record.encode() for record in kv1_records[:120])
        zstd = ZstdLikeCodec(level=3, dictionary=dictionary)
        zstd_bytes = sum(len(zstd.compress(record.encode())) for record in kv1_records)
        pbc_bytes = sum(len(payload) for payload in trained_pbc.compress_many(kv1_records))
        assert pbc_bytes < zstd_bytes

    def test_pbc_variants_ordering(self, kv1_records):
        # PBC_L (block compression over PBC output) must be at least as compact
        # as plain PBC; PBC_F stays in the same ballpark (its FSST stage mainly
        # pays off for textual residuals, while KV1 residuals are numeric and
        # already bit-packed, so a small per-record overhead is allowed).
        pbc = PBCCompressor(config=CONFIG)
        pbc.train(kv1_records[:120])
        pbc_f = PBCFCompressor(dictionary=pbc.dictionary, config=CONFIG)
        pbc_f.train_residual(kv1_records[:120])
        pbc_l = PBCBlockCompressor(pbc, LZMACodec(preset=1), name="PBC_L")

        plain_ratio = pbc.measure(kv1_records).ratio
        fsst_ratio = pbc_f.measure(kv1_records).ratio
        block_ratio = pbc_l.measure(kv1_records).ratio
        assert block_ratio <= plain_ratio + 0.02
        assert fsst_ratio <= plain_ratio + 0.08

    def test_dictionary_persistence_across_processes(self, trained_pbc, kv1_records):
        # Simulate shipping the trained dictionary to another process/instance.
        payloads = trained_pbc.compress_many(kv1_records[:50])
        shipped = PatternDictionary.from_bytes(trained_pbc.dictionary.to_bytes())
        other = PBCCompressor(dictionary=shipped)
        assert other.decompress_many(payloads) == kv1_records[:50]


class TestStoresIntegration:
    def test_record_store_vs_block_store_tradeoff(self, trained_pbc, kv1_records):
        record_store = RecordStore.from_records(kv1_records, trained_pbc)
        block_store = BlockStore.from_records(kv1_records, ZstdLikeCodec(level=3), block_size=64)
        # Both must return correct records.
        for index in (0, 123, 299):
            assert record_store.get(index) == kv1_records[index]
            assert block_store.get(index) == kv1_records[index]
        # Per-record PBC keeps random access cheap; block store needs a full
        # block decompression per lookup, so per-lookup work is strictly higher.
        assert record_store.ratio < 1.0
        assert block_store.ratio < 1.0

    def test_tierbase_with_pbc_end_to_end(self, kv1_records):
        store = TierBase(compressor=PBCValueCompressor(config=CONFIG))
        result = run_workload(store, kv1_records[:200], workload_name="it", get_operations=100)
        assert result.memory_usage_percent < 80.0
        assert len(store) == 200
        assert store.get("it:7") == kv1_records[7]
