"""Tests for the scenario suite: key distributions, the mix registry, runner.

The distribution tests pin determinism (same seed → same picks), bounds
(every pick lands in ``[0, n)`` even while ``n`` grows), and shape (zipfian
skews to a small hot set, latest skews to the newest records).  The runner
tests pin the acknowledged-counter insert scheme and run a real two-mix
suite in-process, asserting the oracle's zero-lost/zero-corrupt bar and
the machine-readable row schema the CI artifact is built from.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.scenarios import (
    SCENARIOS,
    LatestKeyChooser,
    ScenarioSpec,
    UniformKeyChooser,
    ZipfianKeyChooser,
    get_scenario,
    key_for,
    make_chooser,
    run_suite,
    scenario_names,
)
from repro.scenarios.runner import _Accounting


class TestKeyDistributions:
    @pytest.mark.parametrize("name", ["uniform", "zipfian", "latest"])
    def test_picks_are_deterministic_and_in_bounds(self, name):
        chooser = make_chooser(name)
        picks = [chooser.choose(random.Random(seed), 100) for seed in range(300)]
        again = [chooser.choose(random.Random(seed), 100) for seed in range(300)]
        assert picks == again
        assert all(0 <= pick < 100 for pick in picks)

    @pytest.mark.parametrize("name", ["uniform", "zipfian", "latest"])
    def test_bounds_hold_while_the_record_space_grows(self, name):
        chooser = make_chooser(name)
        rng = random.Random(7)
        for count in (1, 2, 3, 10, 50, 500, 501, 499, 2000):
            for _ in range(50):
                assert 0 <= chooser.choose(rng, count) < count

    def test_zipfian_rank_zero_is_the_hottest(self):
        chooser = ZipfianKeyChooser(scrambled=False)
        rng = random.Random(2023)
        counts = Counter(chooser.rank(rng, 1000) for _ in range(5000))
        assert counts[0] == max(counts.values())
        # YCSB-grade skew: 1% of the ranks draw well over a third of the
        # traffic (theta=0.99 over 1000 records puts ~39% on the top 10).
        assert sum(counts[rank] for rank in range(10)) > 1500

    def test_scrambled_zipfian_spreads_the_hot_set(self):
        chooser = ZipfianKeyChooser()
        rng = random.Random(2023)
        counts = Counter(chooser.choose(rng, 1000) for _ in range(5000))
        # Still heavily skewed overall, but not clustered at the low indexes.
        assert max(counts.values()) > 100
        assert any(index >= 500 for index, _ in counts.most_common(5))

    def test_latest_favours_the_newest_records(self):
        chooser = LatestKeyChooser()
        rng = random.Random(11)
        picks = [chooser.choose(rng, 1000) for _ in range(3000)]
        assert sum(1 for pick in picks if pick >= 900) > len(picks) // 2

    def test_uniform_covers_the_space(self):
        chooser = UniformKeyChooser()
        rng = random.Random(5)
        picks = {chooser.choose(rng, 20) for _ in range(2000)}
        assert picks == set(range(20))

    def test_single_record_space(self):
        for name in ("uniform", "zipfian", "latest"):
            assert make_chooser(name).choose(random.Random(0), 1) == 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            make_chooser("pareto")
        with pytest.raises(ValueError):
            UniformKeyChooser().choose(random.Random(0), 0)
        with pytest.raises(ValueError):
            ZipfianKeyChooser(theta=1.0)


class TestMixRegistry:
    def test_registry_holds_ycsb_and_paper_mixes(self):
        names = scenario_names()
        assert [name for name in names if name.startswith("ycsb_")] == [
            "ycsb_a", "ycsb_b", "ycsb_c", "ycsb_d", "ycsb_e", "ycsb_f",
        ]
        assert {"paper_logs", "paper_json", "paper_trades"} <= set(names)
        assert len(names) == 9

    def test_all_fractions_sum_to_one(self):
        for spec in SCENARIOS.values():
            total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw
            assert total == pytest.approx(1.0)

    def test_scan_mixes_declare_a_scan_length(self):
        for spec in SCENARIOS.values():
            if spec.scan > 0:
                assert spec.max_scan_length >= 1

    def test_lookup_is_case_insensitive_and_typed(self):
        assert get_scenario("YCSB_A") is SCENARIOS["ycsb_a"]
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("ycsb_z")

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            ScenarioSpec("bad", "", dataset="kv1", distribution="zipfian", read=0.5)
        with pytest.raises(ValueError, match="max_scan_length"):
            ScenarioSpec("bad", "", dataset="kv1", distribution="zipfian", scan=1.0)
        with pytest.raises(ValueError, match="distribution"):
            ScenarioSpec("bad", "", dataset="kv1", distribution="pareto", read=1.0)
        with pytest.raises(ValueError, match="negative"):
            ScenarioSpec(
                "bad", "", dataset="kv1", distribution="zipfian", read=1.5, update=-0.5
            )


class TestRunnerPlumbing:
    def test_key_order_equals_insert_order(self):
        keys = [key_for(index) for index in (0, 1, 9, 10, 99, 100, 12345678)]
        assert keys == sorted(keys)

    def test_acknowledged_counter_advances_contiguously(self):
        accounting = _Accounting(10)
        first, second, third = (accounting.reserve_insert() for _ in range(3))
        assert (first, second, third) == (10, 11, 12)
        accounting.acknowledge_insert(second)  # gap at `first`: not visible yet
        assert accounting.snapshot_visible() == 10
        accounting.acknowledge_insert(first)  # gap closed: both become visible
        assert accounting.snapshot_visible() == 12
        accounting.acknowledge_insert(third)
        assert accounting.snapshot_visible() == 13


ROW_FIELDS = {
    "scenario", "backend", "operations", "errors", "offered_rate",
    "achieved_rate", "p50_ms", "p95_ms", "p99_ms", "ops", "error_kinds",
    "scan_count", "scan_items", "avg_scan_len", "max_scan_len", "records",
    "lost", "corrupt", "unordered",
}


class TestSuiteSmoke:
    def test_two_mix_suite_is_clean_on_both_backends(self):
        results = run_suite(
            ["ycsb_a", "ycsb_e"],
            backends=("tierbase", "lsm"),
            operations=120,
            rate=3000.0,
            records=64,
            value_count=64,
            compressor="none",
        )
        assert [(result.backend, result.scenario) for result in results] == [
            ("tierbase", "ycsb_a"), ("tierbase", "ycsb_e"),
            ("lsm", "ycsb_a"), ("lsm", "ycsb_e"),
        ]
        for result in results:
            row = result.row()
            assert set(row) == ROW_FIELDS
            assert result.clean, row
            assert row["operations"] + row["errors"] == 120
            assert row["errors"] == 0
        scan_rows = [r.row() for r in results if r.scenario == "ycsb_e"]
        for row in scan_rows:
            assert row["scan_count"] > 0
            assert row["scan_items"] > 0
            assert 1 <= row["max_scan_len"] <= 64
            assert row["records"] >= 64  # inserts landed and were acknowledged

    def test_trainable_compressor_suite_decodes_cleanly(self):
        """The oracle's corrupt tally doubles as a stale-decode detector."""
        results = run_suite(
            ["paper_trades"],
            backends=("tierbase",),
            operations=100,
            rate=3000.0,
            records=48,
            value_count=48,
            compressor="pbc_f",
        )
        (result,) = results
        assert result.clean, result.row()
        assert result.open_loop.errors == 0
