"""End-to-end tests of the observability surface on a live wire server.

The acceptance bar from the ISSUE: during a live open-loop wire workload,
``GET /metrics`` (HTTP sidecar) and the ``METRICS`` opcode return identical
parseable exposition text with histogram monotonicity, and the per-opcode
request counters reconcile exactly with the load generator's client-side
tally — zero drift over >= 10k requests.

Every wait in this file is bounded; the CI ``observability`` job additionally
wraps the whole file in a hard 120 s timeout.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.net import KVClient, ServerConfig, ThreadedKVServer, run_open_loop_workload
from repro.obs import CONTENT_TYPE, parse_text
from repro.service import KVService, ServiceConfig

from tests.conftest import make_template_records

#: Bound on every blocking wait in this file.
WAIT = 30.0

#: Sample families allowed to differ between two back-to-back scrapes: the
#: in-flight gauge depends on which transport is mid-request, and model epoch
#: age is wall-clock-derived.
SCRAPE_RACE_EXEMPT = {"repro_inflight_requests", "repro_shard_model_epoch_age_seconds"}


@pytest.fixture
def server():
    """A served KVService (2 uncompressed shards) with an HTTP metrics sidecar."""
    service = KVService(ServiceConfig(shard_count=2, compressor="none"))
    threaded = ThreadedKVServer(
        service, ServerConfig(port=0, max_inflight=32, metrics_port=0)
    )
    threaded.start()
    try:
        yield threaded
    finally:
        threaded.stop()
        service.close()


def _http_get(host: str, port: int, path: str) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(f"http://{host}:{port}{path}")
    try:
        with urllib.request.urlopen(request, timeout=WAIT) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


# ------------------------------------------------------------- scrape equality


class TestScrapeTransports:
    def test_http_and_opcode_scrapes_are_identical(self, server):
        """The sidecar and the METRICS opcode render the same registry: equal
        sample keysets, equal values outside the two clock/transport-dependent
        families."""
        host, port = server.address
        metrics_host, metrics_port = server.metrics_address
        with KVClient(host, port, pool_size=1) as client:
            # The wire connection must exist before the HTTP scrape, so both
            # scrapes see the same connection gauges; request counting happens
            # after dispatch, so the opcode scrape does not count itself.
            client.set("obs-k1", "v1")
            client.set("obs-k2", "v2")
            assert client.get("obs-k1") == "v1"
            assert client.mget(["obs-k1", "obs-k2"]) == ["v1", "v2"]

            status, headers, body = _http_get(metrics_host, metrics_port, "/metrics")
            assert status == 200
            assert headers["Content-Type"] == CONTENT_TYPE
            http_samples = parse_text(body.decode("utf-8"))

            opcode_samples = parse_text(client.metrics())

        assert set(http_samples) == set(opcode_samples)
        drift = {
            key: (http_samples[key], opcode_samples[key])
            for key in http_samples
            if key[0] not in SCRAPE_RACE_EXEMPT
            and http_samples[key] != opcode_samples[key]
        }
        assert drift == {}

    def test_scrape_covers_the_documented_families(self, server):
        """Every eagerly-registered family appears in the exposition text even
        before traffic (anti-ghost: no name exists only in the docs)."""
        host, port = server.address
        text = _scrape_over_wire(host, port)
        for family in server.server.registry.families():
            # Labelled families with no children yet still render HELP/TYPE,
            # so every registered name is visible from the very first scrape.
            assert f"# TYPE {family.name} {family.kind}" in text
            assert f"# HELP {family.name} " in text

    def test_healthz_404_and_405(self, server):
        metrics_host, metrics_port = server.metrics_address
        status, _, body = _http_get(metrics_host, metrics_port, "/healthz")
        assert (status, body) == (200, b"ok\n")
        status, _, _ = _http_get(metrics_host, metrics_port, "/nope")
        assert status == 404
        request = urllib.request.Request(
            f"http://{metrics_host}:{metrics_port}/metrics", data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=WAIT)
        assert excinfo.value.code == 405


def _scrape_over_wire(host: str, port: int) -> str:
    with KVClient(host, port, pool_size=1) as client:
        return client.metrics()


# -------------------------------------------------------------- reconciliation


class TestCounterReconciliation:
    def test_open_loop_counters_reconcile_with_zero_drift(self, server):
        """>= 10k open-loop requests: ``repro_requests_total`` must equal the
        client-side tally exactly, per opcode, including the preload MSETs;
        histogram counts must match their counters; rendered buckets must be
        monotone with ``+Inf == _count``.  Service snapshots taken *during*
        the workload must pass ``validate(concurrent=True)``."""
        host, port = server.address
        values = make_template_records(256)
        service = server.server.service

        snapshot_failures: list[BaseException] = []
        stop_snapshots = threading.Event()

        def snapshot_loop() -> None:
            # Concurrent scrapes: the capture-order guarantee in
            # KVService.snapshot() must hold validate() mid-traffic.
            while not stop_snapshots.is_set():
                try:
                    service.snapshot().validate(concurrent=True)
                except BaseException as error:  # noqa: BLE001 — reported below
                    snapshot_failures.append(error)
                    return

        scraper = threading.Thread(target=snapshot_loop, name="snapshot-loop")
        scraper.start()
        try:
            result = run_open_loop_workload(
                host, port, values, rate=4000.0, operations=10_000,
                get_fraction=0.7, workers=8, timeout=WAIT,
            )
        finally:
            stop_snapshots.set()
            scraper.join(timeout=WAIT)
        assert snapshot_failures == []
        assert result.errors == 0
        assert result.completed == result.offered_operations == 10_000

        samples = parse_text(_scrape_over_wire(host, port))

        def counted(opcode: str) -> float:
            return samples[("repro_requests_total", (("opcode", opcode),))]

        # Zero drift: the server counted exactly what the clients tallied.
        assert counted("GET") == result.opcode_counts["GET"]
        assert counted("SET") == result.opcode_counts["SET"]
        assert counted("MSET") == result.preload_msets
        assert result.opcode_counts["GET"] + result.opcode_counts["SET"] == 10_000

        for opcode in ("GET", "SET", "MSET"):
            labels = (("opcode", opcode),)
            count = samples[("repro_request_latency_seconds_count", labels)]
            assert count == counted(opcode)
            buckets = sorted(
                (float(dict(key[1])["le"].replace("+Inf", "inf")), value)
                for key, value in samples.items()
                if key[0] == "repro_request_latency_seconds_bucket"
                and dict(key[1])["opcode"] == opcode
            )
            values_only = [value for _, value in buckets]
            assert values_only == sorted(values_only), f"{opcode} buckets not monotone"
            assert buckets[-1][0] == float("inf")
            assert buckets[-1][1] == count

        # The achieved rate is reported against the offered timetable.
        assert result.offered_rate == 4000.0
        assert result.achieved_rate > 0
