"""Tests for the multi-pattern matcher (Hyperscan substitute)."""

from repro.core.encoders import IntEncoder, VarcharEncoder
from repro.core.matcher import MultiPatternMatcher
from repro.core.pattern import Pattern, PatternDictionary


def build_dictionary() -> PatternDictionary:
    dictionary = PatternDictionary()
    dictionary.add(
        Pattern(pattern_id=1, literals=("", "ob", ""), encoders=(VarcharEncoder(), VarcharEncoder()))
    )  # matches "*ob*"
    dictionary.add(
        Pattern(pattern_id=2, literals=("", "ooba", ""), encoders=(VarcharEncoder(), VarcharEncoder()))
    )  # matches "*ooba*"
    dictionary.add(
        Pattern(pattern_id=3, literals=("num=", ""), encoders=(IntEncoder(4),))
    )
    return dictionary


class TestMatching:
    def test_longest_pattern_wins(self):
        # The paper's Section 3.2 example: "foobar" matches both "*ob*" and
        # "*ooba*"; the longer pattern must be selected.
        matcher = MultiPatternMatcher(build_dictionary())
        match = matcher.match("foobar")
        assert match is not None
        assert match.pattern.pattern_id == 2
        assert match.pattern.reconstruct(match.field_values) == "foobar"

    def test_all_matches_are_returned_by_match_all(self):
        matcher = MultiPatternMatcher(build_dictionary())
        ids = {match.pattern.pattern_id for match in matcher.match_all("foobar")}
        assert ids == {1, 2}

    def test_typed_field_constrains_match(self):
        matcher = MultiPatternMatcher(build_dictionary())
        assert matcher.match("num=1234").pattern.pattern_id == 3
        # Non-digit payload cannot match the INT-typed pattern; no other pattern fits.
        assert matcher.match("num=abcd") is None

    def test_outlier_returns_none(self):
        matcher = MultiPatternMatcher(build_dictionary())
        assert matcher.match("zzz") is None

    def test_prefix_and_suffix_prefilter(self):
        dictionary = PatternDictionary()
        dictionary.add(Pattern(pattern_id=1, literals=("GET /", " HTTP/1.1"), encoders=(VarcharEncoder(),)))
        matcher = MultiPatternMatcher(dictionary)
        assert matcher.match("GET /index.html HTTP/1.1") is not None
        assert matcher.match("POST /index.html HTTP/1.1") is None
        assert matcher.match("GET /index.html HTTP/2") is None

    def test_empty_dictionary_matches_nothing(self):
        matcher = MultiPatternMatcher(PatternDictionary())
        assert len(matcher) == 0
        assert matcher.match("anything") is None

    def test_field_values_align_with_encoders(self):
        matcher = MultiPatternMatcher(build_dictionary())
        match = matcher.match("num=0042")
        assert match.field_values == ("0042",)
