"""Tests for the multi-pattern matcher (Hyperscan substitute)."""

from repro.core.encoders import IntEncoder, VarcharEncoder
from repro.core.matcher import MultiPatternMatcher
from repro.core.pattern import Pattern, PatternDictionary


def build_dictionary() -> PatternDictionary:
    dictionary = PatternDictionary()
    dictionary.add(
        Pattern(pattern_id=1, literals=("", "ob", ""), encoders=(VarcharEncoder(), VarcharEncoder()))
    )  # matches "*ob*"
    dictionary.add(
        Pattern(pattern_id=2, literals=("", "ooba", ""), encoders=(VarcharEncoder(), VarcharEncoder()))
    )  # matches "*ooba*"
    dictionary.add(
        Pattern(pattern_id=3, literals=("num=", ""), encoders=(IntEncoder(4),))
    )
    return dictionary


class TestMatching:
    def test_longest_pattern_wins(self):
        # The paper's Section 3.2 example: "foobar" matches both "*ob*" and
        # "*ooba*"; the longer pattern must be selected.
        matcher = MultiPatternMatcher(build_dictionary())
        match = matcher.match("foobar")
        assert match is not None
        assert match.pattern.pattern_id == 2
        assert match.pattern.reconstruct(match.field_values) == "foobar"

    def test_all_matches_are_returned_by_match_all(self):
        matcher = MultiPatternMatcher(build_dictionary())
        ids = {match.pattern.pattern_id for match in matcher.match_all("foobar")}
        assert ids == {1, 2}

    def test_typed_field_constrains_match(self):
        matcher = MultiPatternMatcher(build_dictionary())
        assert matcher.match("num=1234").pattern.pattern_id == 3
        # Non-digit payload cannot match the INT-typed pattern; no other pattern fits.
        assert matcher.match("num=abcd") is None

    def test_outlier_returns_none(self):
        matcher = MultiPatternMatcher(build_dictionary())
        assert matcher.match("zzz") is None

    def test_prefix_and_suffix_prefilter(self):
        dictionary = PatternDictionary()
        dictionary.add(Pattern(pattern_id=1, literals=("GET /", " HTTP/1.1"), encoders=(VarcharEncoder(),)))
        matcher = MultiPatternMatcher(dictionary)
        assert matcher.match("GET /index.html HTTP/1.1") is not None
        assert matcher.match("POST /index.html HTTP/1.1") is None
        assert matcher.match("GET /index.html HTTP/2") is None

    def test_empty_dictionary_matches_nothing(self):
        matcher = MultiPatternMatcher(PatternDictionary())
        assert len(matcher) == 0
        assert matcher.match("anything") is None

    def test_field_values_align_with_encoders(self):
        matcher = MultiPatternMatcher(build_dictionary())
        match = matcher.match("num=0042")
        assert match.field_values == ("0042",)


class TestCandidateIndexAndMemo:
    """The PR-8 fast paths (first-char candidate buckets + match memo) must be
    behaviourally invisible: same winner, same field values, bounded memory."""

    RECORDS = [
        "foobar", "fooba", "ob", "num=0042", "num=abcd", "zzz",
        "", "foobarfoobar", "num=0042extra",
    ]

    def test_memo_on_and_off_agree(self):
        dictionary = build_dictionary()
        memoized = MultiPatternMatcher(dictionary)
        unmemoized = MultiPatternMatcher(dictionary, memo_entries=0)
        for _ in range(3):  # repeats exercise the memo-hit path
            for record in self.RECORDS:
                expected = unmemoized.match(record)
                actual = memoized.match(record)
                if expected is None:
                    assert actual is None, record
                else:
                    assert actual is not None, record
                    assert actual.pattern.pattern_id == expected.pattern.pattern_id
                    assert actual.field_values == expected.field_values

    def test_memo_is_cleared_at_capacity_not_grown(self):
        matcher = MultiPatternMatcher(build_dictionary(), memo_entries=4)
        for index in range(100):
            matcher.match(f"num={index:04d}")
        assert len(matcher._memo) <= 4

    def test_memo_disabled_stores_nothing(self):
        matcher = MultiPatternMatcher(build_dictionary(), memo_entries=0)
        for record in self.RECORDS:
            matcher.match(record)
        assert matcher._memo == {}

    def test_candidate_index_agrees_with_linear_scan(self):
        """The bucket index must select the same longest pattern as the
        original prefilter-every-pattern loop (kept in bench.hotpaths)."""
        from repro import PBCCompressor
        from repro.bench.hotpaths import LegacyMatcher
        from repro.datasets import load_dataset

        sample = load_dataset("hdfs", count=128, seed=7)
        dictionary = PBCCompressor().train(sample).dictionary
        legacy = LegacyMatcher(dictionary)
        current = MultiPatternMatcher(dictionary, memo_entries=0)
        probes = load_dataset("hdfs", count=64, seed=11) + ["", "zzz no match", sample[0] * 2]
        for record in probes:
            expected = legacy.match(record)
            actual = current.match(record)
            if expected is None:
                assert actual is None, record
            else:
                assert actual is not None, record
                assert actual.pattern.pattern_id == expected.pattern.pattern_id
                assert actual.field_values == expected.field_values

    def test_unprefixed_patterns_reach_every_first_character(self):
        dictionary = PatternDictionary()
        dictionary.add(
            Pattern(pattern_id=1, literals=("", "mid", ""), encoders=(VarcharEncoder(), VarcharEncoder()))
        )
        dictionary.add(Pattern(pattern_id=2, literals=("pre", ""), encoders=(VarcharEncoder(),)))
        matcher = MultiPatternMatcher(dictionary)
        # 'q' has no bucket of its own: the unprefixed fallback must serve it.
        assert matcher.match("q-mid-q").pattern.pattern_id == 1
        assert matcher.match("pretail").pattern.pattern_id == 2
        assert matcher.match("") is None
