"""Tests for the LSM engine's building blocks: Bloom filter, memtable, write-ahead log."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import StoreError
from repro.lsm import TOMBSTONE, BloomFilter, MemTable, WriteAheadLog
from repro.lsm.wal import OP_DELETE, OP_PUT


class TestBloomFilter:
    def test_added_keys_are_reported_present(self):
        bloom = BloomFilter(capacity=100)
        keys = [f"user:{index}".encode() for index in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_false_positive_rate_is_reasonable(self):
        bloom = BloomFilter(capacity=500, false_positive_rate=0.01)
        for index in range(500):
            bloom.add(f"present:{index}".encode())
        false_positives = sum(
            bloom.might_contain(f"absent:{index}".encode()) for index in range(2000)
        )
        assert false_positives / 2000 < 0.05

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(capacity=10)
        assert not bloom.might_contain(b"anything")
        assert len(bloom) == 0

    def test_serialisation_roundtrip(self):
        bloom = BloomFilter(capacity=50)
        for index in range(50):
            bloom.add(f"key{index}".encode())
        restored, offset = BloomFilter.from_bytes(bloom.to_bytes())
        assert offset == len(bloom.to_bytes())
        assert len(restored) == 50
        assert all(restored.might_contain(f"key{index}".encode()) for index in range(50))

    def test_serialisation_rejects_truncation(self):
        bloom = BloomFilter(capacity=50)
        bloom.add(b"key")
        payload = bloom.to_bytes()
        with pytest.raises(StoreError):
            BloomFilter.from_bytes(payload[: len(payload) // 2])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(StoreError):
            BloomFilter(capacity=0)
        with pytest.raises(StoreError):
            BloomFilter(capacity=10, false_positive_rate=1.5)

    def test_estimated_false_positive_rate_grows_with_fill(self):
        bloom = BloomFilter(capacity=20, false_positive_rate=0.01)
        assert bloom.estimated_false_positive_rate() == 0.0
        for index in range(200):  # heavily overfill
            bloom.add(f"key{index}".encode())
        assert bloom.estimated_false_positive_rate() > 0.01
        assert 0 < bloom.fill_ratio <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=50))
    def test_no_false_negatives_property(self, keys):
        bloom = BloomFilter(capacity=len(keys))
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)


class TestMemTable:
    def test_put_and_get(self):
        table = MemTable()
        table.put("alpha", "1")
        assert table.get("alpha") == (True, "1")
        assert table.get("beta") == (False, None)

    def test_overwrite_keeps_latest_value(self):
        table = MemTable()
        table.put("key", "old")
        table.put("key", "new")
        assert table.get("key") == (True, "new")
        assert len(table) == 1

    def test_delete_records_tombstone(self):
        table = MemTable()
        table.put("key", "value")
        table.delete("key")
        found, value = table.get("key")
        assert found
        assert value is TOMBSTONE

    def test_delete_of_missing_key_still_recorded(self):
        table = MemTable()
        table.delete("ghost")
        assert table.get("ghost") == (True, TOMBSTONE)

    def test_items_are_sorted(self):
        table = MemTable()
        for key in ["zeta", "alpha", "mid"]:
            table.put(key, key.upper())
        assert [key for key, _ in table.items()] == ["alpha", "mid", "zeta"]

    def test_approximate_bytes_tracks_growth_and_overwrites(self):
        table = MemTable()
        table.put("key", "aaaa")
        first = table.approximate_bytes
        table.put("key", "aaaaaaaa")
        assert table.approximate_bytes > first
        table.put("key", "a")
        assert table.approximate_bytes < first + 8

    def test_clear_resets_state(self):
        table = MemTable()
        table.put("key", "value")
        table.clear()
        assert len(table) == 0
        assert table.approximate_bytes == 0

    def test_empty_key_rejected(self):
        table = MemTable()
        with pytest.raises(StoreError):
            table.put("", "value")
        with pytest.raises(StoreError):
            table.delete("")

    def test_contains(self):
        table = MemTable()
        table.put("key", "value")
        assert "key" in table
        assert "other" not in table


class TestWriteAheadLog:
    def test_replay_returns_appended_operations(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append_put("alpha", "1")
        wal.append_delete("beta")
        wal.append_put("gamma", "3")
        wal.close()
        replayed = list(WriteAheadLog(tmp_path / "wal.log").replay())
        assert replayed == [(OP_PUT, "alpha", "1"), (OP_DELETE, "beta", ""), (OP_PUT, "gamma", "3")]

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        (tmp_path / "wal.log").unlink()
        assert list(wal.replay()) == []

    def test_reset_truncates_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append_put("key", "value")
        wal.reset()
        assert list(wal.replay()) == []
        assert wal.size_bytes == 0
        wal.close()

    def test_replay_stops_at_corrupt_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append_put("good", "entry")
        wal.append_put("second", "entry")
        wal.close()
        # Flip a byte inside the second entry's body to corrupt its checksum.
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        replayed = list(WriteAheadLog(path).replay())
        assert replayed == [(OP_PUT, "good", "entry")]

    def test_replay_stops_at_truncated_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append_put("good", "entry")
        wal.append_put("torn", "entry")
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 3])
        replayed = list(WriteAheadLog(path).replay())
        assert replayed == [(OP_PUT, "good", "entry")]

    def test_append_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(StoreError):
            wal.append_put("key", "value")

    def test_unicode_keys_and_values_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append_put("clé", "värde-值")
        wal.close()
        assert list(WriteAheadLog(tmp_path / "wal.log").replay()) == [(OP_PUT, "clé", "värde-值")]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.text(min_size=1, max_size=12), st.text(max_size=24)),
            max_size=20,
        )
    )
    def test_replay_property(self, tmp_path_factory, operations):
        path = tmp_path_factory.mktemp("wal") / "wal.log"
        wal = WriteAheadLog(path)
        for key, value in operations:
            wal.append_put(key, value)
        wal.close()
        replayed = list(WriteAheadLog(path).replay())
        assert replayed == [(OP_PUT, key, value) for key, value in operations]
