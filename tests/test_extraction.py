"""Tests for the pattern-extraction pipeline (sampling, clustering, specialisation)."""

import pytest

from repro.core.extraction import ExtractionConfig, PatternExtractor
from repro.core.matcher import MultiPatternMatcher
from repro.exceptions import ClusteringError


class TestSampling:
    def test_sample_size_budget(self):
        extractor = PatternExtractor(ExtractionConfig(sample_size=10))
        sample = extractor._sample([f"record-{index}" for index in range(100)])
        assert len(sample) == 10

    def test_sample_bytes_budget(self):
        extractor = PatternExtractor(ExtractionConfig(sample_size=None, sample_bytes=50))
        sample = extractor._sample(["x" * 20 for _ in range(10)])
        assert sum(len(record) for record in sample) <= 60
        assert len(sample) >= 1

    def test_sampling_is_deterministic(self):
        records = [f"record-{index}" for index in range(100)]
        first = PatternExtractor(ExtractionConfig(sample_size=10, seed=3))._sample(records)
        second = PatternExtractor(ExtractionConfig(sample_size=10, seed=3))._sample(records)
        assert first == second


class TestExtraction:
    def test_empty_sample_rejected(self):
        with pytest.raises(ClusteringError):
            PatternExtractor().extract([])

    def test_two_templates_two_patterns(self, small_config, template_records):
        report = PatternExtractor(small_config).extract(template_records)
        assert 1 <= len(report.dictionary) <= small_config.max_patterns
        matcher = MultiPatternMatcher(report.dictionary)
        matched = sum(1 for record in template_records if matcher.match(record) is not None)
        assert matched / len(template_records) > 0.85

    def test_digit_fields_get_numeric_encoders(self, small_config):
        records = [f"metric={index:06d};host=web{index % 4}" for index in range(60)]
        dictionary = PatternExtractor(small_config).fit(records)
        specs = {encoder.spec() for pattern in dictionary for encoder in pattern.encoders}
        assert any(spec.startswith("INT(") or spec == "VARINT" for spec in specs)

    def test_extraction_report_statistics(self, small_config, template_records):
        report = PatternExtractor(small_config).extract(template_records)
        assert report.sample_count <= small_config.sample_size
        assert report.sample_bytes > 0
        assert report.clustering_stats.initial_clusters >= report.clustering_stats.final_clusters
        assert sum(report.cluster_sizes) <= report.sample_count

    def test_patterns_reconstruct_training_records(self, small_config):
        records = [f"evt|{index % 7}|{1000 + index}|ok" for index in range(80)]
        dictionary = PatternExtractor(small_config).fit(records)
        matcher = MultiPatternMatcher(dictionary)
        for record in records[:20]:
            match = matcher.match(record)
            assert match is not None
            assert match.pattern.reconstruct(match.field_values) == record

    def test_refinement_can_be_disabled(self, template_records):
        config = ExtractionConfig(max_patterns=6, sample_size=64, refine_patterns=False)
        dictionary = PatternExtractor(config).fit(template_records)
        assert len(dictionary) >= 1

    def test_refinement_never_hurts_encoded_size(self):
        # Records whose digit fields are fragmented by spurious matches: the
        # refined pattern must encode the training sample at least as compactly.
        records = [f"cnt:{name}:{index:06d}" for index, name in enumerate(["alpha", "beta", "gamma", "delta"] * 10)]
        refined_config = ExtractionConfig(max_patterns=2, sample_size=32, refine_patterns=True)
        plain_config = ExtractionConfig(max_patterns=2, sample_size=32, refine_patterns=False)
        refined = PatternExtractor(refined_config).fit(records)
        plain = PatternExtractor(plain_config).fit(records)

        def encoded_size(dictionary):
            matcher = MultiPatternMatcher(dictionary)
            total = 0
            for record in records:
                match = matcher.match(record)
                if match is None:
                    total += len(record)
                else:
                    total += len(match.pattern.encode_fields(match.field_values))
            return total

        assert encoded_size(refined) <= encoded_size(plain)

    def test_single_record_sample(self):
        dictionary = PatternExtractor(ExtractionConfig(max_patterns=4, sample_size=8)).fit(["only-one-record"])
        assert len(dictionary) == 1
        pattern = next(iter(dictionary))
        assert pattern.reconstruct([""] * pattern.field_count) == "only-one-record" or pattern.field_count == 0
