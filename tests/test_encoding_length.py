"""Tests for the encoding-length model (Definitions 1-2)."""

import pytest

from repro.core.encoders import IntEncoder, VarcharEncoder
from repro.core.encoding_length import (
    encoding_length,
    minimal_encoding_length,
    residual_field_values,
    varchar_encoding_length,
)
from repro.core.pattern import WILDCARD


PATTERN = ["i", "d", "=", WILDCARD, ";", "v", "=", WILDCARD]


class TestResidualExtraction:
    def test_matching_record(self):
        assert residual_field_values(PATTERN, "id=123;v=abc") == ["123", "abc"]

    def test_non_matching_record(self):
        assert residual_field_values(PATTERN, "nope") is None

    def test_empty_fields(self):
        assert residual_field_values(PATTERN, "id=;v=") == ["", ""]


class TestEncodingLength:
    def test_varchar_definition(self):
        records = ["id=123;v=abc", "id=9;v=zz"]
        # VARCHAR cost = 1-byte header + payload for each field value.
        expected = (1 + 3) + (1 + 3) + (1 + 1) + (1 + 2)
        assert varchar_encoding_length(records, PATTERN) == expected
        assert encoding_length(records, PATTERN) == expected

    def test_explicit_encoders(self):
        records = ["id=123;v=abc", "id=456;v=xyz"]
        encoders = [IntEncoder(3), VarcharEncoder()]
        expected = 2 * (2 + (1 + 3))
        assert encoding_length(records, PATTERN, encoders) == expected

    def test_wrong_encoder_count_rejected(self):
        with pytest.raises(ValueError):
            encoding_length(["id=1;v=a"], PATTERN, [VarcharEncoder()])

    def test_non_matching_record_rejected(self):
        with pytest.raises(ValueError):
            encoding_length(["garbage"], PATTERN)

    def test_minimal_encoding_length_not_larger_than_varchar(self):
        records = ["id=123;v=abc", "id=456;v=def", "id=789;v=ghi"]
        assert minimal_encoding_length(records, PATTERN) <= varchar_encoding_length(records, PATTERN)

    def test_minimal_encoding_length_uses_int_packing(self):
        records = [f"id={index:06d};v=x" for index in range(4)]
        # INT(6,3) costs 3 bytes per record for the digit field (VARCHAR would
        # cost 7) and the constant one-character field packs as CHAR(1).
        minimal = minimal_encoding_length(records, PATTERN)
        assert minimal == 4 * (3 + 1)

    def test_pattern_without_fields(self):
        assert minimal_encoding_length(["abc", "abc"], ["a", "b", "c"]) == 0
