"""Tests for the ``pbc`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.pattern import PatternDictionary

from tests.conftest import make_template_records


@pytest.fixture
def records_file(tmp_path):
    """A training/input file with one machine-generated record per line."""
    path = tmp_path / "records.txt"
    path.write_text("\n".join(make_template_records(120, seed=21)) + "\n", encoding="utf-8")
    return path


def train_dictionary_file(tmp_path, records_file):
    """Run ``pbc train`` and return the dictionary path."""
    dictionary_path = tmp_path / "dict.json"
    exit_code = main(
        [
            "train",
            "--input",
            str(records_file),
            "--output",
            str(dictionary_path),
            "--max-patterns",
            "6",
            "--sample-size",
            "64",
        ]
    )
    assert exit_code == 0
    return dictionary_path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "pbc" in capsys.readouterr().out

    def test_train_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--output", "dict.json"])

    def test_train_rejects_both_sources(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--input", "a.txt", "--dataset", "kv1", "--output", "dict.json"]
            )


class TestListingCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "kv1" in output
        assert "unece" in output

    def test_codecs_listing(self, capsys):
        assert main(["codecs"]) == 0
        output = capsys.readouterr().out
        for name in ("zstd", "lz4", "fsst", "repair", "sequitur"):
            assert name in output

    def test_codecs_list_prints_the_registry(self, capsys):
        from repro.codecs import codec_specs

        assert main(["codecs", "list"]) == 0
        output = capsys.readouterr().out
        for spec in codec_specs():
            assert spec.name in output
            assert f"0x{spec.magic.hex().upper()}" in output
        assert "trainable" in output

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "table3" in output
        assert "fig5" in output


class TestTrainAndInspect:
    def test_train_from_file_writes_dictionary(self, tmp_path, records_file, capsys):
        dictionary_path = train_dictionary_file(tmp_path, records_file)
        output = capsys.readouterr().out
        assert "trained" in output
        dictionary = PatternDictionary.from_bytes(dictionary_path.read_bytes())
        assert len(dictionary) >= 1

    def test_train_from_dataset(self, tmp_path, capsys):
        dictionary_path = tmp_path / "dict.json"
        exit_code = main(
            [
                "train",
                "--dataset",
                "apache",
                "--count",
                "120",
                "--output",
                str(dictionary_path),
                "--max-patterns",
                "8",
                "--sample-size",
                "48",
            ]
        )
        assert exit_code == 0
        assert dictionary_path.exists()

    def test_train_verbose_prints_patterns(self, tmp_path, records_file, capsys):
        dictionary_path = tmp_path / "dict.json"
        main(
            [
                "train",
                "--input",
                str(records_file),
                "--output",
                str(dictionary_path),
                "--max-patterns",
                "6",
                "--sample-size",
                "64",
                "--verbose",
            ]
        )
        assert "[1]" in capsys.readouterr().out

    def test_train_on_empty_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("", encoding="utf-8")
        exit_code = main(["train", "--input", str(empty), "--output", str(tmp_path / "d.json")])
        assert exit_code == 2
        assert "no training records" in capsys.readouterr().err

    def test_inspect_prints_patterns(self, tmp_path, records_file, capsys):
        dictionary_path = train_dictionary_file(tmp_path, records_file)
        capsys.readouterr()
        assert main(["inspect", "--dictionary", str(dictionary_path)]) == 0
        output = capsys.readouterr().out
        assert "patterns" in output

    def test_inspect_missing_file_fails_gracefully(self, tmp_path, capsys):
        exit_code = main(["inspect", "--dictionary", str(tmp_path / "absent.json")])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err


class TestCompressDecompress:
    def test_roundtrip_through_files(self, tmp_path, records_file, capsys):
        dictionary_path = train_dictionary_file(tmp_path, records_file)
        compressed_path = tmp_path / "records.pbc"
        restored_path = tmp_path / "restored.txt"

        assert (
            main(
                [
                    "compress",
                    "--dictionary",
                    str(dictionary_path),
                    "--input",
                    str(records_file),
                    "--output",
                    str(compressed_path),
                ]
            )
            == 0
        )
        assert "ratio" in capsys.readouterr().out
        assert compressed_path.stat().st_size < records_file.stat().st_size

        assert (
            main(
                [
                    "decompress",
                    "--dictionary",
                    str(dictionary_path),
                    "--input",
                    str(compressed_path),
                    "--output",
                    str(restored_path),
                ]
            )
            == 0
        )
        assert restored_path.read_text(encoding="utf-8") == records_file.read_text(encoding="utf-8")

    def test_decompress_rejects_non_pbc_file(self, tmp_path, records_file, capsys):
        dictionary_path = train_dictionary_file(tmp_path, records_file)
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"not a pbc file")
        exit_code = main(
            [
                "decompress",
                "--dictionary",
                str(dictionary_path),
                "--input",
                str(bogus),
                "--output",
                str(tmp_path / "out.txt"),
            ]
        )
        assert exit_code == 2
        assert "not a pbc-compressed file" in capsys.readouterr().err

    def test_compress_with_missing_dictionary_fails_gracefully(self, tmp_path, records_file, capsys):
        exit_code = main(
            [
                "compress",
                "--dictionary",
                str(tmp_path / "absent.json"),
                "--input",
                str(records_file),
                "--output",
                str(tmp_path / "out.pbc"),
            ]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err


class TestStreamCommands:
    def test_stream_roundtrip_through_files(self, tmp_path, records_file, capsys):
        container = tmp_path / "records.rps"
        restored = tmp_path / "restored.txt"
        assert (
            main(
                [
                    "stream",
                    "compress",
                    "--input",
                    str(records_file),
                    "--output",
                    str(container),
                    "--codec",
                    "adaptive",
                    "--frame-records",
                    "40",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "frames" in output
        assert (
            main(["stream", "decompress", "--input", str(container), "--output", str(restored)])
            == 0
        )
        assert restored.read_text(encoding="utf-8") == records_file.read_text(encoding="utf-8")

    def test_stream_inspect_lists_frames(self, tmp_path, records_file, capsys):
        container = tmp_path / "records.rps"
        main(
            [
                "stream", "compress", "--input", str(records_file),
                "--output", str(container), "--codec", "gzip", "--frame-records", "50",
            ]
        )
        capsys.readouterr()
        assert main(["stream", "inspect", "--input", str(container)]) == 0
        output = capsys.readouterr().out
        assert "stream container v1" in output
        assert "gzip" in output

    def test_stream_get_returns_exact_record(self, tmp_path, records_file, capsys):
        container = tmp_path / "records.rps"
        main(
            [
                "stream", "compress", "--input", str(records_file),
                "--output", str(container), "--codec", "pbc", "--frame-records", "32",
            ]
        )
        records = records_file.read_text(encoding="utf-8").splitlines()
        capsys.readouterr()
        assert main(["stream", "get", "--input", str(container), "--index", "77"]) == 0
        assert capsys.readouterr().out.rstrip("\n") == records[77]

    def test_stream_get_out_of_range_fails_gracefully(self, tmp_path, records_file, capsys):
        container = tmp_path / "records.rps"
        main(
            [
                "stream", "compress", "--input", str(records_file),
                "--output", str(container), "--codec", "raw",
            ]
        )
        capsys.readouterr()
        assert main(["stream", "get", "--input", str(container), "--index", "99999"]) == 1
        assert "error" in capsys.readouterr().err

    def test_stream_inspect_rejects_non_stream_file(self, records_file, capsys):
        assert main(["stream", "inspect", "--input", str(records_file)]) == 1
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_unknown_experiment_id_fails_gracefully(self, capsys):
        exit_code = main(["experiment", "does-not-exist"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_table2_experiment_runs(self, capsys):
        assert main(["experiment", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "kv1" in output
