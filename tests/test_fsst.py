"""Tests for the FSST-style symbol-table codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compressors.fsst import (
    ESCAPE_CODE,
    FSSTCodec,
    MAX_SYMBOLS,
    SymbolTable,
    train_symbol_table,
)
from repro.exceptions import DecodingError


class TestSymbolTable:
    def test_empty_table_escapes_everything(self):
        table = SymbolTable()
        encoded = table.encode(b"ab")
        assert encoded == bytes([ESCAPE_CODE, ord("a"), ESCAPE_CODE, ord("b")])
        assert table.decode(encoded) == b"ab"

    def test_longest_symbol_wins(self):
        table = SymbolTable([b"ab", b"abcd"])
        encoded = table.encode(b"abcdab")
        # "abcd" (code 1) then "ab" (code 0).
        assert encoded == bytes([1, 0])

    def test_symbol_limit_enforced(self):
        with pytest.raises(ValueError):
            SymbolTable([bytes([value]) for value in range(MAX_SYMBOLS + 1)])

    def test_symbol_length_enforced(self):
        with pytest.raises(ValueError):
            SymbolTable([b"123456789"])
        with pytest.raises(ValueError):
            SymbolTable([b""])

    def test_serialisation_roundtrip(self):
        table = SymbolTable([b"http://", b"www.", b".com"])
        restored, offset = SymbolTable.from_bytes(table.to_bytes())
        assert restored.symbols == table.symbols
        assert offset == len(table.to_bytes())

    def test_unknown_code_rejected(self):
        with pytest.raises(DecodingError):
            SymbolTable([b"a"]).decode(bytes([5]))

    def test_truncated_escape_rejected(self):
        with pytest.raises(DecodingError):
            SymbolTable().decode(bytes([ESCAPE_CODE]))


class TestTraining:
    def test_empty_samples_give_empty_table(self):
        assert len(train_symbol_table([])) == 0

    def test_learns_repeated_substrings(self):
        samples = [b"https://www.example.com/page/%d" % index for index in range(200)]
        table = train_symbol_table(samples)
        assert len(table) > 0
        assert any(len(symbol) >= 4 for symbol in table.symbols)

    def test_table_size_bounded(self):
        samples = [bytes([index % 256, (index * 7) % 256]) for index in range(500)]
        assert len(train_symbol_table(samples)) <= MAX_SYMBOLS


class TestFSSTCodec:
    def test_untrained_roundtrip(self):
        codec = FSSTCodec()
        payload = b"anything goes here"
        assert codec.decompress(codec.compress(payload)) == payload
        assert not codec.is_trained

    def test_trained_compression_shrinks_similar_payloads(self):
        samples = [f"GET /api/v1/users/{index}/profile HTTP/1.1".encode() for index in range(300)]
        codec = FSSTCodec()
        codec.train(samples)
        assert codec.is_trained
        payload = b"GET /api/v1/users/9999/profile HTTP/1.1"
        compressed = codec.compress(payload)
        assert len(compressed) < len(payload)
        assert codec.decompress(compressed) == payload

    def test_roundtrip_on_unseen_bytes(self):
        codec = FSSTCodec()
        codec.train([b"aaaa bbbb cccc"] * 20)
        payload = bytes(range(256))
        assert codec.decompress(codec.compress(payload)) == payload

    def test_empty_payload(self):
        codec = FSSTCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    @given(st.binary(max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property_untrained(self, payload):
        codec = FSSTCodec()
        assert codec.decompress(codec.compress(payload)) == payload

    @given(st.text(alphabet="abcdef0123456789-/", max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property_trained(self, text):
        payload = text.encode()
        assert _TRAINED_CODEC.decompress(_TRAINED_CODEC.compress(payload)) == payload


_TRAINED_CODEC = FSSTCodec()
_TRAINED_CODEC.train([f"abc-{index}/def-0123456789".encode() for index in range(100)])
