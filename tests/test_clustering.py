"""Tests for the agglomerative clustering loop and its optimisations."""

import pytest

from repro.core.clustering import AgglomerativeClusterer, record_signature
from repro.core.criteria import make_criterion
from repro.core.pattern import WILDCARD, tokens_to_display
from repro.exceptions import ClusteringError


def two_template_records() -> list[str]:
    group_a = [f"user-{index:03d}-login" for index in range(12)]
    group_b = [f"GET /api/v1/items/{index * 7} HTTP/1.1" for index in range(12)]
    return group_a + group_b


class TestRecordSignature:
    def test_digits_collapse(self):
        assert record_signature("abc-123") == "A-#"

    def test_mixed_runs_collapse_to_x(self):
        assert record_signature("id=7f3a9") == "A=X"

    def test_same_template_same_signature(self):
        assert record_signature("user-001-login") == record_signature("user-999-login")

    def test_different_templates_differ(self):
        assert record_signature("user-001-login") != record_signature("GET /x/1 HTTP/1.1")

    def test_punctuation_preserved(self):
        assert record_signature("a:b;c,d") == "A:A;A,A"


class TestClustering:
    def test_empty_input_rejected(self):
        with pytest.raises(ClusteringError):
            AgglomerativeClusterer().cluster([])

    def test_invalid_target_rejected(self):
        with pytest.raises(ClusteringError):
            AgglomerativeClusterer(target_clusters=0)

    def test_two_templates_yield_two_clusters(self):
        clusterer = AgglomerativeClusterer(target_clusters=2, pre_group=False)
        result = clusterer.cluster(two_template_records())
        assert len(result.clusters) == 2
        sizes = sorted(cluster.size for cluster in result.clusters)
        assert sizes == [12, 12]

    def test_cluster_patterns_contain_template_literals(self):
        clusterer = AgglomerativeClusterer(target_clusters=2, pre_group=False)
        result = clusterer.cluster(two_template_records())
        displays = sorted(tokens_to_display(cluster.tokens) for cluster in result.clusters)
        assert any("user-" in display for display in displays)
        assert any("HTTP/1.1" in display for display in displays)

    def test_pre_grouping_gives_same_cluster_count(self):
        records = two_template_records()
        plain = AgglomerativeClusterer(target_clusters=2, pre_group=False).cluster(records)
        grouped = AgglomerativeClusterer(target_clusters=2, pre_group=True).cluster(records)
        assert len(plain.clusters) == len(grouped.clusters) == 2

    def test_pruning_does_not_change_cluster_membership(self):
        records = two_template_records()
        with_pruning = AgglomerativeClusterer(target_clusters=2, use_pruning=True, pre_group=False).cluster(records)
        without_pruning = AgglomerativeClusterer(target_clusters=2, use_pruning=False, pre_group=False).cluster(records)
        as_sets = lambda result: {frozenset(cluster.members) for cluster in result.clusters}
        assert as_sets(with_pruning) == as_sets(without_pruning)

    def test_pruning_reduces_dp_work(self):
        records = two_template_records()
        with_pruning = AgglomerativeClusterer(target_clusters=2, use_pruning=True, pre_group=False).cluster(records)
        stats = with_pruning.stats
        assert stats.dp_pruned_by_bound + stats.dp_pruned_by_early_exit > 0

    def test_every_record_assigned_exactly_once(self):
        records = two_template_records()
        result = AgglomerativeClusterer(target_clusters=3, pre_group=False).cluster(records)
        members = sorted(index for cluster in result.clusters for index in cluster.members)
        assert members == list(range(len(records)))

    def test_max_seed_clusters_cap(self):
        records = [f"rec{index}{'x' * (index % 5)}" for index in range(30)]
        clusterer = AgglomerativeClusterer(target_clusters=4, pre_group=False, max_seed_clusters=8)
        result = clusterer.cluster(records)
        assert len(result.clusters) <= 8
        members = sorted(index for cluster in result.clusters for index in cluster.members)
        assert members == list(range(len(records)))

    def test_max_pattern_prefix_appends_trailing_wildcard(self):
        long_records = ["HEADER-" + str(index) + "x" * 100 for index in range(4)]
        clusterer = AgglomerativeClusterer(target_clusters=1, pre_group=False, max_pattern_prefix=10)
        result = clusterer.cluster(long_records)
        tokens = result.clusters[0].tokens
        assert tokens[-1] is WILDCARD
        assert len(tokens) <= 12

    def test_alternative_criteria_also_cluster(self):
        records = two_template_records()
        for name in ("entropy", "ed"):
            clusterer = AgglomerativeClusterer(
                target_clusters=2, criterion=make_criterion(name), pre_group=False
            )
            result = clusterer.cluster(records)
            assert len(result.clusters) == 2

    def test_stats_populated(self):
        result = AgglomerativeClusterer(target_clusters=2, pre_group=False).cluster(two_template_records())
        assert result.stats.initial_clusters == 24
        assert result.stats.final_clusters == 2
        assert result.stats.merges == 22
        assert result.stats.elapsed_seconds >= 0
        assert isinstance(result.stats.as_dict(), dict)
