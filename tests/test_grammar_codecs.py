"""Tests for the grammar-based baselines (Re-Pair and Sequitur)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compressors import RePairCodec, SequiturCodec, available_codecs, get_codec
from repro.compressors.repair import build_grammar, expand_grammar
from repro.compressors.sequitur import expand, infer_grammar
from repro.exceptions import DecodingError

SAMPLE_LOG = (
    b"2023-11-21 12:00:01 INFO worker-3 processed batch 99182 in 35ms\n"
    b"2023-11-21 12:00:02 INFO worker-4 processed batch 99183 in 31ms\n"
    b"2023-11-21 12:00:03 WARN worker-3 retrying batch 99184 after timeout\n"
) * 8


class TestRePairGrammar:
    def test_empty_input(self):
        rules, sequence = build_grammar(b"")
        assert rules == []
        assert sequence == []

    def test_no_repeated_pairs_creates_no_rules(self):
        rules, sequence = build_grammar(b"abcdef", min_pair_count=2)
        assert rules == []
        assert bytes(sequence) == b"abcdef"

    def test_repeated_pair_is_replaced(self):
        rules, sequence = build_grammar(b"abababab", min_pair_count=2)
        assert rules
        assert expand_grammar(rules, sequence) == b"abababab"

    def test_rule_budget_is_respected(self):
        rules, _ = build_grammar(SAMPLE_LOG, max_rules=5, min_pair_count=2)
        assert len(rules) <= 5

    def test_expand_rejects_unknown_rule(self):
        with pytest.raises(DecodingError):
            expand_grammar([], [300])

    def test_grammar_expansion_matches_input(self):
        rules, sequence = build_grammar(SAMPLE_LOG)
        assert expand_grammar(rules, sequence) == SAMPLE_LOG


class TestSequiturGrammar:
    def test_empty_input(self):
        rule_bodies, start_rule = infer_grammar(b"")
        assert rule_bodies == []
        assert start_rule == []

    def test_digram_uniqueness_produces_rules(self):
        rule_bodies, start_rule = infer_grammar(b"abcabcabc")
        assert rule_bodies
        assert expand(rule_bodies, start_rule) == b"abcabcabc"

    def test_overlapping_digrams_are_handled(self):
        data = b"aaaaaaaa"
        rule_bodies, start_rule = infer_grammar(data)
        assert expand(rule_bodies, start_rule) == data

    def test_expansion_matches_input_on_log_data(self):
        rule_bodies, start_rule = infer_grammar(SAMPLE_LOG)
        assert expand(rule_bodies, start_rule) == SAMPLE_LOG

    def test_expand_rejects_unknown_rule(self):
        with pytest.raises(DecodingError):
            expand([], [400])

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=300))
    def test_grammar_roundtrip_property(self, data):
        rule_bodies, start_rule = infer_grammar(data)
        assert expand(rule_bodies, start_rule) == data


@pytest.mark.parametrize("codec_class", [RePairCodec, SequiturCodec])
class TestGrammarCodecs:
    def test_registered_in_registry(self, codec_class):
        assert codec_class().name.lower() in available_codecs()
        assert isinstance(get_codec(codec_class().name.lower()), codec_class)

    def test_empty_roundtrip(self, codec_class):
        codec = codec_class()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_log_payload_roundtrip_and_compression(self, codec_class):
        codec = codec_class()
        blob = codec.compress(SAMPLE_LOG)
        assert codec.decompress(blob) == SAMPLE_LOG
        assert len(blob) < len(SAMPLE_LOG)

    def test_roundtrip_without_entropy_stage(self, codec_class):
        codec = codec_class(entropy_stage=False)
        payload = b"key=value;" * 50
        assert codec.decompress(codec.compress(payload)) == payload

    def test_binary_payload_roundtrip(self, codec_class):
        codec = codec_class()
        payload = bytes(range(256)) * 2
        assert codec.decompress(codec.compress(payload)) == payload

    def test_empty_compressed_payload_rejected(self, codec_class):
        with pytest.raises(DecodingError):
            codec_class().decompress(b"")

    def test_unknown_marker_rejected(self, codec_class):
        with pytest.raises(DecodingError):
            codec_class().decompress(b"\x07broken")

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, codec_class, data):
        codec = codec_class()
        assert codec.decompress(codec.compress(data)) == data

    def test_repetitive_machine_records_compress_well(self, codec_class):
        records = "".join(
            f"symbol=IBM;side=B;quantity={100 + index};price=50.25;ts=16395740{index:02d}\n"
            for index in range(80)
        ).encode("utf-8")
        codec = codec_class()
        blob = codec.compress(records)
        assert codec.decompress(blob) == records
        assert len(blob) < len(records) / 2
