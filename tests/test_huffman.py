"""Tests for canonical Huffman coding and the entropy helper."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.entropy.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    build_canonical_code,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_empty_payload(self):
        assert shannon_entropy(b"") == 0.0

    def test_single_symbol_has_zero_entropy(self):
        assert shannon_entropy(b"aaaa") == 0.0

    def test_uniform_two_symbols(self):
        assert shannon_entropy(b"abab") == pytest.approx(1.0)

    def test_uniform_all_bytes(self):
        payload = bytes(range(256))
        assert shannon_entropy(payload) == pytest.approx(8.0)

    def test_bounded_by_eight_bits(self):
        assert shannon_entropy(b"hello world, hello huffman") <= 8.0


class TestCanonicalCode:
    def test_empty_frequencies(self):
        code = build_canonical_code({})
        assert code.lengths == {}

    def test_single_symbol_gets_one_bit(self):
        code = build_canonical_code({65: 10})
        assert code.lengths == {65: 1}

    def test_frequent_symbols_get_short_codes(self):
        code = build_canonical_code({0: 1000, 1: 10, 2: 10, 3: 1})
        assert code.lengths[0] <= code.lengths[3]

    def test_kraft_inequality_holds(self):
        frequencies = {symbol: symbol + 1 for symbol in range(64)}
        code = build_canonical_code(frequencies)
        kraft = sum(2.0 ** -length for length in code.lengths.values())
        assert kraft <= 1.0 + 1e-9

    def test_codes_are_prefix_free(self):
        frequencies = {symbol: (symbol % 7) + 1 for symbol in range(40)}
        code = build_canonical_code(frequencies)
        words = sorted(code.codes.values(), key=lambda item: item[1])
        rendered = [format(word, f"0{width}b") for word, width in words]
        for index, prefix in enumerate(rendered):
            for other in rendered[index + 1 :]:
                assert not other.startswith(prefix) or other == prefix


class TestHuffmanRoundtrip:
    def test_empty_payload(self):
        assert HuffmanDecoder().decode(HuffmanEncoder().encode(b"")) == b""

    def test_single_symbol_payload(self):
        payload = b"z" * 100
        assert HuffmanDecoder().decode(HuffmanEncoder().encode(payload)) == payload

    def test_text_payload(self):
        payload = b"the quick brown fox jumps over the lazy dog" * 5
        encoded = HuffmanEncoder().encode(payload)
        assert HuffmanDecoder().decode(encoded) == payload
        assert len(encoded) < len(payload)

    def test_compresses_skewed_distributions(self):
        payload = b"a" * 900 + b"b" * 90 + b"c" * 10
        encoded = HuffmanEncoder().encode(payload)
        assert len(encoded) < len(payload) / 3

    def test_close_to_entropy_bound(self):
        payload = (b"ab" * 50 + b"c" * 20) * 10
        encoded = HuffmanEncoder().encode(payload)
        entropy_bits = shannon_entropy(payload) * len(payload)
        # Canonical Huffman should stay within ~1 bit/symbol + header of the bound.
        assert len(encoded) * 8 <= entropy_bits + len(payload) + 600

    @given(st.binary(max_size=512))
    def test_roundtrip_property(self, payload):
        encoded = HuffmanEncoder().encode(payload)
        assert HuffmanDecoder().decode(encoded) == payload

    @given(st.text(alphabet="abcdef0123456789-:", max_size=200))
    def test_roundtrip_machine_like_text(self, text):
        payload = text.encode("utf-8")
        assert HuffmanDecoder().decode(HuffmanEncoder().encode(payload)) == payload
