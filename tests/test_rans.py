"""Tests for the rANS entropy coder (static models, shared models, self-contained codec)."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.entropy.huffman import shannon_entropy
from repro.entropy.rans import (
    PROB_SCALE,
    RansCodec,
    RansModel,
    normalize_frequencies,
    rans_decode,
    rans_encode,
)
from repro.exceptions import DecodingError, EncodingError


class TestNormalizeFrequencies:
    def test_sums_to_scale(self):
        normalized = normalize_frequencies({0: 3, 1: 5, 2: 100})
        assert sum(normalized.values()) == PROB_SCALE

    def test_every_present_symbol_keeps_nonzero_frequency(self):
        normalized = normalize_frequencies({0: 1, 1: 10**9})
        assert normalized[0] >= 1
        assert normalized[1] > normalized[0]

    def test_zero_count_symbols_are_dropped(self):
        normalized = normalize_frequencies({7: 0, 8: 4})
        assert 7 not in normalized
        assert normalized[8] == PROB_SCALE

    def test_empty_table_rejected(self):
        with pytest.raises(EncodingError):
            normalize_frequencies({})

    def test_all_zero_counts_rejected(self):
        with pytest.raises(EncodingError):
            normalize_frequencies({1: 0, 2: 0})

    def test_uniform_distribution(self):
        normalized = normalize_frequencies({symbol: 5 for symbol in range(256)})
        assert sum(normalized.values()) == PROB_SCALE
        assert min(normalized.values()) >= 1

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=1, max_value=10**6),
            min_size=1,
            max_size=256,
        )
    )
    def test_normalisation_property(self, counts):
        normalized = normalize_frequencies(counts)
        assert sum(normalized.values()) == PROB_SCALE
        assert set(normalized) == set(counts)
        assert all(frequency >= 1 for frequency in normalized.values())


class TestRansModel:
    def test_starts_are_cumulative(self):
        model = RansModel.from_counts({0: 1, 1: 1, 2: 2})
        ordered = sorted(model.frequencies)
        cumulative = 0
        for symbol in ordered:
            assert model.starts[symbol] == cumulative
            cumulative += model.frequencies[symbol]
        assert cumulative == PROB_SCALE

    def test_slot_table_covers_scale(self):
        model = RansModel.from_counts({65: 10, 66: 30})
        assert len(model.slots) == PROB_SCALE
        assert Counter(model.slots)[65] == model.frequencies[65]

    def test_model_serialisation_roundtrip(self):
        model = RansModel.from_counts({symbol: symbol + 1 for symbol in range(32)})
        restored, offset = RansModel.from_bytes(model.to_bytes())
        assert offset == len(model.to_bytes())
        assert restored.frequencies == model.frequencies

    def test_from_samples_includes_extra_symbols(self):
        model = RansModel.from_samples([b"abc"], extra_symbols=range(256))
        assert model.can_encode(bytes(range(256)))

    def test_from_samples_empty_falls_back_to_uniform(self):
        model = RansModel.from_samples([])
        assert model.can_encode(bytes(range(256)))

    def test_can_encode_rejects_unknown_symbol(self):
        model = RansModel.from_counts({97: 4, 98: 4})
        assert model.can_encode(b"abba")
        assert not model.can_encode(b"abz")

    def test_invalid_frequencies_rejected(self):
        with pytest.raises(EncodingError):
            RansModel.from_frequencies({0: 100})  # does not sum to PROB_SCALE


class TestRansStream:
    def test_empty_payload(self):
        model = RansModel.from_counts({0: 1})
        assert rans_encode(b"", model) == b""
        assert rans_decode(b"", 0, model) == b""

    def test_roundtrip_with_static_model(self):
        data = b"abcabcabcaabbcc" * 40
        model = RansModel.from_counts(dict(Counter(data)))
        encoded = rans_encode(data, model)
        assert rans_decode(encoded, len(data), model) == data

    def test_shared_model_roundtrip_on_unseen_payload(self):
        model = RansModel.from_samples([b"GET /index.html 200", b"GET /api/v1 404"], extra_symbols=range(256))
        payload = b"POST /api/v2/items 201"
        encoded = rans_encode(payload, model)
        assert rans_decode(encoded, len(payload), model) == payload

    def test_unknown_symbol_raises(self):
        model = RansModel.from_counts({97: 1})
        with pytest.raises(EncodingError):
            rans_encode(b"b", model)

    def test_truncated_stream_raises(self):
        data = b"hello hello hello hello"
        model = RansModel.from_counts(dict(Counter(data)))
        encoded = rans_encode(data, model)
        with pytest.raises(DecodingError):
            rans_decode(encoded[:3], len(data), model)

    def test_skewed_payload_beats_raw_size(self):
        data = b"a" * 4000 + b"b" * 50
        model = RansModel.from_counts(dict(Counter(data)))
        encoded = rans_encode(data, model)
        assert len(encoded) < len(data) / 4

    def test_close_to_entropy_bound(self):
        rng = random.Random(13)
        data = bytes(rng.choice(b"aaaaaabbbcx") for _ in range(6000))
        model = RansModel.from_counts(dict(Counter(data)))
        encoded = rans_encode(data, model)
        bound_bits = shannon_entropy(data) * len(data)
        assert len(encoded) * 8 <= bound_bits * 1.05 + 64

    @given(st.binary(min_size=1, max_size=600))
    def test_roundtrip_property(self, data):
        model = RansModel.from_counts(dict(Counter(data)))
        encoded = rans_encode(data, model)
        assert rans_decode(encoded, len(data), model) == data


class TestRansCodec:
    def test_empty_roundtrip(self):
        codec = RansCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_text_roundtrip(self):
        codec = RansCodec()
        payload = b"machine-generated record 42 machine-generated record 43" * 20
        blob = codec.compress(payload)
        assert codec.decompress(blob) == payload
        assert len(blob) < len(payload)

    def test_single_symbol_roundtrip(self):
        codec = RansCodec()
        payload = b"\x00" * 500
        assert codec.decompress(codec.compress(payload)) == payload

    def test_all_byte_values_roundtrip(self):
        codec = RansCodec()
        payload = bytes(range(256)) * 4
        assert codec.decompress(codec.compress(payload)) == payload

    @given(st.binary(max_size=400))
    def test_roundtrip_property(self, payload):
        codec = RansCodec()
        assert codec.decompress(codec.compress(payload)) == payload
