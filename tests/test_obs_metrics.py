"""Unit tests of the :mod:`repro.obs` metrics fabric, exposition and limits.

Covers the registry semantics downstream layers rely on: labelled children,
no-op mode, histogram bucket monotonicity, render/parse round-tripping,
collector error containment, token buckets under a fake clock, and the
rate-limited slow-request log.
"""

from __future__ import annotations

import logging
import threading

import pytest

from repro.exceptions import NetError, ObsError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NOOP,
    MetricsRegistry,
    RequestLimits,
    SlowRequestLog,
    TokenBucket,
    format_value,
    log_spaced_buckets,
    parse_text,
    render_text,
)
from repro.obs.metrics import INF


# ------------------------------------------------------------------- registry


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "A counter.")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    gauge = registry.gauge("g", "A gauge.")
    gauge.set(7)
    gauge.inc()
    gauge.dec(3)
    assert gauge.value == 5


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "A counter.")
    with pytest.raises(ObsError):
        counter.inc(-1)


def test_counter_set_total_restates_absolute_value():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "Bridged counter.")
    counter.set_total(10)
    counter.set_total(15)
    assert counter.value == 15


def test_labelled_children_are_cached_and_independent():
    registry = MetricsRegistry()
    family = registry.counter("req_total", "Requests.", ("opcode",))
    family.labels("GET").inc()
    family.labels("GET").inc()
    family.labels("SET").inc()
    assert family.labels("GET").value == 2
    assert family.labels("SET").value == 1
    assert family.labels("GET") is family.labels("GET")


def test_wrong_label_count_raises():
    registry = MetricsRegistry()
    family = registry.counter("req_total", "Requests.", ("opcode", "reason"))
    with pytest.raises(ObsError):
        family.labels("GET")


def test_duplicate_name_same_shape_returns_same_family():
    registry = MetricsRegistry()
    first = registry.counter("x_total", "X.", ("a",))
    second = registry.counter("x_total", "X.", ("a",))
    assert first is second
    with pytest.raises(ObsError):
        registry.gauge("x_total", "Different kind.")
    with pytest.raises(ObsError):
        registry.counter("x_total", "Different labels.", ("b",))


def test_invalid_metric_and_label_names_raise():
    registry = MetricsRegistry()
    with pytest.raises(ObsError):
        registry.counter("bad-name", "Dashes are illegal.")
    with pytest.raises(ObsError):
        registry.counter("ok_total", "Bad label.", ("0bad",))


def test_disabled_registry_hands_out_noop_instruments():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c_total", "A counter.", ("opcode",))
    assert counter is NOOP
    # Every operation is accepted and does nothing.
    counter.labels("GET").inc()
    counter.observe(1.0)
    counter.set(5)
    assert counter.value == 0.0
    assert render_text(registry) == ""
    assert registry.family_names() == []


# ------------------------------------------------------------------ histograms


def test_default_latency_buckets_are_log_spaced_and_increasing():
    bounds = DEFAULT_LATENCY_BUCKETS
    assert bounds[0] == pytest.approx(100e-6)
    assert bounds[-1] == pytest.approx(10.0)
    assert all(a < b for a, b in zip(bounds, bounds[1:]))
    # 4 per decade over 100µs..10s inclusive.
    assert len(bounds) == 21
    assert log_spaced_buckets(1.0, 100.0, per_decade=1) == (1.0, 10.0, 100.0)


def test_histogram_observation_lands_in_inclusive_bucket():
    registry = MetricsRegistry()
    histogram = registry.histogram("h_seconds", "H.", buckets=(0.1, 1.0))
    histogram.observe(0.1)   # le="0.1" is inclusive
    histogram.observe(0.5)
    histogram.observe(5.0)   # only +Inf
    cumulative, total, count = histogram.snapshot()
    assert cumulative == [1, 2, 3]
    assert count == 3
    assert total == pytest.approx(5.6)


def test_histogram_buckets_must_increase():
    registry = MetricsRegistry()
    with pytest.raises(ObsError):
        registry.histogram("h_seconds", "H.", buckets=(1.0, 1.0))
    # A trailing +Inf is tolerated (stripped), matching Prometheus clients.
    histogram = registry.histogram("h2_seconds", "H.", buckets=(1.0, INF))
    assert histogram.buckets == (1.0,)


def test_histogram_rendered_buckets_are_cumulative_and_monotone():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "lat_seconds", "Latency.", ("op",), buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.005, 0.05, 0.5, 2.0):
        histogram.labels("GET").observe(value)
    samples = parse_text(render_text(registry))
    buckets = [
        (labels, value)
        for (name, labels), value in samples.items()
        if name == "lat_seconds_bucket"
    ]
    by_le = {dict(labels)["le"]: value for labels, value in buckets}
    assert by_le == {"0.01": 2, "0.1": 3, "1": 4, "+Inf": 5}
    assert samples[("lat_seconds_count", (("op", "GET"),))] == 5
    assert samples[("lat_seconds_sum", (("op", "GET"),))] == pytest.approx(2.56)


# ------------------------------------------------------------------ exposition


def test_render_parse_round_trip_with_label_escaping():
    registry = MetricsRegistry()
    family = registry.gauge("g", "Help with \\ and\nnewline.", ("path",))
    tricky = 'a\\b"c\nd'
    family.labels(tricky).set(4.25)
    text = render_text(registry)
    assert "# HELP g" in text and "# TYPE g gauge" in text
    samples = parse_text(text)
    assert samples[("g", (("path", tricky),))] == 4.25


def test_format_value_canonical_forms():
    assert format_value(3.0) == "3"
    assert format_value(3.5) == "3.5"
    assert format_value(INF) == "+Inf"
    assert format_value(-INF) == "-Inf"
    assert format_value(float("nan")) == "NaN"


def test_parse_text_rejects_malformed_lines():
    with pytest.raises(ObsError):
        parse_text("no_value_here")
    with pytest.raises(ObsError):
        parse_text('metric{l="x" 1')
    with pytest.raises(ObsError):
        parse_text("metric not_a_number")


def test_collector_errors_are_contained_and_counted():
    registry = MetricsRegistry()

    def broken() -> None:
        raise RuntimeError("collector exploded")

    registry.register_collector(broken)
    text = render_text(registry)  # must not raise
    samples = parse_text(text)
    assert samples[("repro_collector_errors_total", ())] == 1


def test_registry_is_thread_safe_under_contention():
    registry = MetricsRegistry()
    family = registry.counter("c_total", "C.", ("worker",))
    plain = registry.counter("plain_total", "P.")

    def spin(worker_id: int) -> None:
        child = family.labels(str(worker_id % 4))
        for _ in range(1000):
            child.inc()
            plain.inc()

    threads = [threading.Thread(target=spin, args=(n,)) for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert plain.value == 8000
    assert sum(family.labels(str(n)).value for n in range(4)) == 8000


# ---------------------------------------------------------------------- limits


def test_token_bucket_enforces_rate_with_fake_clock():
    now = [0.0]
    bucket = TokenBucket(rate=10.0, burst=2, clock=lambda: now[0])
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()  # burst exhausted
    now[0] += 0.1  # refills one token at 10/s
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.available == 0.0


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(NetError):
        TokenBucket(rate=0.0)
    with pytest.raises(NetError):
        TokenBucket(rate=1.0, burst=0)


def test_request_limits_validation_and_bucket_factory():
    limits = RequestLimits()
    assert not limits.enforced
    assert limits.bucket() is None
    limits = RequestLimits(rate_limit=5.0, rate_burst=3)
    assert limits.enforced
    bucket = limits.bucket()
    assert bucket is not None and bucket.capacity == 3.0
    with pytest.raises(NetError):
        RequestLimits(max_value_bytes=-1)
    with pytest.raises(NetError):
        RequestLimits(rate_limit=-0.5)


def test_slow_request_log_thresholds_and_rate_limiting():
    logger = logging.getLogger("repro.test.slowlog")
    log = SlowRequestLog(threshold_seconds=0.01, per_second=1.0, logger=logger)
    assert not log.record("GET", 1, 0.005)
    # First slow request emits; the burst-of-one bucket suppresses the rest.
    assert log.record("GET", 1, 0.02)
    assert log.record("MGET", 8, 0.02)
    assert log.emitted == 1
    assert log.suppressed == 1
    with pytest.raises(NetError):
        SlowRequestLog(threshold_seconds=0.0)
