"""Crash-injection durability suite: SIGKILL workers, reopen, prove the invariant.

The contract under test (docs/ARCHITECTURE.md, "Durability"):

* ``sync_mode="fsync"`` — **no acknowledged write is ever lost**, at any kill
  point (and ``"flush"`` gives the same guarantee against a *process* kill,
  which is the strongest crash a test can actually inject — SIGKILL cannot
  drop the kernel's page cache).
* ``sync_mode="none"`` — an acknowledged write may be lost, but recovery is
  always **prefix-consistent**: the store reopens to the state after some
  prefix of the acknowledged op sequence, never garbage, never a torn file.
* TierBase ``TBS1`` snapshots are atomic: a kill mid-save leaves the previous
  complete snapshot; the store always reloads to an exact save-point state.

The harness (see ``durability_worker.py``) makes this an *exact* check: the
worker's op stream is a pure function of its seed and it acks each op index
after the op returns, so a parent that drained ``m`` acks knows the worker
completed exactly ``m`` or ``m + 1`` ops — the recovered state must equal the
state after one of those prefixes (any prefix, for ``"none"``).

Also here: the satellite regression tests — the WAL-tail fsync bug, torn
SSTable rejection, ``*.tmp`` quarantine, the memtable-blind ``space_ratio``,
TBS1 corruption handling, and kill-and-reopen through ``KVService`` and the
wire server.
"""

from __future__ import annotations

import itertools
import os
import signal
import subprocess
import sys
import threading
import zlib
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))  # for durability_worker
import durability_worker as worker

from repro.exceptions import StoreError
from repro.lsm import QUARANTINE_DIR, SYNC_MODES, LSMEngine, WriteAheadLog
from repro.tierbase import TierBase, ZstdDictValueCompressor
from repro.tierbase.snapshot import SNAPSHOT_MAGIC

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKER = Path(worker.__file__)

#: randomized kill points per configuration (acceptance: >= 20 for fsync).
FSYNC_SEEDS = range(20)
FLUSH_SEEDS = range(6)
NONE_SEEDS = range(6)
TIERBASE_SEEDS = range(5)


# ------------------------------------------------------------------- harness


def _worker_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return env


def run_and_kill(worker_args: list[str], kill_after: int) -> int:
    """Run the worker, SIGKILL it once ``kill_after`` acks arrive, drain the pipe.

    Returns ``m_drained``: the number of ops whose ack reached the pipe — the
    worker completed exactly ``m_drained`` or ``m_drained + 1`` ops.
    """
    proc = subprocess.Popen(
        [sys.executable, str(WORKER), *worker_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_worker_env(),
    )
    acks: list[bytes] = []
    killed = threading.Event()

    def read_and_kill() -> None:
        assert proc.stdout is not None
        for line in proc.stdout:
            if not line.endswith(b"\n"):
                break  # partial final line: its op may have completed, acked it was not
            acks.append(line)
            if len(acks) >= kill_after and not killed.is_set():
                killed.set()
                os.kill(proc.pid, signal.SIGKILL)
        # after the kill the loop keeps draining buffered complete lines to EOF

    reader = threading.Thread(target=read_and_kill)
    reader.start()
    try:
        proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
    reader.join(timeout=60)
    stderr = proc.stderr.read().decode("utf-8", "replace") if proc.stderr else ""
    assert killed.is_set(), f"worker died before reaching {kill_after} acks:\n{stderr}"
    indices = [int(line) for line in acks]
    assert indices == list(range(len(indices))), "ack stream is not a contiguous prefix"
    return len(indices)


def matching_prefix(recovered: dict[str, str], states: list[dict[str, str]]) -> int | None:
    """Index of the first candidate prefix state equal to ``recovered``."""
    for index, state in enumerate(states):
        if recovered == state:
            return index
    return None


def check_lsm_recovery(directory: Path, sync_mode: str, seed: int, m_drained: int) -> None:
    ops = list(itertools.islice(worker.lsm_ops(seed), m_drained + 2))
    engine = LSMEngine(
        directory, memtable_bytes=1024, compaction_trigger=3, sync_mode=sync_mode
    )
    try:
        recovered = dict(engine.scan())
    finally:
        engine.close()
    if sync_mode == "none":
        lower = 0  # buffered records may be lost; any acked prefix is legal
    else:
        lower = m_drained  # nothing acknowledged may be lost
    candidates = [worker.apply_lsm(ops[:m]) for m in range(lower, m_drained + 2)]
    match = matching_prefix(recovered, candidates)
    assert match is not None, (
        f"sync_mode={sync_mode} seed={seed}: recovered state matches no legal "
        f"prefix in [{lower}, {m_drained + 1}] ({len(recovered)} live keys)"
    )


# ------------------------------------------ tentpole: LSM kill-and-recover


@pytest.mark.parametrize("seed", FSYNC_SEEDS)
def test_lsm_sigkill_fsync_loses_nothing(tmp_path, seed):
    """>= 20 randomized kill points: every acknowledged write survives."""
    kill_after = 8 + (seed * 37) % 150
    m = run_and_kill(["lsm", str(tmp_path), "fsync", str(seed)], kill_after)
    check_lsm_recovery(tmp_path, "fsync", seed, m)


@pytest.mark.parametrize("seed", FLUSH_SEEDS)
def test_lsm_sigkill_flush_survives_process_kill(tmp_path, seed):
    """"flush" drains to the kernel per append, so SIGKILL loses nothing
    either — what it cannot survive (untestably here) is a machine crash."""
    kill_after = 12 + (seed * 53) % 160
    m = run_and_kill(["lsm", str(tmp_path), "flush", str(seed)], kill_after)
    check_lsm_recovery(tmp_path, "flush", seed, m)


@pytest.mark.parametrize("seed", NONE_SEEDS)
def test_lsm_sigkill_none_is_prefix_consistent(tmp_path, seed):
    """"none" may lose the buffered tail but must reopen to a clean prefix —
    no torn tables, no garbage values, no failure to reopen."""
    kill_after = 20 + (seed * 61) % 160
    m = run_and_kill(["lsm", str(tmp_path), "none", str(seed)], kill_after)
    check_lsm_recovery(tmp_path, "none", seed, m)


# --------------------------------------- tentpole: TierBase snapshot kills


@pytest.mark.parametrize("seed", TIERBASE_SEEDS)
def test_tierbase_sigkill_recovers_exact_save_point(tmp_path, seed):
    kill_after = worker.SAVE_EVERY + 2 + (seed * 43) % 120
    m = run_and_kill(["tierbase", str(tmp_path), str(seed)], kill_after)
    snapshot_path = tmp_path / "snapshot.tbs"
    ops = list(itertools.islice(worker.tierbase_ops(seed), m + 2))
    save_points = [index for index, op in enumerate(ops) if op[0] == "save"]
    acked_saves = [index for index in save_points if index < m]
    if not snapshot_path.exists():
        assert not acked_saves, "an acknowledged save left no snapshot file"
        return
    loaded = TierBase.load(snapshot_path, compressor=ZstdDictValueCompressor())
    recovered = {key: loaded.get(key) for key in loaded.keys()}
    # The snapshot at op `index` captured the state after ops[:index]; it must
    # be one of the save points the worker can have reached.
    candidates = [worker.apply_tierbase(ops[:index]) for index in save_points]
    match = matching_prefix(recovered, candidates)
    assert match is not None, (
        f"seed={seed}: loaded snapshot matches no save-point state "
        f"(saves at {save_points}, drained {m} acks)"
    )
    assert not acked_saves or save_points[match] >= acked_saves[-1], (
        "snapshot is older than an acknowledged save"
    )


def test_tierbase_snapshot_roundtrip_across_epochs(tmp_path):
    """Satellite: snapshot/load roundtrip across >= 2 retrain epochs."""
    store = TierBase(compressor=ZstdDictValueCompressor())
    store.train([f"user={n} name=alpha{n}" for n in range(40)])
    for n in range(30):
        store.set(f"a{n}", f"user={n} name=alpha{n}")
    store.retrain([f"user={n} city=beta{n}" for n in range(40)])
    for n in range(30):
        store.set(f"b{n}", f"user={n} city=beta{n}")
    store.retrain([f"user={n} zone=gamma{n}" for n in range(40)])
    for n in range(30):
        store.set(f"c{n}", f"user={n} zone=gamma{n}")
    assert len(set(store._epochs.values())) >= 2  # payloads span epochs
    path = tmp_path / "epochs.tbs"
    store.save(path)
    loaded = TierBase.load(path, compressor=ZstdDictValueCompressor())
    assert len(loaded) == 90
    for key in store.keys():
        assert loaded.get(key) == store.get(key)
    # the restored store keeps every epoch decodable and writes at the newest
    assert loaded.compressor.current_epoch == store.compressor.current_epoch


# ------------------------------------------------- satellite: WAL tail bug


def test_acknowledged_put_survives_sigkill_immediately_after_ack(tmp_path):
    """The PR-5 headline bug: pre-fix, the record sat in the userspace buffer
    and this exact kill lost an acknowledged put."""
    m = run_and_kill(["lsm", str(tmp_path), "fsync", "1234"], 1)
    assert m >= 1
    first_op = next(iter(worker.lsm_ops(1234)))
    engine = LSMEngine(tmp_path, memtable_bytes=1024, sync_mode="fsync")
    try:
        if first_op[0] == "put":
            assert engine.get(first_op[1]) == first_op[2]
    finally:
        engine.close()


class TestWalSyncModes:
    def test_invalid_sync_mode_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            WriteAheadLog(tmp_path / "wal.log", sync_mode="everything")
        with pytest.raises(StoreError):
            LSMEngine(tmp_path, sync_mode="everything")
        with pytest.raises(StoreError):
            WriteAheadLog(tmp_path / "wal.log", fsync_interval_bytes=-1)

    def test_flush_mode_leaves_no_userspace_buffer(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", sync_mode="flush")
        wal.append_put("key", "value")
        # read through the filesystem *without* flushing the writer: the
        # record must already be out of the userspace buffer.
        assert (tmp_path / "wal.log").stat().st_size > 0
        wal.close()

    def test_none_mode_may_buffer(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", sync_mode="none")
        wal.append_put("key", "value")
        assert (tmp_path / "wal.log").stat().st_size == 0  # still buffered
        wal.sync()
        assert (tmp_path / "wal.log").stat().st_size > 0
        wal.close()

    def test_fsync_every_append_by_default(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd)))
        wal = WriteAheadLog(tmp_path / "wal.log", sync_mode="fsync")
        for n in range(5):
            wal.append_put(f"k{n}", "v")
        assert len(calls) == 5
        wal.close()

    def test_fsync_interval_batches_syncs(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd)))
        wal = WriteAheadLog(
            tmp_path / "wal.log", sync_mode="fsync", fsync_interval_bytes=1 << 20
        )
        for n in range(50):
            wal.append_put(f"k{n}", "v" * 20)
        assert calls == []  # group commit: nothing reached the interval yet
        wal.sync()
        assert len(calls) == 1
        wal.close()

    def test_sync_modes_constant(self):
        assert SYNC_MODES == ("none", "flush", "fsync")


# --------------------------------------- satellite: torn-table publication


class TestAtomicSSTablePublication:
    def _filled_engine_dir(self, directory: Path) -> Path:
        with LSMEngine(directory, memtable_bytes=1 << 20) as engine:
            for n in range(120):
                engine.put(f"key:{n:04d}", f"value-{n}-" + "z" * 30)
            engine.flush()
        return directory

    def test_truncated_sstable_raises_typed_error_not_garbage(self, tmp_path):
        self._filled_engine_dir(tmp_path)
        (table_path,) = sorted(tmp_path.glob("sstable-*.sst"))
        data = table_path.read_bytes()
        for fraction in (0.25, 0.6, 0.95):
            table_path.write_bytes(data[: int(len(data) * fraction)])
            with pytest.raises(StoreError):
                LSMEngine(tmp_path, memtable_bytes=1 << 20)
        table_path.write_bytes(data)
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as engine:  # intact again
            assert engine.get("key:0000") is not None

    def test_leftover_tmp_is_quarantined_not_opened(self, tmp_path):
        self._filled_engine_dir(tmp_path)
        torn = tmp_path / "sstable-000099.sst.tmp"
        torn.write_bytes(b"half-written sstable bytes from a crashed flush")
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as engine:
            assert engine.get("key:0001") is not None
            assert engine.stats().sstable_count == 1
        assert not torn.exists()
        quarantined = list((tmp_path / QUARANTINE_DIR).iterdir())
        assert [path.name for path in quarantined] == ["sstable-000099.sst.tmp"]

    def test_flush_and_compact_leave_no_tmp_files(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20, compaction_trigger=2) as engine:
            for n in range(40):
                engine.put(f"k{n:03d}", "v" * 40)
            engine.flush()
            for n in range(40):
                engine.put(f"k{n:03d}", "w" * 40)
            engine.flush()  # triggers compaction too
            assert engine.stats().compactions >= 1
            assert list(tmp_path.glob("*.tmp")) == []


# ------------------------------------------- satellite: space_ratio fix


def test_space_ratio_counts_memtable_before_flush(tmp_path):
    with LSMEngine(tmp_path, memtable_bytes=1 << 20) as engine:
        for n in range(50):
            engine.put(f"key:{n:04d}", "v" * 100)
        before = engine.stats()
        # pre-fix: logical_value_bytes was 0 here and the ratio pinned to 1.0
        # while 5000 bytes of values sat uncompressed in the memtable.
        assert before.logical_value_bytes == 50 * 100
        assert before.sstable_file_bytes == 0
        assert 1.0 <= before.space_ratio < 1.2  # memtable stores values raw + keys
        engine.flush()
        after = engine.stats()
        assert after.logical_value_bytes == 50 * 100
        assert after.memtable_bytes == 0
        assert after.space_ratio == after.sstable_file_bytes / after.logical_value_bytes


# ------------------------------------ oplog: LSN contiguity under SIGKILL

#: randomized kill points for the LSN-contract suite.
OPLOG_SEEDS = range(6)


@pytest.mark.parametrize("seed", OPLOG_SEEDS)
def test_oplog_sigkill_replays_contiguous_lsn_prefix(tmp_path, seed):
    """After a SIGKILL the WAL decodes to a gap-free LSN prefix 1..N with N
    covering every acknowledged mutation, and a FollowerStore fed those
    records through a SubscriberSink converges byte-exactly with the
    recovered primary."""
    from repro.oplog import FollowerStore, SubscriberSink, iter_records

    kill_after = 10 + (seed * 47) % 140
    m = run_and_kill(["oplog", str(tmp_path), "fsync", str(seed)], kill_after)
    ops = list(itertools.islice(worker.oplog_ops(seed), m + 2))

    wal_data = (tmp_path / "wal.log").read_bytes()
    replayed = list(iter_records(wal_data))
    lsns = [record.lsn for record in replayed]
    assert lsns == list(range(1, len(lsns) + 1)), "replayed LSNs are not contiguous"
    # fsync mode: every acknowledged mutation is on disk; at most one more
    # op (possibly a torn put_many batch, replayed as a prefix) follows.
    assert worker.oplog_lsn_after(ops[:m]) <= len(lsns) <= worker.oplog_lsn_after(ops[: m + 2])

    engine = LSMEngine(tmp_path, memtable_bytes=1 << 26, sync_mode="fsync")
    try:
        assert engine.recovered_lsn == len(lsns)
        # Replication from the crash artifact: sink -> follower, byte-exact.
        sink = SubscriberSink(capacity=len(lsns) + 1)
        subscription = sink.subscribe()
        sink.append(replayed)
        follower = FollowerStore()
        follower.catch_up(subscription)
        expected = {key: value.encode("utf-8") for key, value in engine.scan()}
        assert follower.diverges_from(expected) == []
        assert follower.last_applied == engine.last_applied_lsn
    finally:
        engine.close()


@pytest.mark.parametrize("seed", range(4))
def test_oplog_sigkill_reopen_never_reuses_lsns(tmp_path, seed):
    """Reopening a crashed shard resumes the sequence past the recovered
    watermark — across WAL truncations (flush writes a checkpoint record),
    an LSN is never assigned twice."""
    kill_after = 15 + (seed * 59) % 120
    m = run_and_kill(["lsm", str(tmp_path), "fsync", str(seed)], kill_after)
    ops = list(itertools.islice(worker.lsm_ops(seed), m))
    acked_mutations = sum(1 for op in ops if op[0] in ("put", "del"))

    engine = LSMEngine(tmp_path, memtable_bytes=1024, compaction_trigger=3, sync_mode="fsync")
    try:
        recovered = engine.recovered_lsn
        assert recovered >= acked_mutations, "an acknowledged LSN was lost"
        assert engine.put("reopen-probe", "1") == recovered + 1
        engine.flush()  # truncate the WAL behind a checkpoint
        assert engine.put("post-flush-probe", "2") == recovered + 2
    finally:
        engine.close()

    reopened = LSMEngine(tmp_path, memtable_bytes=1024, compaction_trigger=3, sync_mode="fsync")
    try:
        assert reopened.recovered_lsn == recovered + 2
        assert reopened.put("second-reopen", "3") == recovered + 3
    finally:
        reopened.close()


# --------------------------------------------- satellite: TBS1 robustness


class TestSnapshotFormat:
    def _saved(self, tmp_path: Path) -> tuple[Path, TierBase]:
        store = TierBase(compressor=ZstdDictValueCompressor())
        store.train([f"row={n} data=abcdef{n}" for n in range(32)])
        for n in range(40):
            store.set(f"key{n}", f"row={n} data=abcdef{n}")
        path = tmp_path / "store.tbs"
        store.save(path)
        return path, store

    def test_snapshot_starts_with_magic(self, tmp_path):
        path, _ = self._saved(tmp_path)
        assert path.read_bytes()[:4] == SNAPSHOT_MAGIC == b"TBS2"

    def test_legacy_tbs1_snapshot_still_loads(self, tmp_path):
        # A pre-LSN snapshot (TBS1 magic, no last_applied_lsn field) must
        # reopen with a watermark of 0 and every entry intact.
        path, store = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        body = bytes(data[:-4]).replace(b"TBS2", b"TBS1", 1)
        # TBS1 has no LSN field: drop the uvarint that follows the models
        # section.  Rebuild by re-dumping with the legacy layout instead of
        # patching offsets: write magic..models, skip lsn, keep the rest.
        from repro.entropy.varint import decode_uvarint
        from repro.tierbase.snapshot import _FLAG_MODELS

        offset = 4
        flags = body[offset]
        offset += 1
        name_len, offset = decode_uvarint(body, offset)
        offset += name_len
        if flags & _FLAG_MODELS:
            models_len, offset = decode_uvarint(body, offset)
            offset += models_len
        _, after_lsn = decode_uvarint(body, offset)
        legacy_body = body[:offset] + body[after_lsn:]
        legacy = legacy_body + zlib.crc32(legacy_body).to_bytes(4, "big")
        legacy_path = tmp_path / "legacy.tbs"
        legacy_path.write_bytes(legacy)
        loaded = TierBase.load(legacy_path, compressor=ZstdDictValueCompressor())
        assert loaded.last_applied_lsn == 0
        assert len(loaded) == len(store)
        assert loaded.get("key7") == store.get("key7")

    def test_bad_magic_rejected(self, tmp_path):
        path, _ = self._saved(tmp_path)
        data = path.read_bytes()
        path.write_bytes(b"NOPE" + data[4:])
        with pytest.raises(StoreError, match="magic"):
            TierBase.load(path, compressor=ZstdDictValueCompressor())

    def test_bit_flip_fails_crc(self, tmp_path):
        path, _ = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="CRC32"):
            TierBase.load(path, compressor=ZstdDictValueCompressor())

    def test_truncation_fails_typed(self, tmp_path):
        path, _ = self._saved(tmp_path)
        data = path.read_bytes()
        for keep in (3, 10, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:keep])
            with pytest.raises(StoreError):
                TierBase.load(path, compressor=ZstdDictValueCompressor())

    def test_compressor_kind_mismatch_is_typed(self, tmp_path):
        path, _ = self._saved(tmp_path)
        with pytest.raises(StoreError, match="versioned"):
            TierBase.load(path)  # noop compressor cannot read versioned payloads
        plain = TierBase()
        plain.set("k", "v")
        plain_path = tmp_path / "plain.tbs"
        plain.save(plain_path)
        with pytest.raises(StoreError, match="un-versioned"):
            TierBase.load(plain_path, compressor=ZstdDictValueCompressor())

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        path, store = self._saved(tmp_path)
        store.save(path)  # overwrite in place
        assert not path.with_name(path.name + ".tmp").exists()
        loaded = TierBase.load(path, compressor=ZstdDictValueCompressor())
        assert len(loaded) == len(store)


# ----------------------------------- lifecycle: service + wire kill/reopen


class TestServiceLifecycle:
    @pytest.mark.parametrize("backend", ["tierbase", "lsm"])
    def test_close_then_reopen_serves_every_key(self, tmp_path, backend):
        from repro.service import KVService, ServiceConfig

        config = ServiceConfig(
            shard_count=3,
            backend=backend,
            compressor="zstd",
            directory=tmp_path,
            sync_mode="fsync",
        )
        expected = {f"key:{n}": f"user={n} payload={'p' * (n % 17)}" for n in range(150)}
        service = KVService(config)
        service.train(list(expected.values())[:64])
        for key, value in expected.items():
            service.set(key, value)
        service.delete("key:0")
        del expected["key:0"]
        service.close()

        reopened = KVService(config)
        try:
            for key, value in expected.items():
                assert reopened.get(key) == value
            assert reopened.get("key:0") is None
        finally:
            reopened.close()

    def test_flush_is_callable_midrun_and_idempotent(self, tmp_path):
        from repro.service import KVService, ServiceConfig

        service = KVService(
            ServiceConfig(shard_count=2, backend="tierbase", compressor="none",
                          directory=tmp_path)
        )
        service.set("a", "1")
        service.flush()
        snapshots = sorted(tmp_path.glob("shard-*/snapshot.tbs"))
        assert len(snapshots) == 2
        stamps = [path.stat().st_mtime_ns for path in snapshots]
        service.flush()  # nothing changed: dirty-tracking skips the rewrite
        assert [path.stat().st_mtime_ns for path in snapshots] == stamps
        service.set("b", "2")
        service.close()  # dirty again: the close path publishes exactly once
        assert [path.stat().st_mtime_ns for path in snapshots] != stamps

    def test_restart_after_pretrain_kill_still_trains(self, tmp_path):
        """Bare shard-* directories (a run killed before its first train/flush)
        must not make a restarted server skip pre-training."""
        from repro.cli import _build_service, build_parser

        for shard in range(2):
            (tmp_path / f"shard-{shard:03d}").mkdir()  # state a pre-train kill leaves
        args = build_parser().parse_args(
            ["serve", "--backend", "tierbase", "--compressor", "zstd",
             "--data-dir", str(tmp_path), "--shards", "2", "--train-count", "64"]
        )
        service, reopened, cleanup = _build_service(args)
        try:
            assert not reopened
            for shard in service._shards:
                assert shard.backend.store.compressor.current_epoch > 0  # trained
        finally:
            service.close()
            cleanup()

    def test_restart_with_trained_state_skips_pretraining(self, tmp_path):
        from repro.cli import _build_service, build_parser

        argv = ["serve", "--backend", "tierbase", "--compressor", "zstd",
                "--data-dir", str(tmp_path), "--shards", "2", "--train-count", "64"]
        service, reopened, cleanup = _build_service(build_parser().parse_args(argv))
        assert not reopened
        epochs = [s.backend.store.compressor.current_epoch for s in service._shards]
        service.close()
        cleanup()
        service, reopened, cleanup = _build_service(build_parser().parse_args(argv))
        try:
            assert reopened  # snapshots exist now; no second training pass
            assert [s.backend.store.compressor.current_epoch for s in service._shards] == epochs
        finally:
            service.close()
            cleanup()

    @pytest.mark.parametrize("backend", ["tierbase", "lsm"])
    def test_server_drain_flushes_then_restart_serves(self, tmp_path, backend):
        from repro.net import KVClient, ThreadedKVServer
        from repro.service import KVService, ServiceConfig

        config = ServiceConfig(
            shard_count=2, backend=backend, compressor="none", directory=tmp_path
        )
        expected = {f"wire:{n}": f"value-{n}" for n in range(40)}

        service = KVService(config)
        with ThreadedKVServer(service) as server:
            host, port = server.address
            with KVClient(host, port) as client:
                client.mset(sorted(expected.items()))
        # ThreadedKVServer.stop() drained: shards flushed before exit.
        service.close()

        service = KVService(config)
        with ThreadedKVServer(service) as server:
            host, port = server.address
            with KVClient(host, port) as client:
                for key, value in expected.items():
                    assert client.get(key) == value
        service.close()
