"""Tests for the PBC compressors (plain, FSST-backed and block variants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compressors.stdlib_codecs import LZMACodec
from repro.compressors.zstdlike import ZstdLikeCodec
from repro.core.compressor import PBCBlockCompressor, PBCCompressor, PBCFCompressor
from repro.core.extraction import ExtractionConfig
from repro.core.pattern import OUTLIER_PATTERN_ID, PatternDictionary
from repro.entropy.varint import decode_uvarint
from repro.exceptions import CompressorError


class TestPBCCompressor:
    def test_requires_training(self):
        with pytest.raises(CompressorError):
            PBCCompressor().compress("record")

    def test_roundtrip(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:100])
        for record in template_records:
            assert compressor.decompress(compressor.compress(record)) == record

    def test_template_records_shrink(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:100])
        stats = compressor.measure([record for record in template_records if not record.startswith("!!")])
        assert stats.ratio < 0.7

    def test_outlier_stored_raw_and_roundtrips(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train([record for record in template_records if not record.startswith("!!")][:80])
        outlier = "@@@ completely unexpected payload @@@"
        payload = compressor.compress(outlier)
        pattern_id, _ = decode_uvarint(payload, 0)
        assert pattern_id == OUTLIER_PATTERN_ID
        assert compressor.decompress(payload) == outlier

    def test_unicode_roundtrip(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:60])
        record = "métrique=Ünïcode☃"
        assert compressor.decompress(compressor.compress(record)) == record

    def test_empty_record_roundtrip(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:60])
        assert compressor.decompress(compressor.compress("")) == ""

    def test_measure_statistics(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:100])
        stats = compressor.measure(template_records)
        assert stats.records == len(template_records)
        assert stats.original_bytes == sum(len(record.encode()) for record in template_records)
        assert 0 < stats.compressed_bytes
        assert stats.outliers == round(stats.outlier_rate * stats.records)
        assert stats.compress_mb_per_second >= 0

    def test_stats_merge(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:100])
        first = compressor.measure(template_records[:50])
        second = compressor.measure(template_records[50:])
        merged = first.merge(second)
        assert merged.records == len(template_records)
        assert merged.original_bytes == first.original_bytes + second.original_bytes

    def test_retrain_callback_fires_on_outlier_rate(self, small_config, template_records):
        fired = []
        compressor = PBCCompressor(
            config=small_config,
            retrain_threshold=0.3,
            retrain_callback=lambda c: fired.append(c.outlier_rate),
        )
        compressor.train(template_records[:80])
        for index in range(200):
            compressor.compress(f"???unmatched-{index}???")
        assert len(fired) == 1
        assert fired[0] >= 0.3

    def test_dictionary_roundtrip_between_instances(self, small_config, template_records):
        trained = PBCCompressor(config=small_config)
        trained.train(template_records[:100])
        payloads = trained.compress_many(template_records[:20])

        restored = PBCCompressor(
            dictionary=PatternDictionary.from_bytes(trained.dictionary.to_bytes())
        )
        assert restored.decompress_many(payloads) == template_records[:20]

    @given(st.integers(min_value=0, max_value=999999), st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_on_template(self, number, suffix):
        compressor = _SHARED_TEMPLATE_COMPRESSOR
        record = f"V5company_charging-100-{suffix:02d}accenter{suffix:02d}ac_accounting_log_202{number:06d}"
        assert compressor.decompress(compressor.compress(record)) == record


# Trained once at import time so the hypothesis property test stays fast.
_SHARED_TEMPLATE_COMPRESSOR = PBCCompressor(config=ExtractionConfig(max_patterns=4, sample_size=32))
_SHARED_TEMPLATE_COMPRESSOR.train(
    [
        f"V5company_charging-100-{index % 90 + 10}accenter{index % 80 + 10}ac_accounting_log_202{index:06d}"
        for index in range(40)
    ]
)


class TestLiveStats:
    def test_untimed_stats_count_without_clock(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:100])
        stats = compressor.enable_stats()
        payloads = [compressor.compress(record) for record in template_records[:50]]
        assert stats.records == 50
        assert stats.original_bytes == sum(len(r.encode("utf-8")) for r in template_records[:50])
        assert stats.compressed_bytes == sum(len(p) for p in payloads)
        # Timing is opt-in: the default hot path never touches the clock.
        assert stats.compress_seconds == 0.0
        assert stats.decompress_seconds == 0.0

    def test_timed_stats_accumulate_seconds(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:100])
        stats = compressor.enable_stats(timed=True)
        for record in template_records[:30]:
            compressor.decompress(compressor.compress(record))
        assert stats.records == 30
        assert stats.compress_seconds > 0.0
        assert stats.decompress_seconds > 0.0

    def test_stats_track_outliers(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:100])
        stats = compressor.enable_stats()
        compressor.compress(template_records[0])
        compressor.compress("@@@ nothing like the training data @@@")
        assert stats.outliers == 1

    def test_disable_stats_detaches(self, small_config, template_records):
        compressor = PBCCompressor(config=small_config)
        compressor.train(template_records[:100])
        stats = compressor.enable_stats()
        compressor.compress(template_records[0])
        assert compressor.disable_stats() is stats
        compressor.compress(template_records[1])
        assert stats.records == 1


class TestPBCFCompressor:
    def test_roundtrip(self, small_config, template_records):
        compressor = PBCFCompressor(config=small_config)
        compressor.train(template_records[:100])
        for record in template_records[:60]:
            assert compressor.decompress(compressor.compress(record)) == record

    def test_improves_on_plain_pbc_for_textual_residuals(self, small_config):
        # The message field varies per record (so it cannot move into the
        # pattern) but is built from a small vocabulary, which the FSST symbol
        # table exploits while plain PBC stores it verbatim.
        import random

        rng = random.Random(5)
        vocabulary = ["payment", "declined", "retry", "gateway", "timeout", "billing", "queue", "audit"]
        records = [
            f"evt;id={index};msg=" + " ".join(rng.choice(vocabulary) for _ in range(8))
            for index in range(120)
        ]
        plain = PBCCompressor(config=small_config)
        plain.train(records[:80])
        fsst = PBCFCompressor(config=small_config)
        fsst.train(records[:80])
        assert fsst.measure(records).ratio < plain.measure(records).ratio

    def test_train_residual_reuses_dictionary(self, small_config, template_records):
        plain = PBCCompressor(config=small_config)
        plain.train(template_records[:100])
        shared = PBCFCompressor(dictionary=plain.dictionary, config=small_config)
        shared.train_residual(template_records[:100])
        for record in template_records[:30]:
            assert shared.decompress(shared.compress(record)) == record


class TestPBCBlockCompressor:
    def test_block_roundtrip_zstd(self, small_config, template_records):
        block = PBCBlockCompressor(PBCCompressor(config=small_config), ZstdLikeCodec(level=3), name="PBC_Z")
        block.train(template_records[:100])
        payload = block.compress_block(template_records[:64])
        assert block.decompress_block(payload) == template_records[:64]

    def test_file_roundtrip_lzma(self, small_config, template_records):
        block = PBCBlockCompressor(PBCCompressor(config=small_config), LZMACodec(preset=1), name="PBC_L")
        block.train(template_records[:100])
        payload = block.compress_file(template_records)
        assert block.decompress_file(payload) == template_records

    def test_block_compression_beats_per_record(self, small_config, template_records):
        pbc = PBCCompressor(config=small_config)
        pbc.train(template_records[:100])
        per_record = pbc.measure(template_records).ratio
        block = PBCBlockCompressor(pbc, LZMACodec(preset=1), name="PBC_L")
        assert block.measure(template_records).ratio <= per_record

    def test_measure_with_small_blocks(self, small_config, template_records):
        block = PBCBlockCompressor(PBCCompressor(config=small_config), ZstdLikeCodec(level=1))
        block.train(template_records[:80])
        stats = block.measure(template_records[:40], block_size=8)
        assert stats.records == 40
        assert stats.compressed_bytes > 0
