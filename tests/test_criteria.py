"""Tests for the clustering criteria (encoding length, entropy, edit distance)."""

from collections import Counter

import pytest

from repro.core.criteria import (
    ClusterState,
    EditDistanceCriterion,
    EncodingLengthCriterion,
    EntropyCriterion,
    make_criterion,
)
from repro.core.distance import symbol_counter
from repro.core.pattern import tokens_from_string


def make_cluster(record: str, size: int = 1) -> ClusterState:
    tokens = tokens_from_string(record)
    return ClusterState(
        tokens=tokens,
        members=list(range(size)),
        size=size,
        counter=symbol_counter(tokens),
        total_record_length=len(record) * size,
    )


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_criterion("el"), EncodingLengthCriterion)
        assert isinstance(make_criterion("entropy"), EntropyCriterion)
        assert isinstance(make_criterion("ed"), EditDistanceCriterion)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_criterion("cosine")


class TestEncodingLengthCriterion:
    def test_identical_clusters_score_zero(self):
        criterion = EncodingLengthCriterion()
        score, tokens = criterion.score(make_cluster("abc123"), make_cluster("abc123"))
        assert score == 0.0
        assert tokens == tokens_from_string("abc123")

    def test_similar_clusters_score_lower_than_dissimilar(self):
        criterion = EncodingLengthCriterion()
        base = make_cluster("user-123-end")
        similar, _ = criterion.score(base, make_cluster("user-456-end"))
        dissimilar, _ = criterion.score(base, make_cluster("ZZZZZZZZZZZZ"))
        assert similar < dissimilar

    def test_lower_bound_is_a_lower_bound(self):
        criterion = EncodingLengthCriterion()
        pairs = [
            ("user-1-x", "user-22-y"),
            ("abc", "xyz"),
            ("log:12:ok", "log:9:fail"),
        ]
        for left, right in pairs:
            cluster_a, cluster_b = make_cluster(left), make_cluster(right)
            score, _ = criterion.score(cluster_a, cluster_b)
            assert criterion.lower_bound(cluster_a, cluster_b) <= score

    def test_supports_bounded_search(self):
        assert EncodingLengthCriterion().supports_bounded_search()
        assert not EditDistanceCriterion().supports_bounded_search()


class TestEntropyCriterion:
    def test_identical_clusters_do_not_grow_residuals(self):
        criterion = EntropyCriterion()
        score, _ = criterion.score(make_cluster("abcabc"), make_cluster("abcabc"))
        assert score == 0.0

    def test_dissimilar_clusters_grow_residuals(self):
        criterion = EntropyCriterion()
        score, _ = criterion.score(make_cluster("aaaa"), make_cluster("bbbb"))
        assert score > 0.0

    def test_preference_matches_encoding_length_on_clear_cases(self):
        entropy = EntropyCriterion()
        base = make_cluster("order=123;sym=IBM")
        similar, _ = entropy.score(base, make_cluster("order=999;sym=AAPL"))
        dissimilar, _ = entropy.score(base, make_cluster("###############"))
        assert similar < dissimilar


class TestEditDistanceCriterion:
    def test_scores_are_levenshtein(self):
        criterion = EditDistanceCriterion()
        score, _ = criterion.score(make_cluster("kitten"), make_cluster("sitting"))
        assert score == 3.0

    def test_returns_merged_tokens(self):
        criterion = EditDistanceCriterion()
        _, tokens = criterion.score(make_cluster("ab1"), make_cluster("ab2"))
        assert tokens[0] == "a" and tokens[1] == "b"
