"""Tests for patterns, token helpers and the pattern dictionary."""

import pytest

from repro.core.encoders import IntEncoder, VarcharEncoder, VarintEncoder
from repro.core.pattern import (
    OUTLIER_PATTERN_ID,
    Pattern,
    PatternDictionary,
    WILDCARD,
    collapse_wildcards,
    literal_length,
    tokens_from_string,
    tokens_to_display,
    tokens_to_segments,
)
from repro.exceptions import DictionaryError, PatternError


class TestTokenHelpers:
    def test_tokens_from_string(self):
        assert tokens_from_string("ab") == ["a", "b"]
        assert tokens_from_string("") == []

    def test_tokens_to_display(self):
        assert tokens_to_display(["a", WILDCARD, "b"]) == "a*b"

    def test_collapse_wildcards(self):
        assert collapse_wildcards(["a", WILDCARD, WILDCARD, "b", WILDCARD]) == ["a", WILDCARD, "b", WILDCARD]

    def test_tokens_to_segments(self):
        literals, fields = tokens_to_segments(["a", "b", WILDCARD, "c", WILDCARD])
        assert literals == ["ab", "c", ""]
        assert fields == 2

    def test_tokens_to_segments_collapses_adjacent_wildcards(self):
        literals, fields = tokens_to_segments([WILDCARD, WILDCARD, "x"])
        assert literals == ["", "x"]
        assert fields == 1

    def test_literal_length(self):
        assert literal_length(["a", WILDCARD, "b", "c"]) == 3


class TestPattern:
    def _pattern(self):
        return Pattern(
            pattern_id=1,
            literals=("user-", "-", ""),
            encoders=(IntEncoder(4), VarcharEncoder()),
        )

    def test_encoder_literal_count_must_match(self):
        with pytest.raises(PatternError):
            Pattern(pattern_id=1, literals=("a", "b"), encoders=())

    def test_negative_id_rejected(self):
        with pytest.raises(PatternError):
            Pattern(pattern_id=-1, literals=("a",), encoders=())

    def test_display(self):
        assert self._pattern().display() == "user-*<INT(4,2)>-*<VARCHAR>"

    def test_reconstruct(self):
        assert self._pattern().reconstruct(["0042", "alice"]) == "user-0042-alice"

    def test_reconstruct_wrong_arity_rejected(self):
        with pytest.raises(PatternError):
            self._pattern().reconstruct(["0042"])

    def test_field_roundtrip(self):
        pattern = self._pattern()
        payload = pattern.encode_fields(["0042", "alice"])
        values, offset = pattern.decode_fields(payload)
        assert values == ["0042", "alice"]
        assert offset == len(payload)

    def test_regex_matches_instances(self):
        import re

        regex = re.compile(self._pattern().to_regex())
        match = regex.match("user-1234-bob")
        assert match is not None
        assert match.groups() == ("1234", "bob")
        assert regex.match("user-12a4-bob") is None

    def test_serialisation_roundtrip(self):
        pattern = self._pattern()
        restored = Pattern.from_dict(pattern.to_dict())
        assert restored == pattern

    def test_from_tokens_defaults_to_varchar(self):
        pattern = Pattern.from_tokens(3, ["a", WILDCARD, "b"])
        assert pattern.field_count == 1
        assert pattern.encoders[0].spec() == "VARCHAR"

    def test_literal_size(self):
        assert self._pattern().literal_size == 6


class TestPatternDictionary:
    def test_add_and_get(self):
        dictionary = PatternDictionary()
        pattern = Pattern.from_tokens(1, ["a", WILDCARD])
        dictionary.add(pattern)
        assert dictionary.get(1) is pattern
        assert 1 in dictionary
        assert len(dictionary) == 1

    def test_reserved_id_rejected(self):
        with pytest.raises(DictionaryError):
            PatternDictionary().add(Pattern.from_tokens(OUTLIER_PATTERN_ID, ["a"]))

    def test_duplicate_id_rejected(self):
        dictionary = PatternDictionary()
        dictionary.add(Pattern.from_tokens(1, ["a", WILDCARD]))
        with pytest.raises(DictionaryError):
            dictionary.add(Pattern.from_tokens(1, ["b", WILDCARD]))

    def test_unknown_id_rejected(self):
        with pytest.raises(DictionaryError):
            PatternDictionary().get(9)

    def test_next_id(self):
        dictionary = PatternDictionary()
        assert dictionary.next_id == 1
        dictionary.add(Pattern.from_tokens(5, ["a", WILDCARD]))
        assert dictionary.next_id == 6

    def test_bytes_roundtrip(self):
        dictionary = PatternDictionary()
        dictionary.add(
            Pattern(pattern_id=1, literals=("x", ""), encoders=(VarintEncoder(),))
        )
        dictionary.add(Pattern.from_tokens(2, ["y", WILDCARD, "z"]))
        restored = PatternDictionary.from_bytes(dictionary.to_bytes())
        assert len(restored) == 2
        assert restored.get(1).encoders[0].spec() == "VARINT"
        assert restored.get(2).display() == dictionary.get(2).display()

    def test_serialized_size_positive(self):
        dictionary = PatternDictionary()
        dictionary.add(Pattern.from_tokens(1, ["a", WILDCARD]))
        assert dictionary.serialized_size() == len(dictionary.to_bytes()) > 0

    def test_iteration_order(self):
        dictionary = PatternDictionary()
        for pattern_id in (1, 2, 3):
            dictionary.add(Pattern.from_tokens(pattern_id, [str(pattern_id), WILDCARD]))
        assert [pattern.pattern_id for pattern in dictionary] == [1, 2, 3]
