"""Tests for the extension experiment runners (ablations and LSM integration)."""

import pytest

from repro.bench import (
    BenchmarkSettings,
    EXPERIMENTS,
    run_ablation_extraction,
    run_ablation_residual,
    run_experiment,
    run_lsm_integration,
)

TINY = BenchmarkSettings(record_count=60, train_count=40, max_patterns=8, sample_size=32)


class TestRegistry:
    def test_extension_experiments_are_registered(self):
        for experiment_id in ("ablation-extraction", "ablation-residual", "lsm"):
            assert experiment_id in EXPERIMENTS
            assert EXPERIMENTS[experiment_id].bench_module.startswith("benchmarks/")

    def test_run_experiment_dispatches_to_extension_runner(self):
        rows = run_experiment("lsm", TINY)
        assert {row["policy"] for row in rows} == {"Uncompressed", "Zstd blocks", "PBC_F records"}


class TestAblationExtraction:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ablation_extraction(TINY, datasets=("kv1", "apache"))

    def test_covers_every_configuration_per_dataset(self, rows):
        configurations = {row["configuration"] for row in rows}
        assert configurations == {
            "default",
            "no pre-grouping",
            "no refinement",
            "no pruning",
            "prefix 128",
        }
        assert {row["dataset"] for row in rows} == {"kv1", "apache"}

    def test_rows_report_sane_metrics(self, rows):
        for row in rows:
            assert row["patterns"] >= 1
            assert 0 < row["ratio"] < 1.5
            assert row["train_seconds"] >= 0


class TestAblationResidual:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ablation_residual(TINY, datasets=("kv1",))

    def test_covers_all_residual_stages(self, rows):
        methods = {row["method"] for row in rows}
        assert methods == {"PBC", "PBC_F", "PBC_H[rans]", "PBC_H[huffman]", "PBC_H[arithmetic]"}

    def test_residual_stages_do_not_blow_up_the_ratio(self, rows):
        base = next(row["ratio"] for row in rows if row["method"] == "PBC")
        for row in rows:
            if row["method"].startswith("PBC_H"):
                # Entropy stages fall back to the raw payload behind a one-byte
                # marker, so they can cost at most ~1 byte per record.
                assert row["ratio"] <= base + 0.03
            else:
                # PBC_F's FSST framing can add a few bytes per record when the
                # field payload is already tiny; it must still stay in the same
                # ballpark as plain PBC.
                assert row["ratio"] <= base + 0.15


class TestLSMIntegration:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_lsm_integration(TINY, dataset="apache")

    def test_reports_one_row_per_policy(self, rows):
        assert len(rows) == 3
        assert all(row["dataset"] == "apache" for row in rows)

    def test_compression_policies_save_space(self, rows):
        by_policy = {row["policy"]: row for row in rows}
        assert by_policy["PBC_F records"]["space_ratio"] < by_policy["Uncompressed"]["space_ratio"]
        assert by_policy["Zstd blocks"]["space_ratio"] < by_policy["Uncompressed"]["space_ratio"]

    def test_lookup_throughput_is_positive(self, rows):
        assert all(row["lookups_per_s"] > 0 for row in rows)
