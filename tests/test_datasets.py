"""Tests for the synthetic dataset generators and registry."""

import pytest

from repro.datasets import (
    DATASET_SPECS,
    JSON_DATASETS,
    KV_DATASETS,
    LOG_DATASETS,
    dataset_names,
    dataset_statistics,
    get_spec,
    load_dataset,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_all_sixteen_paper_datasets_present(self):
        expected = {
            "kv1", "kv2", "kv3", "kv4", "kv5",
            "android", "apache", "bgl", "hdfs", "hadoop", "alilogs",
            "github", "cities", "unece", "urls", "uuid",
        }
        assert set(dataset_names()) == expected

    def test_categories(self):
        assert set(KV_DATASETS) == {"kv1", "kv2", "kv3", "kv4", "kv5"}
        assert set(LOG_DATASETS) == {"android", "apache", "bgl", "hdfs", "hadoop", "alilogs"}
        assert set(JSON_DATASETS) == {"github", "cities", "unece"}

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")
        with pytest.raises(DatasetError):
            get_spec("nope")

    def test_invalid_count_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("kv1", count=0)


class TestGenerators:
    @pytest.mark.parametrize("name", dataset_names())
    def test_generation_and_determinism(self, name):
        records = load_dataset(name, count=50, seed=1)
        again = load_dataset(name, count=50, seed=1)
        other_seed = load_dataset(name, count=50, seed=2)
        assert len(records) == 50
        assert all(isinstance(record, str) and record for record in records)
        assert records == again
        assert records != other_seed

    @pytest.mark.parametrize("name", dataset_names())
    def test_average_length_within_factor_of_paper(self, name):
        spec = get_spec(name)
        stats = dataset_statistics(name, load_dataset(name, count=80))
        assert spec.paper_avg_len / 3 <= stats.avg_record_len <= spec.paper_avg_len * 3

    def test_statistics_fields(self):
        stats = dataset_statistics("kv1", load_dataset("kv1", count=40))
        assert stats.records == 40
        assert stats.min_record_len <= stats.avg_record_len <= stats.max_record_len
        assert stats.total_bytes >= stats.records

    def test_default_counts_used_when_count_omitted(self):
        records = load_dataset("unece")
        assert len(records) == DATASET_SPECS["unece"].default_count

    def test_json_datasets_are_valid_json(self):
        import json

        for name in JSON_DATASETS:
            for record in load_dataset(name, count=10):
                json.loads(record)

    def test_log_datasets_are_single_line(self):
        for name in LOG_DATASETS:
            assert all("\n" not in record for record in load_dataset(name, count=20))

    def test_uuid_records_have_canonical_shape(self):
        import re

        pattern = re.compile(r"^[0-9a-f]{8}-[0-9a-f]{4}-4[0-9a-f]{3}-[0-9a-f]{4}-[0-9a-f]{12}$")
        assert all(pattern.match(record) for record in load_dataset("uuid", count=30))

    def test_kv_datasets_have_template_structure(self):
        # The vast majority of records in a KV dataset share a small number of
        # structural signatures (this is what PBC exploits).
        from repro.core.clustering import record_signature

        for name in KV_DATASETS:
            records = load_dataset(name, count=100)
            signatures = {record_signature(record) for record in records}
            assert len(signatures) <= 25
