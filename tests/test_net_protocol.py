"""Fuzz and adversarial tests for the ``RKV1`` wire protocol.

Two properties carry the suite:

* **roundtrip** — for every frame type, ``decode(encode(message)) ==
  message`` under arbitrary binary keys/values (empty, NUL-laden, and far
  larger than 64 KiB) and under arbitrary chunk boundaries fed to the
  incremental decoder (hypothesis drives ≥200 examples per frame type);
* **adversarial decode** — truncated frames, bad magic, unknown opcodes, and
  oversized declared lengths each raise the typed
  :class:`~repro.exceptions.ProtocolError`; the decoder never hangs waiting
  for bytes that cannot fix an already-malformed stream and never consumes
  past a frame's declared length.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError
from repro.net import protocol
from repro.net.protocol import (
    FRAME_TYPES,
    MAGIC,
    CountResponse,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    MetricsRequest,
    MetricsResponse,
    MGetRequest,
    MSetRequest,
    MultiKeyValueResponse,
    MultiValueResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    ScanRequest,
    SetRequest,
    StatsRequest,
    StatsResponse,
    ValueResponse,
    decode_frames,
    encode_frame,
)

#: A value comfortably above 64 KiB (the ISSUE's "large value" bar).
BIG = b"\xa5\x00\xff" * 22000  # 66 000 bytes
assert len(BIG) > 64 * 1024

FUZZ = settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow], deadline=None)

binary = st.binary(min_size=0, max_size=256)
opt_binary = st.one_of(st.none(), binary)
text = st.text(max_size=64)


def roundtrip(message: protocol.Message) -> None:
    """Encode, decode whole, and decode byte-at-a-time; all must agree."""
    frame = encode_frame(message)
    assert decode_frames(frame) == [message]
    decoder = FrameDecoder()
    dribbled: list[protocol.Message] = []
    for offset in range(len(frame)):
        dribbled.extend(decoder.feed(frame[offset : offset + 1]))
    decoder.eof()  # nothing may linger
    assert dribbled == [message]


# ------------------------------------------------------- roundtrip, per frame


class TestRoundtrip:
    @FUZZ
    @given(st.just(None))
    def test_ping(self, _):
        roundtrip(PingRequest())

    @FUZZ
    @given(key=binary)
    @example(key=b"")
    @example(key=BIG)
    def test_get(self, key):
        roundtrip(GetRequest(key=key))

    @FUZZ
    @given(key=binary, value=binary)
    @example(key=b"", value=b"")
    @example(key=b"k", value=BIG)
    def test_set(self, key, value):
        roundtrip(SetRequest(key=key, value=value))

    @FUZZ
    @given(key=binary)
    @example(key=BIG)
    def test_delete(self, key):
        roundtrip(DeleteRequest(key=key))

    @FUZZ
    @given(keys=st.lists(binary, max_size=16))
    @example(keys=[])
    @example(keys=[b"", BIG, b""])
    def test_mget(self, keys):
        roundtrip(MGetRequest(keys=tuple(keys)))

    @FUZZ
    @given(items=st.lists(st.tuples(binary, binary), max_size=16))
    @example(items=[])
    @example(items=[(b"", BIG)])
    def test_mset(self, items):
        roundtrip(MSetRequest(items=tuple(items)))

    @FUZZ
    @given(st.just(None))
    def test_stats_request(self, _):
        roundtrip(StatsRequest())

    @FUZZ
    @given(st.just(None))
    def test_metrics_request(self, _):
        roundtrip(MetricsRequest())

    @FUZZ
    @given(st.just(None))
    def test_ok(self, _):
        roundtrip(OkResponse())

    @FUZZ
    @given(st.just(None))
    def test_pong(self, _):
        roundtrip(PongResponse())

    @FUZZ
    @given(value=opt_binary)
    @example(value=None)
    @example(value=b"")
    @example(value=BIG)
    def test_value(self, value):
        roundtrip(ValueResponse(value=value))

    @FUZZ
    @given(count=st.integers(min_value=0, max_value=2**63 - 1))
    def test_count(self, count):
        roundtrip(CountResponse(count=count))

    @FUZZ
    @given(values=st.lists(opt_binary, max_size=16))
    @example(values=[None, b"", BIG, None])
    def test_multi_value(self, values):
        roundtrip(MultiValueResponse(values=tuple(values)))

    @FUZZ
    @given(payload=binary)
    @example(payload=BIG)
    def test_stats_response(self, payload):
        roundtrip(StatsResponse(payload=payload))

    @FUZZ
    @given(payload=binary)
    @example(payload=BIG)
    @example(payload=b"")
    def test_metrics_response(self, payload):
        roundtrip(MetricsResponse(payload=payload))

    @FUZZ
    @given(kind=text, message=text)
    @example(kind="ModelEpochError", message="epoch 3 pruned")
    def test_error(self, kind, message):
        roundtrip(ErrorResponse(kind=kind, message=message))

    @FUZZ
    @given(
        start=opt_binary,
        end=opt_binary,
        limit=st.integers(min_value=0, max_value=2**63 - 1),
    )
    @example(start=None, end=None, limit=0)  # the fully-open unlimited scan
    @example(start=b"", end=b"", limit=0)  # empty bounds ≠ absent bounds
    @example(start=b"z", end=b"a", limit=1)  # reversed range still a valid frame
    @example(start=BIG, end=BIG, limit=2**63 - 1)  # huge bounds, max limit
    def test_scan(self, start, end, limit):
        roundtrip(ScanRequest(start=start, end=end, limit=limit))

    @FUZZ
    @given(
        pairs=st.lists(st.tuples(binary, binary), max_size=16),
        final=st.booleans(),
    )
    @example(pairs=[], final=True)  # empty-range result: one final, zero pairs
    @example(pairs=[], final=False)  # degenerate non-final chunk
    @example(pairs=[(b"", b""), (b"k", BIG)], final=False)  # >64 KiB value mid-stream
    @example(pairs=[(BIG, b"")], final=True)  # >64 KiB key
    def test_multi_key_value(self, pairs, final):
        roundtrip(MultiKeyValueResponse(pairs=tuple(pairs), final=final))

    def test_every_frame_type_has_a_roundtrip_test(self):
        """Adding a frame type without extending this suite fails here."""
        tested = {
            PingRequest, GetRequest, SetRequest, DeleteRequest, MGetRequest,
            MSetRequest, StatsRequest, MetricsRequest, ScanRequest, OkResponse,
            PongResponse, ValueResponse, CountResponse, MultiValueResponse,
            MultiKeyValueResponse, StatsResponse, MetricsResponse, ErrorResponse,
        }
        assert tested == set(FRAME_TYPES)


# -------------------------------------------------------------- frame streams


@FUZZ
@given(
    messages=st.lists(
        st.one_of(
            st.builds(GetRequest, key=binary),
            st.builds(SetRequest, key=binary, value=binary),
            st.builds(ValueResponse, value=opt_binary),
            st.just(PingRequest()),
            st.builds(CountResponse, count=st.integers(0, 1000)),
            st.builds(
                ScanRequest, start=opt_binary, end=opt_binary, limit=st.integers(0, 1000)
            ),
            st.builds(
                MultiKeyValueResponse,
                pairs=st.lists(st.tuples(binary, binary), max_size=4).map(tuple),
                final=st.booleans(),
            ),
        ),
        min_size=1,
        max_size=8,
    ),
    data=st.data(),
)
def test_stream_roundtrip_at_arbitrary_chunk_boundaries(messages, data):
    """A multi-frame stream split at hypothesis-chosen points decodes identically."""
    blob = b"".join(encode_frame(message) for message in messages)
    cut_count = data.draw(st.integers(0, min(6, len(blob))))
    cuts = sorted(data.draw(st.lists(st.integers(0, len(blob)), min_size=cut_count, max_size=cut_count)))
    decoder = FrameDecoder()
    out: list[protocol.Message] = []
    previous = 0
    for cut in [*cuts, len(blob)]:
        out.extend(decoder.feed(blob[previous:cut]))
        previous = cut
    decoder.eof()
    assert out == messages


# ---------------------------------------------------------------- adversarial


class TestAdversarialDecode:
    def test_bad_magic_fails_on_first_wrong_byte(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="magic"):
            decoder.feed(b"X")  # no waiting for 3 more bytes that cannot help

    @FUZZ
    @given(prefix=st.binary(min_size=1, max_size=8))
    def test_non_magic_prefixes_never_hang(self, prefix):
        decoder = FrameDecoder()
        if prefix == MAGIC[: len(prefix)]:
            assert decoder.feed(prefix) == []  # genuinely incomplete: buffered
        else:
            with pytest.raises(ProtocolError):
                decoder.feed(prefix)

    def test_unknown_opcode(self):
        with pytest.raises(ProtocolError, match="opcode 0x7F"):
            FrameDecoder().feed(MAGIC + b"\x7f")

    @FUZZ
    @given(opcode=st.integers(0, 255))
    def test_every_undefined_opcode_is_rejected(self, opcode):
        decoder = FrameDecoder()
        known = {cls.opcode for cls in FRAME_TYPES}
        if opcode in known:
            assert decoder.feed(MAGIC + bytes([opcode])) == []
        else:
            with pytest.raises(ProtocolError):
                decoder.feed(MAGIC + bytes([opcode]))

    def test_oversized_declared_length_rejected_before_body(self):
        decoder = FrameDecoder(max_body=1024)
        with pytest.raises(ProtocolError, match="exceeds"):
            # Declares 2 MiB; not a single body byte provided (or needed).
            decoder.feed(MAGIC + b"\x03" + b"\x80\x80\x80\x01")

    def test_unbounded_length_varint_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="64 bits"):
            decoder.feed(MAGIC + b"\x03" + b"\xff" * 10)

    @FUZZ
    @given(
        message=st.one_of(
            st.builds(SetRequest, key=binary, value=binary),
            st.builds(MGetRequest, keys=st.lists(binary, min_size=1, max_size=4).map(tuple)),
            st.builds(MultiValueResponse, values=st.lists(opt_binary, min_size=1, max_size=4).map(tuple)),
        ),
        data=st.data(),
    )
    def test_truncation_is_always_typed(self, message, data):
        """Any strict prefix either waits for bytes (incomplete) or raises a
        typed ProtocolError at EOF — never an untyped error, never a hang."""
        frame = encode_frame(message)
        cut = data.draw(st.integers(1, len(frame) - 1))
        decoder = FrameDecoder()
        try:
            got = decoder.feed(frame[:cut])
        except ProtocolError:
            return  # rejected early: fine
        assert got == []  # a strict prefix can never produce the message
        with pytest.raises(ProtocolError):
            decoder.eof()

    def test_truncated_body_inside_internal_lengths(self):
        """Body shorter than its internal blob lengths claim → typed error."""
        # SET frame whose body says key is 5 bytes but provides 2.
        body = b"\x05" + b"ab"
        frame = MAGIC + bytes([SetRequest.opcode]) + bytes([len(body)]) + body
        with pytest.raises(ProtocolError, match="declares"):
            decode_frames(frame)

    def test_trailing_garbage_inside_declared_body(self):
        """Body longer than its content → typed error, not silent skip."""
        inner = GetRequest(key=b"k").encode_body() + b"JUNK"
        frame = MAGIC + bytes([GetRequest.opcode]) + bytes([len(inner)]) + inner
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frames(frame)

    def test_invalid_presence_flag(self):
        body = b"\x02"
        frame = MAGIC + bytes([ValueResponse.opcode]) + bytes([len(body)]) + body
        with pytest.raises(ProtocolError, match="presence flag"):
            decode_frames(frame)

    @FUZZ
    @given(flag=st.integers(min_value=2, max_value=255))
    def test_scan_invalid_presence_flag(self, flag):
        """A SCAN bound's presence byte must be 0 or 1 — anything else is typed."""
        body = bytes([flag]) + b"\x00" + b"\x00"
        frame = MAGIC + bytes([ScanRequest.opcode]) + bytes([len(body)]) + body
        with pytest.raises(ProtocolError, match="presence flag"):
            decode_frames(frame)

    @FUZZ
    @given(flag=st.integers(min_value=2, max_value=255))
    def test_mkvalue_invalid_final_flag(self, flag):
        """MKVALUE's final byte must be 0 or 1 — anything else is typed."""
        body = bytes([flag]) + b"\x00"
        frame = MAGIC + bytes([MultiKeyValueResponse.opcode]) + bytes([len(body)]) + body
        with pytest.raises(ProtocolError, match="final flag"):
            decode_frames(frame)

    def test_mkvalue_truncated_pair_list(self):
        """Pair count claims more pairs than the body holds → typed error."""
        # final=1, count=2, but only one (empty, empty) pair present.
        body = b"\x01" + b"\x02" + b"\x00\x00"
        frame = MAGIC + bytes([MultiKeyValueResponse.opcode]) + bytes([len(body)]) + body
        with pytest.raises(ProtocolError):
            decode_frames(frame)

    def test_scan_truncated_after_first_bound(self):
        """A SCAN body that stops after one bound is typed, not a hang."""
        body = b"\x01" + b"\x01a"  # start present ("a"), end + limit missing
        frame = MAGIC + bytes([ScanRequest.opcode]) + bytes([len(body)]) + body
        with pytest.raises(ProtocolError):
            decode_frames(frame)

    def test_good_frames_before_garbage_are_never_lost(self):
        """A chunk of valid frames followed by malformed bytes yields the
        frames; the error is held (``failure``) and raised on the next call —
        so the outcome cannot depend on how TCP segmented the stream."""
        decoder = FrameDecoder()
        good = encode_frame(PingRequest()) + encode_frame(GetRequest(key=b"k"))
        messages = decoder.feed(good + b"\x00\x00")
        assert messages == [PingRequest(), GetRequest(key=b"k")]
        assert isinstance(decoder.failure, ProtocolError)
        with pytest.raises(ProtocolError, match="magic"):
            decoder.feed(b"")  # poisoned: every later call re-raises
        with pytest.raises(ProtocolError, match="magic"):
            decoder.eof()

    def test_garbage_first_raises_immediately(self):
        decoder = FrameDecoder()
        good = encode_frame(PingRequest())
        assert decoder.feed(good) == [PingRequest()]
        assert decoder.buffered == 0 and decoder.failure is None
        with pytest.raises(ProtocolError):
            decoder.feed(b"\x00")
        assert decoder.failure is not None

    def test_declared_length_is_the_read_boundary(self):
        """A frame's parse consumes exactly its declared bytes — the next
        frame in the same buffer is untouched and decodes independently."""
        frames = encode_frame(SetRequest(key=b"a", value=BIG)) + encode_frame(
            GetRequest(key=b"b")
        )
        messages = decode_frames(frames)
        assert messages == [SetRequest(key=b"a", value=BIG), GetRequest(key=b"b")]

    def test_eof_mid_frame_reports_buffered_bytes(self):
        decoder = FrameDecoder()
        decoder.feed(MAGIC + b"\x02\x05ab")
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.eof()

    def test_empty_stream_is_clean(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"") == []
        decoder.eof()


def test_opcode_table_matches_registry():
    rows = protocol.opcode_table()
    assert len(rows) == len(FRAME_TYPES)
    assert {row["name"] for row in rows} == {cls.wire_name for cls in FRAME_TYPES}


# ------------------------------------------- zero-copy inputs (memoryview etc.)


#: a frame mix that exercises every batched body decoder: single blobs,
#: MGET/MSET lists, MVALUE presence flags, MKVALUE pairs.
MIXED_FRAMES = (
    PingRequest(),
    SetRequest(key=b"k\x00", value=b"v" * 300),
    MGetRequest(keys=(b"", b"a", b"b" * 200)),
    MSetRequest(items=((b"x", b""), (b"y", b"\xff" * 129))),
    MultiValueResponse(values=(b"one", None, b"", b"\x00" * 130)),
    MultiKeyValueResponse(pairs=((b"p", b"q"), (b"", b"")), final=True),
    ValueResponse(value=BIG),
    GetRequest(key=b"tail"),
)
MIXED_STREAM = b"".join(encode_frame(message) for message in MIXED_FRAMES)


class TestZeroCopyInputs:
    """The decoder accepts ``bytes``, ``bytearray`` and ``memoryview`` chunks.

    The zero-copy parse slices a ``memoryview`` over its receive buffer, so
    these tests pin the two hazards that design introduces: decode results
    must not alias the (mutable) receive buffer, and a held failure whose
    traceback pins a buffer export must not break later compaction."""

    @FUZZ
    @given(cuts=st.lists(st.integers(0, len(MIXED_STREAM)), max_size=12))
    @example(cuts=[])
    @example(cuts=[1, 2, 3, 4, 5, 6])
    def test_memoryview_chunks_at_arbitrary_boundaries(self, cuts):
        bounds = sorted({0, len(MIXED_STREAM), *cuts})
        decoder = FrameDecoder()
        decoded: list[protocol.Message] = []
        for start, end in zip(bounds, bounds[1:]):
            decoded.extend(decoder.feed(memoryview(MIXED_STREAM[start:end])))
        decoder.eof()
        assert decoded == list(MIXED_FRAMES)

    @FUZZ
    @given(chunk_size=st.integers(1, 97))
    def test_bytearray_chunks(self, chunk_size):
        decoder = FrameDecoder()
        decoded: list[protocol.Message] = []
        for start in range(0, len(MIXED_STREAM), chunk_size):
            decoded.extend(decoder.feed(bytearray(MIXED_STREAM[start : start + chunk_size])))
        decoder.eof()
        assert decoded == list(MIXED_FRAMES)

    def test_decoded_values_do_not_alias_the_receive_buffer(self):
        """Mutating a fed-in buffer after decode must not corrupt results."""
        chunk = bytearray(encode_frame(SetRequest(key=b"key", value=b"value")))
        decoder = FrameDecoder()
        (message,) = decoder.feed(chunk)
        chunk[:] = b"\x00" * len(chunk)
        assert message == SetRequest(key=b"key", value=b"value")
        assert type(message.key) is bytes and type(message.value) is bytes

    def test_held_failure_does_not_break_buffer_compaction(self):
        """A held ProtocolError's traceback can pin a memoryview export of
        the receive buffer; compaction must survive that (no BufferError)."""
        decoder = FrameDecoder()
        good = encode_frame(ValueResponse(value=b"v" * 100))
        held = None
        messages = decoder.feed(good + b"BAD!")
        assert messages == [ValueResponse(value=b"v" * 100)]
        try:
            decoder.feed(b"")
        except ProtocolError as error:
            held = error  # traceback alive while the decoder is poisoned
        assert held is not None
        with pytest.raises(ProtocolError, match="magic"):
            decoder.feed(memoryview(good))

    def test_partial_frames_across_memoryview_feeds_leave_no_residue(self):
        frame = encode_frame(MultiValueResponse(values=(b"a", None, b"c")))
        decoder = FrameDecoder()
        assert decoder.feed(memoryview(frame[:5])) == []
        assert decoder.buffered == 5
        (message,) = decoder.feed(memoryview(frame[5:]))
        assert message == MultiValueResponse(values=(b"a", None, b"c"))
        assert decoder.buffered == 0
