"""Docs-consistency checks: the documentation suite cannot silently rot.

These tests pin the documentation to the code: every ``src/repro`` package
must be mentioned in ``docs/ARCHITECTURE.md`` and the README's module index,
the byte layouts documented in ``docs/FORMATS.md`` must match the magic
numbers and codec ids in the source, and documented CLI commands must exist.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def _read(relative: str) -> str:
    path = REPO_ROOT / relative
    assert path.exists(), f"{relative} is missing"
    return path.read_text(encoding="utf-8")


def repro_packages() -> list[str]:
    """Every package under ``src/repro`` (directories with an ``__init__.py``)."""
    return sorted(
        path.name for path in SRC.iterdir() if path.is_dir() and (path / "__init__.py").exists()
    )


def test_every_package_is_listed():
    """Sanity: package discovery sees the expected layout (codecs included)."""
    packages = repro_packages()
    assert "core" in packages and "service" in packages and "stream" in packages
    assert "codecs" in packages
    assert len(packages) >= 14


@pytest.mark.parametrize("document", ["docs/ARCHITECTURE.md", "README.md"])
def test_every_package_is_documented(document):
    text = _read(document)
    missing = [name for name in repro_packages() if f"repro.{name}" not in text]
    assert not missing, f"{document} does not mention: {missing}"


def test_architecture_covers_top_level_modules():
    text = _read("docs/ARCHITECTURE.md")
    for module in ("repro.cli", "repro.exceptions"):
        assert module in text, f"docs/ARCHITECTURE.md does not mention {module}"


def test_architecture_links_formats():
    assert "FORMATS.md" in _read("docs/ARCHITECTURE.md")


class TestFormatsMatchCode:
    def test_stream_container_magics(self):
        from repro.stream import format as stream_format

        text = _read("docs/FORMATS.md")
        assert stream_format.MAGIC.decode("ascii") in text
        assert stream_format.END_MAGIC.decode("ascii") in text

    def test_sstable_magic(self):
        from repro.lsm import sstable

        text = _read("docs/FORMATS.md")
        assert f"0x{sstable._MAGIC:08X}" in text
        assert sstable._MAGIC.to_bytes(4, "big").decode("ascii") in text

    def test_every_registered_codec_id_is_documented(self):
        """FORMATS.md is pinned to the registry, not a hand-maintained list:
        registering a codec without documenting it fails here."""
        from repro.codecs import codec_specs

        text = _read("docs/FORMATS.md")
        specs = codec_specs()
        assert specs, "codec registry is empty"
        for spec in specs:
            assert f"{spec.codec_id} `{spec.name}`" in text, (
                f"FORMATS.md codec table is stale for {spec.name!r} (id {spec.codec_id})"
            )

    def test_versioned_payload_header_documented(self):
        text = _read("docs/FORMATS.md")
        assert "Versioned value payload" in text
        assert "uvarint(epoch)" in text
        assert "ModelEpochError" in text
        assert "uvarint(model_epoch)" in text  # SSTable record-policy block header

    def test_wal_and_outlier_constants(self):
        from repro.core.pattern import OUTLIER_PATTERN_ID
        from repro.lsm.wal import OP_DELETE, OP_PUT

        text = _read("docs/FORMATS.md")
        assert f"{OP_PUT} = PUT" in text
        assert f"{OP_DELETE} = DELETE" in text
        assert OUTLIER_PATTERN_ID == 0 and "pattern_id == 0" in text

    def test_wal_sync_modes_documented(self):
        """FORMATS.md §4 documents every WAL sync_mode the code accepts."""
        from repro.lsm.wal import SYNC_MODES

        text = _read("docs/FORMATS.md")
        assert "`sync_mode`" in text and "fsync_interval_bytes" in text
        for mode in SYNC_MODES:
            assert f"| `{mode}`" in text, f"FORMATS.md sync_mode table misses {mode!r}"

    def test_tierbase_snapshot_magic(self):
        from repro.tierbase.snapshot import SNAPSHOT_MAGIC

        from repro.tierbase.snapshot import LEGACY_SNAPSHOT_MAGIC

        text = _read("docs/FORMATS.md")
        assert SNAPSHOT_MAGIC == b"TBS2"
        assert LEGACY_SNAPSHOT_MAGIC == b"TBS1"
        assert f'magic "{SNAPSHOT_MAGIC.decode("ascii")}"' in text
        assert f'magic `"{LEGACY_SNAPSHOT_MAGIC.decode("ascii")}"`' in text
        assert "TierBase snapshot" in text

    def test_sstable_quarantine_documented(self):
        from repro.lsm.engine import QUARANTINE_DIR

        text = _read("docs/FORMATS.md")
        assert f"`{QUARANTINE_DIR}/`" in text
        assert "Atomic publication" in text

    def test_pbc_file_magic(self):
        from repro.cli import _FILE_MAGIC

        assert f'"{_FILE_MAGIC.decode("ascii")}"' in _read("docs/FORMATS.md")

    def test_wire_frame_magic(self):
        from repro.net.protocol import MAGIC

        text = _read("docs/FORMATS.md")
        assert f'magic "{MAGIC.decode("ascii")}"' in text

    def test_every_wire_opcode_is_documented(self):
        """FORMATS.md §7 is pinned to ``repro.net.protocol``: registering a
        frame type without documenting its opcode row fails here."""
        from repro.net.protocol import FRAME_TYPES

        text = _read("docs/FORMATS.md")
        assert FRAME_TYPES, "wire frame registry is empty"
        for frame_type in FRAME_TYPES:
            row = f"0x{frame_type.opcode:02X} `{frame_type.wire_name}`"
            assert row in text, (
                f"FORMATS.md opcode table is stale for {frame_type.wire_name!r} "
                f"(opcode 0x{frame_type.opcode:02X})"
            )
            assert frame_type.__name__ in text, (
                f"FORMATS.md does not name the {frame_type.__name__} dataclass"
            )

    def test_documented_opcode_count_matches_registry(self):
        """No documented-but-unregistered ghosts: the table row count in
        FORMATS.md §7 equals the registry size."""
        import re

        from repro.net.protocol import FRAME_TYPES

        text = _read("docs/FORMATS.md")
        rows = re.findall(r"^\| 0x[0-9A-F]{2} `\w+` \|", text, flags=re.MULTILINE)
        assert len(rows) == len(FRAME_TYPES)


class TestObservabilityDocs:
    @staticmethod
    def _registry_families():
        """The families a default KVServer registers (no sockets opened)."""
        from repro.net.server import KVServer
        from repro.service import KVService, ServiceConfig

        service = KVService(ServiceConfig(shard_count=1, compressor="none"))
        try:
            return list(KVServer(service).registry.families())
        finally:
            service.close()

    def test_metric_inventory_matches_registry(self):
        """Anti-ghost in both directions: every registered metric family has
        a row in the ARCHITECTURE.md inventory table, and every
        ``repro_*`` metric name the docs mention is actually registered."""
        import re

        text = _read("docs/ARCHITECTURE.md")
        families = self._registry_families()
        assert len(families) >= 20
        registered = {family.name for family in families}
        for family in families:
            assert f"| `{family.name}` | {family.kind} |" in text, (
                f"ARCHITECTURE.md metric inventory misses {family.name!r}"
            )
        documented = set(re.findall(r"`(repro_[a-z0-9_]+)`", text))
        documented |= set(re.findall(r"\b(repro_[a-z0-9_]+)\b", _read("docs/FORMATS.md")))
        documented |= set(re.findall(r"\b(repro_[a-z0-9_]+)\b", _read("README.md")))
        ghosts = documented - registered
        assert ghosts == set(), f"docs mention unregistered metrics: {sorted(ghosts)}"

    def test_rejection_reasons_documented(self):
        text = _read("docs/ARCHITECTURE.md")
        for reason in ("rate", "value_bytes", "batch_items"):
            assert f"`{reason}`" in text or f'"{reason}"' in text, (
                f"ARCHITECTURE.md does not document rejection reason {reason!r}"
            )

    def test_exposition_content_type_documented(self):
        from repro.obs import CONTENT_TYPE

        assert CONTENT_TYPE in _read("docs/FORMATS.md")

    def test_readme_metrics_quickstart(self):
        text = _read("README.md")
        assert "--metrics-port" in text
        assert "/healthz" in text
        assert "client --port 9100 metrics" in text

    def test_serve_metrics_and_limit_flags_parse(self):
        """Every observability flag the docs name actually parses."""
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--metrics-port", "9101", "--rate-limit", "100",
             "--rate-burst", "10", "--max-value-bytes", "1024",
             "--max-batch-items", "64", "--slow-ms", "50"]
        )
        assert args.metrics_port == 9101
        assert args.rate_limit == 100.0
        args = parser.parse_args(["client", "metrics", "--raw"])
        assert args.raw
        args = parser.parse_args(["client", "bench", "--rate", "500"])
        assert args.rate == 500.0

    def test_scan_and_scenarios_flags_parse(self):
        """The scan/scenario invocations the docs show actually parse."""
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["client", "scan", "a", "z", "--limit", "100"])
        assert (args.start, args.end, args.limit) == ("a", "z", 100)
        args = parser.parse_args(["client", "scan"])  # fully-open range
        assert args.start is None and args.end is None and args.limit == 0
        args = parser.parse_args(
            ["scenarios", "--mixes", "ycsb_e", "paper_trades", "--raw",
             "--backends", "lsm", "--output", "rows.json", "--ops", "512",
             "--rate", "2000"]
        )
        assert args.mixes == ["ycsb_e", "paper_trades"]
        assert args.backends == ["lsm"]
        assert args.raw and args.output == "rows.json"


def test_documented_cli_commands_exist():
    """Every CLI command named in the README/ARCHITECTURE actually parses."""
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action for action in parser._actions if hasattr(action, "choices") and action.choices
    )
    commands = set(subparsers.choices)
    for expected in ("train", "compress", "decompress", "inspect", "stream", "serve-bench",
                     "serve", "client", "scenarios", "experiments", "experiment",
                     "datasets", "codecs", "bench", "oplog"):
        assert expected in commands, f"CLI command {expected!r} documented but not implemented"


def test_serve_bench_compressor_choices_come_from_registry():
    """The compressor menu is the registry's trainable codecs plus "none",
    and the CLI (which derives it separately to stay import-light) agrees."""
    from repro.cli import build_parser
    from repro.codecs import trainable_codec_names
    from repro.service.backends import COMPRESSOR_CHOICES

    assert COMPRESSOR_CHOICES == ("none", *trainable_codec_names())
    parser = build_parser()
    serve_bench = next(
        action.choices["serve-bench"]
        for action in parser._actions
        if hasattr(action, "choices") and action.choices and "serve-bench" in action.choices
    )
    compressor = next(
        action for action in serve_bench._actions if "--compressor" in action.option_strings
    )
    assert tuple(compressor.choices) == COMPRESSOR_CHOICES


def test_readme_mentions_service_quickstart():
    text = _read("README.md")
    assert "KVService" in text and "ServiceConfig" in text
    assert "serve-bench" in text
    assert "Which compressor when" in text


def test_durability_contract_documented():
    """The restart/durability story is discoverable from both entry docs."""
    readme = _read("README.md")
    assert "--data-dir" in readme and "--sync-mode" in readme
    assert "TBS1" in readme
    architecture = _read("docs/ARCHITECTURE.md")
    assert "## Durability" in architecture
    for mode in ("none", "flush", "fsync"):
        assert f"`{mode}`" in architecture
    assert "test_durability.py" in architecture


def test_serve_has_data_dir_and_sync_mode_flags():
    """The flags the README quickstart uses actually parse."""
    from repro.cli import build_parser
    from repro.lsm.wal import SYNC_MODES

    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--data-dir", "/tmp/x", "--sync-mode", "fsync", "--backend", "lsm"]
    )
    assert args.directory == "/tmp/x"
    assert args.sync_mode == "fsync"
    serve = next(
        action.choices["serve"]
        for action in parser._actions
        if hasattr(action, "choices") and action.choices and "serve" in action.choices
    )
    sync_mode = next(
        action for action in serve._actions if "--sync-mode" in action.option_strings
    )
    assert tuple(sync_mode.choices) == SYNC_MODES


class TestBenchHarnessDocs:
    """docs/BENCHMARKS.md, the committed BENCH_*.json artifacts, and the
    ``repro bench`` CLI surface stay mutually consistent."""

    def test_benchmarks_doc_pins_the_schema(self):
        from repro.bench.harness import ENV_KEYS, PAIR_KEYS, ROW_METRIC_KEYS, SCHEMA

        text = _read("docs/BENCHMARKS.md")
        assert SCHEMA in text
        for key in (*ENV_KEYS, *PAIR_KEYS, *ROW_METRIC_KEYS):
            assert f'"{key}"' in text, f"docs/BENCHMARKS.md does not document key {key!r}"

    def test_benchmarks_doc_names_the_areas_and_exit_codes(self):
        from repro.bench.harness import area_names

        text = _read("docs/BENCHMARKS.md")
        for area in area_names():
            assert f"`{area}`" in text
            assert f"BENCH_{area}.json" in text
        assert "--require-baseline" in text and "--threshold" in text

    def test_readme_links_benchmarks_doc(self):
        text = _read("README.md")
        assert "docs/BENCHMARKS.md" in text
        assert "repro bench run" in text and "repro bench compare" in text

    def test_bench_cli_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["bench", "run", "wire", "--operations", "96", "--values", "64",
             "--repetitions", "2", "--warmup", "0", "--no-pairs", "--quiet"]
        )
        assert args.area == "wire" and args.repetitions == 2 and args.no_pairs
        args = parser.parse_args(
            ["bench", "compare", "a.json", "b.json", "--threshold", "0.75",
             "--require-baseline", "--raw"]
        )
        assert args.threshold == 0.75 and args.require_baseline
        assert parser.parse_args(["bench", "list", "--raw"]).raw
        args = parser.parse_args(["bench", "profile", "matcher", "--top", "10", "--sort", "tottime"])
        assert args.target == "matcher" and args.top == 10

    def test_documented_profile_targets_exist(self):
        from repro.bench.harness import PROFILE_TARGETS

        text = _read("docs/BENCHMARKS.md")
        for target in PROFILE_TARGETS:
            assert target in text, f"docs/BENCHMARKS.md does not mention profile target {target!r}"

    @pytest.mark.parametrize("area", ["wire", "service"])
    def test_committed_bench_artifacts_are_valid(self, area):
        """The repo-root run tables validate, carry >= 2 repetitions per cell,
        and embed at least one >= 10% measured optimization pair."""
        from repro.bench.harness import load_document

        document = load_document(REPO_ROOT / f"BENCH_{area}.json")
        assert document["area"] == area
        assert document["config"]["repetitions"] >= 2
        cells: dict[tuple, int] = {}
        dimension_names = list(document["config"]["dimensions"])
        for row in document["rows"]:
            key = tuple(row[name] for name in dimension_names)
            cells[key] = cells.get(key, 0) + 1
        assert cells and all(count >= 2 for count in cells.values())
        assert document["optimizations"], f"BENCH_{area}.json has no optimization pairs"
        assert any(pair["improvement"] >= 0.10 for pair in document["optimizations"])

    def test_committed_sustained_artifact_shows_the_flatness_split(self):
        """BENCH_sustained.json validates and carries the headline shape:
        background compaction holds the ±20% windowed-throughput bound and
        scores flatter than the legacy synchronous write-path merge."""
        from repro.bench.harness import load_document

        document = load_document(REPO_ROOT / "BENCH_sustained.json")
        assert document["area"] == "sustained"
        flatness: dict[str, list[float]] = {}
        for row in document["rows"]:
            flatness.setdefault(row["compaction"], []).append(row["flatness"])
        assert set(flatness) == {"legacy", "inline", "background"}
        assert all(score <= 0.20 for score in flatness["background"])

        def mean(scores: list[float]) -> float:
            return sum(scores) / len(scores)

        assert mean(flatness["background"]) < mean(flatness["legacy"])

    def test_committed_service_pair_proves_the_flatness_bound(self):
        """The live-measured background_compaction pair in BENCH_service.json
        shows the synchronous baseline *failing* the ±20% bound that the
        background scheduler holds — the before/after stall evidence."""
        import json

        document = json.loads((REPO_ROOT / "BENCH_service.json").read_text())
        pair = next(
            pair
            for pair in document["optimizations"]
            if pair["name"] == "background_compaction"
        )
        assert pair["before_flatness"] > 0.20
        assert pair["after_flatness"] <= 0.20
        assert pair["after_p99_ms"] < pair["before_p99_ms"]
        assert len(pair["before_windows"]) >= 10  # a genuinely multi-minute run
