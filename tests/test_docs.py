"""Docs-consistency checks: the documentation suite cannot silently rot.

These tests pin the documentation to the code: every ``src/repro`` package
must be mentioned in ``docs/ARCHITECTURE.md`` and the README's module index,
the byte layouts documented in ``docs/FORMATS.md`` must match the magic
numbers and codec ids in the source, and documented CLI commands must exist.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def _read(relative: str) -> str:
    path = REPO_ROOT / relative
    assert path.exists(), f"{relative} is missing"
    return path.read_text(encoding="utf-8")


def repro_packages() -> list[str]:
    """Every package under ``src/repro`` (directories with an ``__init__.py``)."""
    return sorted(
        path.name for path in SRC.iterdir() if path.is_dir() and (path / "__init__.py").exists()
    )


def test_every_package_is_listed():
    """Sanity: package discovery sees the expected layout (service included)."""
    packages = repro_packages()
    assert "core" in packages and "service" in packages and "stream" in packages
    assert len(packages) >= 13


@pytest.mark.parametrize("document", ["docs/ARCHITECTURE.md", "README.md"])
def test_every_package_is_documented(document):
    text = _read(document)
    missing = [name for name in repro_packages() if f"repro.{name}" not in text]
    assert not missing, f"{document} does not mention: {missing}"


def test_architecture_covers_top_level_modules():
    text = _read("docs/ARCHITECTURE.md")
    for module in ("repro.cli", "repro.exceptions"):
        assert module in text, f"docs/ARCHITECTURE.md does not mention {module}"


def test_architecture_links_formats():
    assert "FORMATS.md" in _read("docs/ARCHITECTURE.md")


class TestFormatsMatchCode:
    def test_stream_container_magics(self):
        from repro.stream import format as stream_format

        text = _read("docs/FORMATS.md")
        assert stream_format.MAGIC.decode("ascii") in text
        assert stream_format.END_MAGIC.decode("ascii") in text

    def test_sstable_magic(self):
        from repro.lsm import sstable

        text = _read("docs/FORMATS.md")
        assert f"0x{sstable._MAGIC:08X}" in text
        assert "STBL" in text

    def test_frame_codec_ids(self):
        from repro.stream.framecodecs import frame_codec_by_name

        text = _read("docs/FORMATS.md")
        for name in ("raw", "gzip", "lzma", "zstd", "fsst", "pbc", "pbc_f"):
            codec = frame_codec_by_name(name)
            assert f"{codec.codec_id} `{codec.name}`" in text, (
                f"FORMATS.md codec table is stale for {name!r} (id {codec.codec_id})"
            )

    def test_wal_and_outlier_constants(self):
        from repro.core.pattern import OUTLIER_PATTERN_ID
        from repro.lsm.wal import OP_DELETE, OP_PUT

        text = _read("docs/FORMATS.md")
        assert f"{OP_PUT} = PUT" in text
        assert f"{OP_DELETE} = DELETE" in text
        assert OUTLIER_PATTERN_ID == 0 and "pattern_id == 0" in text

    def test_pbc_file_magic(self):
        from repro.cli import _FILE_MAGIC

        assert f'"{_FILE_MAGIC.decode("ascii")}"' in _read("docs/FORMATS.md")


def test_documented_cli_commands_exist():
    """Every CLI command named in the README/ARCHITECTURE actually parses."""
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action for action in parser._actions if hasattr(action, "choices") and action.choices
    )
    commands = set(subparsers.choices)
    for expected in ("train", "compress", "decompress", "inspect", "stream", "serve-bench",
                     "experiments", "experiment", "datasets", "codecs"):
        assert expected in commands, f"CLI command {expected!r} documented but not implemented"


def test_readme_mentions_service_quickstart():
    text = _read("README.md")
    assert "KVService" in text and "ServiceConfig" in text
    assert "serve-bench" in text
    assert "Which compressor when" in text
