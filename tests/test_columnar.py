"""Tests for the columnar substrate: lightweight encodings, the table, and the PIDS-like baseline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar import (
    ColumnarTable,
    DeltaVarintEncoding,
    DictionaryEncoding,
    PIDSLikeCodec,
    PlainEncoding,
    RunLengthEncoding,
    decode_column,
    encode_column,
    select_column_encoding,
)
from repro.core.extraction import ExtractionConfig
from repro.datasets import load_dataset
from repro.exceptions import CompressorError, DecodingError, EncodingError, StoreError


class TestEncodings:
    @pytest.mark.parametrize(
        "encoding",
        [PlainEncoding(), DictionaryEncoding(), RunLengthEncoding()],
        ids=["plain", "dictionary", "rle"],
    )
    def test_roundtrip_generic_values(self, encoding):
        values = ["alpha", "beta", "alpha", "", "véhicule", "alpha"]
        assert encoding.decode(encoding.encode(values)) == values

    def test_empty_column_roundtrip(self):
        for encoding in (PlainEncoding(), DictionaryEncoding(), RunLengthEncoding()):
            assert encoding.decode(encoding.encode([])) == []

    def test_dictionary_encoding_wins_on_low_cardinality(self):
        values = ["GET", "POST", "GET", "GET", "PUT"] * 200
        assert isinstance(select_column_encoding(values), DictionaryEncoding)

    def test_rle_wins_on_sorted_runs(self):
        values = ["a"] * 500 + ["b"] * 500
        chosen = select_column_encoding(values)
        assert isinstance(chosen, (RunLengthEncoding, DictionaryEncoding))
        assert len(chosen.encode(values)) < len(PlainEncoding().encode(values)) / 10

    def test_delta_encoding_applies_only_to_clean_integers(self):
        assert DeltaVarintEncoding.can_encode(["100", "101", "99", "-5"])
        assert not DeltaVarintEncoding.can_encode(["100", "abc"])
        assert not DeltaVarintEncoding.can_encode(["007"])
        assert not DeltaVarintEncoding.can_encode([""])
        assert not DeltaVarintEncoding.can_encode([])

    def test_delta_encoding_roundtrip(self):
        values = [str(value) for value in (1639574096, 1639574099, 1639574100, 1639574090)]
        encoding = DeltaVarintEncoding()
        assert encoding.decode(encoding.encode(values)) == values

    def test_delta_encoding_rejects_non_integers(self):
        with pytest.raises(EncodingError):
            DeltaVarintEncoding().encode(["1", "x"])

    def test_delta_wins_on_monotonic_timestamps(self):
        values = [str(1639574096 + index) for index in range(500)]
        assert isinstance(select_column_encoding(values), DeltaVarintEncoding)

    def test_encode_column_tags_are_reversible(self):
        for values in (["a", "b", "a"], [str(index) for index in range(50)], ["x"] * 40):
            assert decode_column(encode_column(values)) == values

    def test_decode_column_rejects_bad_payloads(self):
        with pytest.raises(DecodingError):
            decode_column(b"")
        with pytest.raises(DecodingError):
            decode_column(bytes([250]) + b"junk")

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(max_size=12), max_size=40))
    def test_column_roundtrip_property(self, values):
        assert decode_column(encode_column(values)) == values

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=-(10**9), max_value=10**9), min_size=1, max_size=40))
    def test_delta_roundtrip_property(self, numbers):
        values = [str(number) for number in numbers]
        encoding = DeltaVarintEncoding()
        assert encoding.decode(encoding.encode(values)) == values


class TestColumnarTable:
    def test_requires_equal_length_columns(self):
        with pytest.raises(StoreError):
            ColumnarTable({"a": ["1"], "b": ["1", "2"]})
        with pytest.raises(StoreError):
            ColumnarTable({})

    def test_row_and_column_access(self):
        table = ColumnarTable({"method": ["GET", "POST"], "status": ["200", "404"]})
        assert table.row_count == 2
        assert table.column("status") == ["200", "404"]
        assert table.row(1) == {"method": "POST", "status": "404"}
        with pytest.raises(StoreError):
            table.column("missing")
        with pytest.raises(StoreError):
            table.row(5)

    def test_from_rows(self):
        rows = [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]
        table = ColumnarTable.from_rows(rows)
        assert table.column("a") == ["1", "2"]
        with pytest.raises(StoreError):
            ColumnarTable.from_rows([])
        with pytest.raises(StoreError):
            ColumnarTable.from_rows([{"a": "1"}, {"b": "2"}])

    def test_serialisation_roundtrip(self):
        table = ColumnarTable(
            {
                "ts": [str(1639574096 + index) for index in range(100)],
                "method": [random.Random(1).choice(["GET", "POST"]) for _ in range(100)],
            }
        )
        restored = ColumnarTable.from_bytes(table.to_bytes())
        assert restored.column("ts") == table.column("ts")
        assert restored.column("method") == table.column("method")

    def test_column_stats_report_encoding_choices(self):
        table = ColumnarTable(
            {
                "ts": [str(1639574096 + index) for index in range(200)],
                "status": ["200"] * 190 + ["500"] * 10,
            }
        )
        stats = {entry.name: entry for entry in table.column_stats()}
        assert stats["ts"].encoding == "delta"
        assert stats["status"].encoding in ("dictionary", "rle")
        assert stats["ts"].ratio < 0.3


class TestPIDSLikeCodec:
    @pytest.fixture(scope="class")
    def url_codec(self):
        codec = PIDSLikeCodec(config=ExtractionConfig(sample_size=64, seed=3))
        codec.train(load_dataset("urls", count=200)[:100])
        return codec

    def test_requires_training(self):
        codec = PIDSLikeCodec()
        assert not codec.is_trained
        with pytest.raises(CompressorError):
            codec.compress_column(["value"])
        with pytest.raises(CompressorError):
            codec.pattern

    def test_training_produces_a_single_pattern(self, url_codec):
        assert url_codec.is_trained
        assert url_codec.pattern.field_count >= 1

    def test_single_structure_column_roundtrip_and_compression(self, url_codec):
        urls = load_dataset("urls", count=300)
        blob = url_codec.compress_column(urls)
        assert url_codec.decompress_column(blob) == urls
        raw = sum(len(url.encode("utf-8")) for url in urls)
        assert len(blob) < raw
        assert url_codec.exception_rate(urls) < 0.2

    def test_multi_structure_column_still_roundtrips(self):
        mixed = load_dataset("kv1", count=150) + load_dataset("apache", count=150)
        random.Random(5).shuffle(mixed)
        codec = PIDSLikeCodec(config=ExtractionConfig(sample_size=64, seed=3))
        codec.train(mixed[:100])
        blob = codec.compress_column(mixed)
        assert codec.decompress_column(blob) == mixed

    def test_pids_is_weaker_than_pbc_on_multi_structure_data(self):
        from repro import PBCCompressor

        mixed = load_dataset("kv1", count=150) + load_dataset("apache", count=150)
        random.Random(5).shuffle(mixed)
        config = ExtractionConfig(max_patterns=16, sample_size=64, seed=3)
        pids = PIDSLikeCodec(config=config)
        pids.train(mixed[:100])
        pbc = PBCCompressor(config=config)
        pbc.train(mixed[:100])
        raw = sum(len(record.encode("utf-8")) for record in mixed)
        pids_ratio = len(pids.compress_column(mixed)) / raw
        pbc_ratio = pbc.measure(mixed).ratio
        assert pbc_ratio < pids_ratio

    def test_decompress_rejects_mismatched_payload(self, url_codec):
        other = PIDSLikeCodec(config=ExtractionConfig(sample_size=48, seed=3))
        other.train(load_dataset("kv1", count=100)[:80])
        blob = other.compress_column(load_dataset("kv1", count=50))
        if url_codec.pattern.field_count != other.pattern.field_count:
            with pytest.raises(DecodingError):
                url_codec.decompress_column(blob)
