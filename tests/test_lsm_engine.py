"""Integration tests for the LSM engine: writes, reads, flushes, compaction, recovery."""

import pytest

from repro.compressors import ZstdLikeCodec
from repro.core.extraction import ExtractionConfig
from repro.exceptions import StoreError
from repro.lsm import BlockCompressionPolicy, LSMEngine, PlainPolicy, RecordCompressionPolicy
from repro.tierbase import PBCValueCompressor

from tests.conftest import make_template_records


def trained_pbc_policy(values: list[str]) -> RecordCompressionPolicy:
    compressor = PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48, seed=9))
    compressor.train(values[:60])
    return RecordCompressionPolicy(compressor)


class TestBasicOperations:
    def test_put_get_roundtrip(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            engine.put("user:1", "alice")
            engine.put("user:2", "bob")
            assert engine.get("user:1") == "alice"
            assert engine.get("user:2") == "bob"
            assert engine.get("user:3") is None

    def test_overwrite_returns_latest_value(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            engine.put("key", "v1")
            engine.put("key", "v2")
            assert engine.get("key") == "v2"

    def test_delete_hides_key(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            engine.put("key", "value")
            engine.delete("key")
            assert engine.get("key") is None
            assert "key" not in engine

    def test_contains(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            engine.put("present", "yes")
            assert "present" in engine
            assert "absent" not in engine

    def test_operations_after_close_rejected(self, tmp_path):
        engine = LSMEngine(tmp_path)
        engine.put("key", "value")
        engine.close()
        with pytest.raises(StoreError):
            engine.get("key")
        with pytest.raises(StoreError):
            engine.put("other", "value")

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            LSMEngine(tmp_path, memtable_bytes=0)
        with pytest.raises(StoreError):
            LSMEngine(tmp_path, compaction_trigger=1)


class TestFlushAndRead:
    def test_values_remain_readable_after_flush(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as engine:
            records = make_template_records(80, seed=2)
            for index, record in enumerate(records):
                engine.put(f"key:{index:05d}", record)
            engine.flush()
            stats = engine.stats()
            assert stats.sstable_count == 1
            assert stats.memtable_entries == 0
            for index, record in enumerate(records):
                assert engine.get(f"key:{index:05d}") == record

    def test_memtable_threshold_triggers_automatic_flush(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=2048) as engine:
            for index in range(200):
                engine.put(f"key:{index:05d}", "x" * 64)
            assert engine.stats().flushes >= 1
            assert engine.get("key:00000") == "x" * 64

    def test_newest_version_wins_across_memtable_and_sstables(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as engine:
            engine.put("key", "old")
            engine.flush()
            engine.put("key", "new")
            assert engine.get("key") == "new"
            engine.flush()
            assert engine.get("key") == "new"

    def test_deletion_shadows_older_sstable_value(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as engine:
            engine.put("key", "value")
            engine.flush()
            engine.delete("key")
            assert engine.get("key") is None
            engine.flush()
            assert engine.get("key") is None

    def test_flush_of_empty_memtable_is_noop(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            engine.flush()
            assert engine.stats().sstable_count == 0


class TestScan:
    def test_scan_returns_live_entries_sorted(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as engine:
            engine.put("b", "2")
            engine.put("a", "1")
            engine.flush()
            engine.put("c", "3")
            engine.delete("b")
            assert list(engine.scan()) == [("a", "1"), ("c", "3")]

    def test_scan_with_bounds(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            for index in range(20):
                engine.put(f"key:{index:03d}", str(index))
            window = list(engine.scan("key:005", "key:010"))
            assert [key for key, _ in window] == [f"key:{index:03d}" for index in range(5, 10)]


class TestCompaction:
    def test_compaction_merges_tables_and_drops_tombstones(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20, compaction_trigger=100) as engine:
            for index in range(30):
                engine.put(f"key:{index:03d}", f"value-{index}")
            engine.flush()
            for index in range(0, 30, 2):
                engine.delete(f"key:{index:03d}")
            engine.flush()
            assert engine.stats().sstable_count == 2
            engine.compact()
            stats = engine.stats()
            assert stats.sstable_count == 1
            assert stats.compactions == 1
            for index in range(30):
                expected = None if index % 2 == 0 else f"value-{index}"
                assert engine.get(f"key:{index:03d}") == expected

    def test_compaction_trigger_fires_automatically(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20, compaction_trigger=2) as engine:
            engine.put("a", "1")
            engine.flush()
            engine.put("b", "2")
            engine.flush()
            assert engine.stats().compactions >= 1
            assert engine.stats().sstable_count == 1

    def test_compacting_everything_deleted_leaves_no_tables(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20, compaction_trigger=100) as engine:
            engine.put("key", "value")
            engine.flush()
            engine.delete("key")
            engine.flush()
            engine.compact()
            assert engine.stats().sstable_count == 0
            assert engine.get("key") is None


class TestRecovery:
    def test_unflushed_writes_survive_restart_via_wal(self, tmp_path):
        engine = LSMEngine(tmp_path, memtable_bytes=1 << 20)
        engine.put("durable", "yes")
        engine.delete("gone")
        engine._wal.sync()
        # Simulate a crash: do not close/flush, just drop the object.
        del engine
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as recovered:
            assert recovered.get("durable") == "yes"
            assert recovered.get("gone") is None

    def test_flushed_tables_are_rediscovered_on_restart(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as engine:
            records = make_template_records(40, seed=4)
            for index, record in enumerate(records):
                engine.put(f"key:{index:04d}", record)
            engine.flush()
        with LSMEngine(tmp_path, memtable_bytes=1 << 20) as recovered:
            assert recovered.stats().sstable_count == 1
            for index, record in enumerate(records):
                assert recovered.get(f"key:{index:04d}") == record

    def test_restart_continues_table_numbering(self, tmp_path):
        with LSMEngine(tmp_path, compaction_trigger=100) as engine:
            engine.put("a", "1")
            engine.flush()
        with LSMEngine(tmp_path, compaction_trigger=100) as engine:
            engine.put("b", "2")
            engine.flush()
            assert engine.stats().sstable_count == 2


class TestCompressionPolicies:
    @pytest.mark.parametrize("policy_name", ["plain", "zstd-block", "pbc-record"])
    def test_policies_preserve_values(self, tmp_path, policy_name):
        records = make_template_records(60, seed=6)
        if policy_name == "plain":
            policy = PlainPolicy()
        elif policy_name == "zstd-block":
            policy = BlockCompressionPolicy(ZstdLikeCodec())
        else:
            policy = trained_pbc_policy(records)
        with LSMEngine(tmp_path, policy=policy, memtable_bytes=1 << 20) as engine:
            for index, record in enumerate(records):
                engine.put(f"key:{index:04d}", record)
            engine.flush()
            for index, record in enumerate(records):
                assert engine.get(f"key:{index:04d}") == record

    def test_compressed_policies_reduce_disk_usage(self, tmp_path):
        records = make_template_records(120, seed=8)
        sizes = {}
        for name, policy in (
            ("plain", PlainPolicy()),
            ("zstd", BlockCompressionPolicy(ZstdLikeCodec())),
            ("pbc", trained_pbc_policy(records)),
        ):
            with LSMEngine(tmp_path / name, policy=policy, memtable_bytes=1 << 20) as engine:
                for index, record in enumerate(records):
                    engine.put(f"key:{index:04d}", record)
                engine.flush()
                sizes[name] = engine.stats().sstable_file_bytes
        assert sizes["zstd"] < sizes["plain"]
        assert sizes["pbc"] < sizes["plain"]

    def test_stats_space_ratio(self, tmp_path):
        records = make_template_records(60, seed=10)
        policy = trained_pbc_policy(records)
        with LSMEngine(tmp_path, policy=policy, memtable_bytes=1 << 20) as engine:
            for index, record in enumerate(records):
                engine.put(f"key:{index:04d}", record)
            engine.flush()
            stats = engine.stats()
            assert 0 < stats.space_ratio < 1.5
            assert stats.policy.startswith("record[")

    def test_measure_lookups_counts_hits(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            for index in range(50):
                engine.put(f"key:{index:03d}", str(index))
            engine.flush()
            timing = engine.measure_lookups([f"key:{index:03d}" for index in range(0, 100, 2)])
            assert timing.lookups == 50
            assert timing.hits == 25
            assert timing.lookups_per_second > 0
