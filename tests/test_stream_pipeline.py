"""Tests for the parallel stream pipeline (repro.stream.pipeline)."""

import io

import pytest

from repro.exceptions import StreamError
from repro.stream import (
    StreamConfig,
    StreamReader,
    StreamWriter,
    compress_stream,
    decompress_stream,
)
from repro.stream.adaptive import AdaptiveConfig

from tests.conftest import make_template_records


@pytest.fixture(scope="module")
def records():
    return make_template_records(900, seed=11)


def small_config(**overrides) -> StreamConfig:
    defaults = dict(
        codec="gzip",
        frame_records=128,
        workers=0,
        adaptive=AdaptiveConfig(sample_size=24, train_size=64),
    )
    defaults.update(overrides)
    return StreamConfig(**defaults)


class TestWriterReader:
    def test_sequential_roundtrip(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        summary = compress_stream(records, path, small_config())
        assert summary.record_count == len(records)
        assert decompress_stream(path) == records

    def test_roundtrip_in_memory(self, records):
        buffer = io.BytesIO()
        compress_stream(records, buffer, small_config())
        buffer.seek(0)
        assert decompress_stream(buffer) == records

    def test_random_access_equals_sequential(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        compress_stream(records, path, small_config(codec="pbc"))
        with StreamReader(path) as reader:
            sequential = list(reader)
            assert sequential == records
            for index in (0, 1, 127, 128, 500, len(records) - 1):
                assert reader.get(index) == records[index]

    def test_get_touches_exactly_one_frame(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        compress_stream(records, path, small_config())
        with StreamReader(path, frame_cache=1) as reader:
            assert reader.get(400) == records[400]
            assert reader.frames_decompressed == 1
            # A lookup in the same frame reuses the cache.
            assert reader.get(401) == records[401]
            assert reader.frames_decompressed == 1
            # A lookup in another frame decompresses exactly one more.
            assert reader.get(0) == records[0]
            assert reader.frames_decompressed == 2

    def test_tail_frame_smaller_than_batch(self, tmp_path):
        path = tmp_path / "stream.rps"
        summary = compress_stream(["a", "b", "c"], path, small_config(frame_records=2))
        assert [frame.record_count for frame in summary.frames] == [2, 1]
        assert decompress_stream(path) == ["a", "b", "c"]

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "stream.rps"
        summary = compress_stream([], path, small_config())
        assert summary.frames == []
        assert decompress_stream(path) == []

    def test_write_after_close_rejected(self, tmp_path):
        writer = StreamWriter(tmp_path / "stream.rps", small_config())
        writer.write("x")
        writer.close()
        with pytest.raises(StreamError):
            writer.write("y")


class TestWorkerPools:
    def test_thread_pool_preserves_frame_order(self, records, tmp_path):
        """Frames may finish out of order; the container must stay in order."""
        path = tmp_path / "stream.rps"
        # Tiny frames + more workers than frames in flight maximise reordering
        # pressure; the deque commit protocol must still write frame i before
        # frame i+1.
        config = small_config(frame_records=32, workers=4, executor="thread", max_pending=8)
        summary = compress_stream(records, path, config)
        assert summary.record_count == len(records)
        with StreamReader(path) as reader:
            assert [f.first_record for f in reader.frames] == sorted(
                f.first_record for f in reader.frames
            )
            assert list(reader) == records

    def test_process_pool_roundtrip(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        config = small_config(codec="pbc", frame_records=300, workers=2, executor="process")
        summary = compress_stream(records, path, config)
        assert summary.codec_usage == {"pbc": 3}
        assert decompress_stream(path) == records

    def test_thread_pool_outlier_counts_are_exact(self, tmp_path):
        """Per-thread compressor instances: counters must not race across workers."""
        import random

        rng = random.Random(13)
        # Random 5-digit ids so the dictionary trained on the first frame
        # cannot pin a digit prefix as a literal and generalises to all frames.
        clean = [f"job={rng.randint(10000, 99999)} state=DONE code={i % 7}" for i in range(256)]
        garbage = ["☃" * 20 + str(i) for i in range(150)]
        path = tmp_path / "stream.rps"
        # Shared dictionary trained on the first (clean) frame; the garbage
        # frames can match none of its patterns, so every garbage record is an
        # outlier and the total is exact, not approximately racy.
        config = small_config(codec="pbc", frame_records=64, workers=4, executor="thread")
        summary = compress_stream(clean + garbage, path, config)
        stats = summary.stats
        assert stats is not None
        assert stats.records == len(clean) + len(garbage)
        assert stats.outliers == len(garbage)
        assert decompress_stream(path) == clean + garbage

    def test_parallel_read_all(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        compress_stream(records, path, small_config(frame_records=200))
        assert decompress_stream(path, workers=2) == records

    def test_serial_executor_ignores_workers(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        config = small_config(workers=4, executor="serial")
        compress_stream(records, path, config)
        assert decompress_stream(path) == records


class TestStats:
    def test_stats_counts(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        summary = compress_stream(records, path, small_config(codec="pbc"))
        stats = summary.stats
        assert stats is not None
        assert stats.records == len(records)
        assert stats.original_bytes == sum(len(r.encode("utf-8")) for r in records)
        assert 0 < stats.compressed_bytes < stats.original_bytes
        # Untimed by default: no clock calls were made in the hot path.
        assert stats.compress_seconds == 0.0

    def test_timed_stats_opt_in(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        summary = compress_stream(records, path, small_config(timed_stats=True))
        assert summary.stats is not None
        assert summary.stats.compress_seconds > 0.0

    def test_stats_opt_out(self, records, tmp_path):
        path = tmp_path / "stream.rps"
        summary = compress_stream(records, path, small_config(collect_stats=False))
        assert summary.stats is None


class TestConfigValidation:
    def test_bad_frame_records(self):
        with pytest.raises(StreamError):
            StreamConfig(frame_records=0)

    def test_bad_executor(self):
        with pytest.raises(StreamError):
            StreamConfig(executor="rocket")

    def test_unknown_codec(self, tmp_path):
        with pytest.raises(StreamError):
            StreamWriter(tmp_path / "stream.rps", StreamConfig(codec="nope"))
