"""Tests for the 1-gram distance, edit distance and LCS helpers."""

from collections import Counter

from hypothesis import given, strategies as st

from repro.core.distance import (
    edit_distance,
    longest_common_subsequence_length,
    one_gram_distance,
    one_gram_distance_counters,
    symbol_counter,
)
from repro.core.pattern import WILDCARD


class TestOneGramDistance:
    def test_identical_strings(self):
        assert one_gram_distance("abc", "abc") == 0

    def test_disjoint_strings(self):
        # union = 6, intersection = 0
        assert one_gram_distance("abc", "xyz") == 6

    def test_multiset_definition(self):
        # MS1 = {a,a,b}, MS2 = {a,b,b}: additive union = 6, intersection(min) = a:1,b:1 -> 2.
        assert one_gram_distance("aab", "abb") == 6 - 2 * 2

    def test_symmetry(self):
        assert one_gram_distance("hello", "world") == one_gram_distance("world", "hello")

    def test_counter_variant_matches(self):
        assert one_gram_distance_counters(Counter("abca"), Counter("bcad")) == one_gram_distance(
            "abca", "bcad"
        )

    def test_symbol_counter_skips_wildcards(self):
        assert symbol_counter(["a", WILDCARD, "a"]) == Counter({"a": 2})

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_non_negative_and_symmetric(self, left, right):
        distance = one_gram_distance(left, right)
        assert distance >= 0
        assert one_gram_distance(right, left) == distance

    @given(st.text(max_size=30))
    def test_identity(self, text):
        assert one_gram_distance(text, text) == 0


class TestEditDistance:
    def test_basic_cases(self):
        assert edit_distance("", "") == 0
        assert edit_distance("abc", "") == 3
        assert edit_distance("", "abc") == 3
        assert edit_distance("kitten", "sitting") == 3

    def test_single_substitution(self):
        assert edit_distance("abc", "axc") == 1

    def test_works_on_token_lists(self):
        assert edit_distance(["a", WILDCARD, "b"], ["a", "b"]) == 1

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_bounds(self, left, right):
        distance = edit_distance(left, right)
        assert abs(len(left) - len(right)) <= distance <= max(len(left), len(right))

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_symmetry(self, left, right):
        assert edit_distance(left, right) == edit_distance(right, left)


class TestLCS:
    def test_basic_cases(self):
        assert longest_common_subsequence_length("abcde", "ace") == 3
        assert longest_common_subsequence_length("abc", "xyz") == 0
        assert longest_common_subsequence_length("", "abc") == 0

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_relationship_with_edit_distance(self, left, right):
        # For unit-cost edit distance: ed >= max(len) - lcs.
        lcs = longest_common_subsequence_length(left, right)
        assert edit_distance(left, right) >= max(len(left), len(right)) - lcs
