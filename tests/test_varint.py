"""Tests for the LEB128 varint and zigzag encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.entropy.varint import (
    decode_uvarint,
    decode_zigzag,
    encode_uvarint,
    encode_zigzag,
    uvarint_size,
)
from repro.exceptions import DecodingError, EncodingError


class TestUvarint:
    def test_zero_is_single_byte(self):
        assert encode_uvarint(0) == b"\x00"

    def test_small_values_are_single_byte(self):
        for value in (1, 42, 127):
            assert len(encode_uvarint(value)) == 1

    def test_boundary_at_128(self):
        assert len(encode_uvarint(127)) == 1
        assert len(encode_uvarint(128)) == 2

    def test_roundtrip_selected_values(self):
        for value in (0, 1, 127, 128, 300, 2**20, 2**40, 2**63 - 1):
            encoded = encode_uvarint(value)
            decoded, offset = decode_uvarint(encoded, 0)
            assert decoded == value
            assert offset == len(encoded)

    def test_decode_with_offset(self):
        payload = b"\xff" + encode_uvarint(300)
        value, offset = decode_uvarint(payload, 1)
        assert value == 300
        assert offset == len(payload)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encode_uvarint(-1)
        with pytest.raises(EncodingError):
            uvarint_size(-1)

    def test_truncated_input_rejected(self):
        with pytest.raises(DecodingError):
            decode_uvarint(b"\x80", 0)

    def test_empty_input_rejected(self):
        with pytest.raises(DecodingError):
            decode_uvarint(b"", 0)

    def test_size_matches_encoding(self):
        for value in (0, 127, 128, 16383, 16384, 2**35):
            assert uvarint_size(value) == len(encode_uvarint(value))

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip_property(self, value):
        encoded = encode_uvarint(value)
        decoded, offset = decode_uvarint(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)
        assert uvarint_size(value) == len(encoded)

    @given(st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=20))
    def test_concatenated_stream(self, values):
        payload = b"".join(encode_uvarint(value) for value in values)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = decode_uvarint(payload, offset)
            decoded.append(value)
        assert decoded == values
        assert offset == len(payload)


class TestZigzag:
    def test_known_mapping(self):
        assert encode_zigzag(0) == encode_uvarint(0)
        assert encode_zigzag(-1) == encode_uvarint(1)
        assert encode_zigzag(1) == encode_uvarint(2)
        assert encode_zigzag(-2) == encode_uvarint(3)

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip_property(self, value):
        encoded = encode_zigzag(value)
        decoded, offset = decode_zigzag(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_small_magnitude_is_small(self):
        assert len(encode_zigzag(-5)) == 1
        assert len(encode_zigzag(63)) == 1
