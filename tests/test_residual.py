"""Tests for the residual entropy codecs and the PBC_H compressor variant."""

import pytest
from hypothesis import given, strategies as st

from repro import PBCCompressor, PBCHCompressor
from repro.core.residual import (
    AdaptiveArithmeticResidualCodec,
    RESIDUAL_CODECS,
    SharedHuffmanResidualCodec,
    SharedRansResidualCodec,
    make_residual_codec,
)
from repro.exceptions import CompressorError, DecodingError

TRAINING_PAYLOADS = [
    b"57\x0320_ac\x00" + (1230).to_bytes(2, "big"),
    b"72\x0311_ac\x00" + (2041).to_bytes(2, "big"),
    b"15\x0342\x00\x02id" + (2054).to_bytes(2, "big"),
    b"accounting_log_2022",
    b"GET /api/v1/orders?id=9912",
]


@pytest.fixture(params=sorted(RESIDUAL_CODECS))
def residual_codec(request):
    codec = make_residual_codec(request.param)
    codec.train(TRAINING_PAYLOADS)
    return codec


class TestResidualCodecs:
    def test_registry_names(self):
        assert set(RESIDUAL_CODECS) == {"rans", "huffman", "arithmetic"}

    def test_unknown_name_rejected(self):
        with pytest.raises(CompressorError):
            make_residual_codec("zlib")

    def test_untrained_shared_codecs_refuse_to_compress(self):
        for codec_class in (SharedRansResidualCodec, SharedHuffmanResidualCodec):
            codec = codec_class()
            assert not codec.is_trained
            with pytest.raises(CompressorError):
                codec.compress(b"abc")

    def test_adaptive_codec_needs_no_training(self):
        codec = AdaptiveArithmeticResidualCodec()
        assert codec.is_trained
        payload = b"no training required"
        assert codec.decompress(codec.compress(payload)) == payload

    def test_roundtrip_training_payloads(self, residual_codec):
        for payload in TRAINING_PAYLOADS:
            assert residual_codec.decompress(residual_codec.compress(payload)) == payload

    def test_roundtrip_unseen_payload(self, residual_codec):
        payload = b"POST /unseen/route\x00\xff\x80 with bytes outside training"
        assert residual_codec.decompress(residual_codec.compress(payload)) == payload

    def test_roundtrip_empty_payload(self, residual_codec):
        assert residual_codec.decompress(residual_codec.compress(b"")) == b""

    def test_empty_compressed_payload_rejected(self, residual_codec):
        with pytest.raises(DecodingError):
            residual_codec.decompress(b"")

    def test_unknown_marker_rejected(self, residual_codec):
        with pytest.raises(DecodingError):
            residual_codec.decompress(bytes([99]) + b"xyz")

    def test_never_expands_by_more_than_marker_byte(self, residual_codec):
        incompressible = bytes(range(256))
        blob = residual_codec.compress(incompressible)
        assert len(blob) <= len(incompressible) + 1

    def test_shared_models_compress_training_like_text(self):
        codec = SharedRansResidualCodec()
        codec.train([b"level=INFO msg=ok host=web-01 latency=3ms"] * 10)
        payload = b"level=INFO msg=ok host=web-07 latency=9ms"
        assert len(codec.compress(payload)) < len(payload)

    @given(st.binary(max_size=256))
    def test_roundtrip_property_rans(self, payload):
        codec = SharedRansResidualCodec()
        codec.train(TRAINING_PAYLOADS)
        assert codec.decompress(codec.compress(payload)) == payload

    @given(st.binary(max_size=256))
    def test_roundtrip_property_huffman(self, payload):
        codec = SharedHuffmanResidualCodec()
        codec.train(TRAINING_PAYLOADS)
        assert codec.decompress(codec.compress(payload)) == payload


class TestPBCHCompressor:
    @pytest.mark.parametrize("entropy", sorted(RESIDUAL_CODECS))
    def test_roundtrip_all_entropy_backends(self, entropy, template_records, small_config):
        compressor = PBCHCompressor(config=small_config, entropy=entropy)
        compressor.train(template_records[:120])
        for record in template_records[120:160]:
            assert compressor.decompress(compressor.compress(record)) == record

    def test_unknown_entropy_backend_rejected(self, small_config):
        with pytest.raises(CompressorError):
            PBCHCompressor(config=small_config, entropy="lz77")

    def test_requires_training(self, small_config):
        compressor = PBCHCompressor(config=small_config)
        with pytest.raises(CompressorError):
            compressor.compress("record")

    def test_outlier_records_roundtrip(self, template_records, small_config):
        compressor = PBCHCompressor(config=small_config)
        compressor.train(template_records[:120])
        outlier = "completely unrelated outlier record éü"
        assert compressor.decompress(compressor.compress(outlier)) == outlier

    def test_ratio_not_worse_than_plain_pbc_by_much(self, template_records, small_config):
        plain = PBCCompressor(config=small_config)
        plain.train(template_records[:120])
        entropy = PBCHCompressor(config=small_config, entropy="rans")
        entropy.train(template_records[:120])
        evaluation = template_records[120:]
        plain_stats = plain.measure(evaluation)
        entropy_stats = entropy.measure(evaluation)
        # The entropy stage may not always win on tiny payloads, but it must
        # never blow the size up (raw fallback bounds the expansion).
        assert entropy_stats.compressed_bytes <= plain_stats.compressed_bytes * 1.15

    def test_measure_reports_consistent_totals(self, template_records, small_config):
        compressor = PBCHCompressor(config=small_config)
        compressor.train(template_records[:120])
        stats = compressor.measure(template_records[120:150])
        assert stats.records == 30
        assert stats.compressed_bytes > 0
        assert 0 < stats.ratio <= 1.5

    def test_shared_dictionary_with_plain_pbc(self, template_records, small_config):
        # A PBC_H compressor can reuse a dictionary trained by plain PBC, then
        # fit only its residual model.
        plain = PBCCompressor(config=small_config)
        plain.train(template_records[:120])
        entropy = PBCHCompressor(dictionary=plain.dictionary, config=small_config)
        entropy.train_residual(template_records[:120])
        record = template_records[130]
        assert entropy.decompress(entropy.compress(record)) == record
