"""Tests for the :mod:`repro.codecs` registry — the one codec-id table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import (
    Codec,
    all_codecs,
    codec_by_id,
    codec_by_name,
    codec_names,
    codec_specs,
    register_codec,
)
from repro.exceptions import CodecError, StreamError, StreamFormatError, UnknownCodecError
from repro.stream.framecodecs import compress_frame, decompress_frame

from tests.conftest import make_template_records


class TestRegistryInvariants:
    def test_builtin_codecs_are_registered(self):
        assert codec_names() == ["fsst", "gzip", "lzma", "pbc", "pbc_f", "raw", "zstd"]

    def test_ids_are_unique_dense_and_ordered(self):
        specs = codec_specs()
        assert [spec.codec_id for spec in specs] == list(range(len(specs)))

    def test_magic_is_the_id_byte(self):
        for spec in codec_specs():
            assert spec.magic == bytes([spec.codec_id])

    def test_lookup_by_id_and_name_agree(self):
        for codec in all_codecs():
            assert codec_by_id(codec.codec_id) is codec
            assert codec_by_name(codec.name) is codec
            assert codec_by_name(codec.name.upper()) is codec

    def test_unknown_lookups_raise_typed_and_stream_compatible(self):
        with pytest.raises(UnknownCodecError):
            codec_by_id(200)
        with pytest.raises(StreamFormatError):  # stream readers catch this
            codec_by_id(200)
        with pytest.raises(StreamError):
            codec_by_name("brotli")

    def test_duplicate_registration_rejected(self):
        class Impostor(Codec):
            codec_id = 0  # collides with raw
            name = "impostor"

        with pytest.raises(CodecError):
            register_codec(Impostor())

        class BadId(Codec):
            codec_id = 300
            name = "overflow"

        with pytest.raises(CodecError):
            register_codec(BadId())

    def test_reregistering_same_instance_is_idempotent(self):
        raw = codec_by_name("raw")
        assert register_codec(raw) is raw

    def test_trainable_flags_match_behaviour(self):
        records = make_template_records(64, seed=11)
        for codec in all_codecs():
            payload = codec.train(records)
            assert bool(payload) == codec.trains

    def test_record_oriented_codecs_reject_opaque_bytes(self):
        for codec in all_codecs():
            if codec.record_oriented:
                with pytest.raises(CodecError):
                    codec.compress_bytes(b"opaque")
            else:
                assert codec.decompress_bytes(codec.compress_bytes(b"opaque")) == b"opaque"


class TestRecordGranularity:
    def test_encode_record_roundtrips_for_every_codec(self):
        records = make_template_records(80, seed=7)
        for codec in all_codecs():
            model = codec.train(records) if codec.trains else b""
            for record in records[:10]:
                payload = codec.encode_record(record, model)
                assert codec.decode_record(payload, model) == record

    def test_pbc_outlier_detection(self):
        records = make_template_records(80, seed=7)
        for name in ("pbc", "pbc_f"):
            codec = codec_by_name(name)
            model = codec.train(records)
            matched = codec.encode_record(records[0], model)
            outlier = codec.encode_record("@@@ nothing like the templates @@@", model)
            assert not codec.record_is_outlier(matched)
            assert codec.record_is_outlier(outlier)


@settings(max_examples=20, deadline=None)
@given(
    records=st.lists(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=40
        ),
        min_size=1,
        max_size=10,
    )
)
def test_frame_roundtrip_identity_for_every_registered_codec(records):
    """compress_frame → decompress_frame is the identity for every codec.

    Trainable codecs train on the frame's own records (the self-contained
    frame path), so this exercises train + encode + decode per codec.
    """
    for codec in all_codecs():
        frame = compress_frame(codec.codec_id, records)
        assert decompress_frame(frame.codec_id, frame.dict_payload, frame.body) == records
