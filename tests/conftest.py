"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.extraction import ExtractionConfig


def make_template_records(count: int, seed: int = 7) -> list[str]:
    """Records generated from two fixed templates plus a couple of outliers.

    This is the canonical machine-generated workload used across the tests: the
    structure mirrors the paper's Figure 2 example (literal template, digit
    fields of fixed and variable width, a free-text field).
    """
    rng = random.Random(seed)
    records = []
    for index in range(count):
        if index % 19 == 18:
            records.append(f"!!corrupt{rng.randint(0, 10**9)}")
            continue
        if index % 2 == 0:
            records.append(
                f"V5company_charging-100-{rng.randint(10, 99)}accenter{rng.randint(10, 99)}"
                f"ac_accounting_log_202{rng.randint(100000, 999999)}"
            )
        else:
            records.append(
                f"order;id={rng.randint(10000, 99999)};sym={rng.choice(['IBM', 'AAPL', 'GOOG'])}"
                f";qty={rng.randint(1, 999)};ts={rng.randint(1600000000, 1700000000)}"
            )
    return records


@pytest.fixture
def template_records() -> list[str]:
    """200 records from two templates with sporadic outliers."""
    return make_template_records(200)


@pytest.fixture
def small_config() -> ExtractionConfig:
    """An extraction configuration sized for fast unit tests."""
    return ExtractionConfig(max_patterns=6, sample_size=64, seed=11)
