"""Tests for SSTable files and their storage policies."""

import pytest

from repro.compressors import LZMACodec, ZstdLikeCodec
from repro.core.extraction import ExtractionConfig
from repro.exceptions import StoreError
from repro.lsm import (
    BlockCompressionPolicy,
    PlainPolicy,
    RecordCompressionPolicy,
    SSTable,
    write_sstable,
)
from repro.tierbase import PBCValueCompressor

from tests.conftest import make_template_records


def make_entries(count: int = 60) -> list[tuple[str, str | None]]:
    """Sorted machine-generated entries with a couple of tombstones."""
    records = make_template_records(count, seed=3)
    entries: list[tuple[str, str | None]] = []
    for index, record in enumerate(records):
        value: str | None = record
        if index % 17 == 16:
            value = None
        entries.append((f"key:{index:05d}", value))
    return entries


def make_policies() -> list:
    pbc = PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48, seed=5))
    pbc.train([value for _, value in make_entries(80) if value is not None])
    return [
        PlainPolicy(),
        BlockCompressionPolicy(ZstdLikeCodec()),
        BlockCompressionPolicy(LZMACodec(preset=1)),
        RecordCompressionPolicy(pbc),
    ]


@pytest.fixture(scope="module", params=range(4), ids=["plain", "zstd-block", "lzma-block", "pbc-record"])
def policy(request):
    return make_policies()[request.param]


class TestWriteSSTable:
    def test_rejects_empty_entries(self, tmp_path, policy):
        with pytest.raises(StoreError):
            write_sstable(tmp_path / "table.sst", [], policy)

    def test_rejects_unsorted_entries(self, tmp_path, policy):
        entries = [("b", "1"), ("a", "2")]
        with pytest.raises(StoreError):
            write_sstable(tmp_path / "table.sst", entries, policy)

    def test_rejects_duplicate_keys(self, tmp_path, policy):
        entries = [("a", "1"), ("a", "2")]
        with pytest.raises(StoreError):
            write_sstable(tmp_path / "table.sst", entries, policy)

    def test_info_reports_counts_and_bounds(self, tmp_path, policy):
        entries = make_entries(40)
        info = write_sstable(tmp_path / "table.sst", entries, policy, block_bytes=512)
        assert info.entry_count == 40
        assert info.block_count >= 2
        assert info.min_key == entries[0][0]
        assert info.max_key == entries[-1][0]
        assert info.file_bytes == (tmp_path / "table.sst").stat().st_size


class TestSSTableReads:
    def test_every_written_key_is_readable(self, tmp_path, policy):
        entries = make_entries(60)
        write_sstable(tmp_path / "table.sst", entries, policy, block_bytes=1024)
        table = SSTable(tmp_path / "table.sst", policy)
        for key, value in entries:
            assert table.get(key) == (True, value)

    def test_absent_keys_are_not_found(self, tmp_path, policy):
        entries = make_entries(30)
        write_sstable(tmp_path / "table.sst", entries, policy)
        table = SSTable(tmp_path / "table.sst", policy)
        assert table.get("missing-key") == (False, None)
        assert table.get("key:99999") == (False, None)

    def test_scan_returns_entries_in_key_order(self, tmp_path, policy):
        entries = make_entries(45)
        write_sstable(tmp_path / "table.sst", entries, policy, block_bytes=700)
        table = SSTable(tmp_path / "table.sst", policy)
        assert list(table.scan()) == entries

    def test_range_scan_bounds(self, tmp_path, policy):
        entries = make_entries(50)
        write_sstable(tmp_path / "table.sst", entries, policy)
        table = SSTable(tmp_path / "table.sst", policy)
        window = list(table.range("key:00010", "key:00020"))
        assert [key for key, _ in window] == [f"key:{index:05d}" for index in range(10, 20)]

    def test_tombstones_are_preserved(self, tmp_path, policy):
        entries = make_entries(40)
        tombstone_keys = [key for key, value in entries if value is None]
        assert tombstone_keys, "fixture should include tombstones"
        write_sstable(tmp_path / "table.sst", entries, policy)
        table = SSTable(tmp_path / "table.sst", policy)
        for key in tombstone_keys:
            assert table.get(key) == (True, None)


class TestSSTableFileFormat:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            SSTable(tmp_path / "absent.sst", PlainPolicy())

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "tiny.sst"
        path.write_bytes(b"short")
        with pytest.raises(StoreError):
            SSTable(path, PlainPolicy())

    def test_bad_magic_rejected(self, tmp_path):
        entries = make_entries(10)
        path = tmp_path / "table.sst"
        write_sstable(path, entries, PlainPolicy())
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError):
            SSTable(path, PlainPolicy())

    def test_block_size_controls_block_count(self, tmp_path):
        entries = make_entries(60)
        small = write_sstable(tmp_path / "small.sst", entries, PlainPolicy(), block_bytes=256)
        large = write_sstable(tmp_path / "large.sst", entries, PlainPolicy(), block_bytes=64 * 1024)
        assert small.block_count > large.block_count
        assert large.block_count == 1


class TestCompressionEffect:
    def test_compressed_policies_use_less_space_than_plain(self, tmp_path):
        entries = [(key, value) for key, value in make_entries(80) if value is not None]
        plain_info = write_sstable(tmp_path / "plain.sst", entries, PlainPolicy(), block_bytes=4096)
        zstd_info = write_sstable(
            tmp_path / "zstd.sst", entries, BlockCompressionPolicy(ZstdLikeCodec()), block_bytes=4096
        )
        pbc = PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48, seed=5))
        pbc.train([value for _, value in entries])
        pbc_info = write_sstable(
            tmp_path / "pbc.sst", entries, RecordCompressionPolicy(pbc), block_bytes=4096
        )
        assert zstd_info.file_bytes < plain_info.file_bytes
        assert pbc_info.file_bytes < plain_info.file_bytes

    def test_record_policy_reads_back_identical_values(self, tmp_path):
        entries = [(key, value) for key, value in make_entries(50) if value is not None]
        pbc = PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48, seed=5))
        pbc.train([value for _, value in entries])
        policy = RecordCompressionPolicy(pbc)
        write_sstable(tmp_path / "pbc.sst", entries, policy)
        table = SSTable(tmp_path / "pbc.sst", policy)
        assert list(table.scan()) == entries
