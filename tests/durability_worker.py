"""Crash-injection worker for ``tests/test_durability.py``.

Runs as a subprocess that applies a **deterministic** workload (every op is a
pure function of the seed) against an LSM engine or a TierBase store, and
prints the op index to stdout — flushed — *after* each op returns.  The
parent SIGKILLs it at a random point; because the op stream is deterministic,
the parent can regenerate it from the seed and knows that

* every op whose index it read from the pipe had **returned** (the ack is
  written only after the op), and
* at most **one** further op can have completed without its ack reaching the
  pipe (the worker strictly alternates op → ack-write → ack-flush).

So if the parent drained ``m`` acks, the true completed-op count is ``m`` or
``m + 1`` — which turns "did the store lose an acknowledged write?" into an
exact state comparison instead of a heuristic.

This module is imported by the test (for the op generators and the pure
``apply_*`` state functions) and executed as a script by the subprocess:

    python durability_worker.py lsm <dir> <sync_mode> <seed>
    python durability_worker.py tierbase <dir> <seed>
    python durability_worker.py compaction <dir> <sync_mode> <seed>
    python durability_worker.py oplog <dir> <sync_mode> <seed>

The ``compaction`` mode is the adversarial flavour: background compaction
enabled (a merge can be mid-flight at any kill point), batched ``put_many``
writes (a torn batch must replay as a prefix), and scans parked across the
compactor's table swaps.

The ``oplog`` mode targets the LSN contract: every op is a mutation (put /
delete / put_many — no flushes, and the memtable is big enough never to
flush on its own), so the WAL holds the shard's *complete* LSN-stamped
history from 1.  The parent decodes that file after the kill and asserts the
replayed LSNs are a gap-free contiguous prefix, then feeds them through a
``SubscriberSink`` into a ``FollowerStore`` and demands byte-exact
convergence with the recovered primary.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

#: ops per run — effectively unbounded; the parent kills long before this.
MAX_OPS = 200_000

#: every Nth tierbase op publishes a TBS1 snapshot.
SAVE_EVERY = 25

#: tierbase op indices where the compressor retrains (a new model epoch).
RETRAIN_AT = frozenset({40, 120})


# ----------------------------------------------------------- deterministic ops


def lsm_ops(seed: int):
    """Infinite deterministic stream of LSM ops: put/delete/flush/compact."""
    rng = random.Random(seed)
    index = 0
    while True:
        roll = rng.random()
        key = f"k{rng.randrange(48):03d}"
        if roll < 0.72:
            filler = "x" * rng.randrange(4, 60)
            yield ("put", key, f"v{index}:{key}:{filler}")
        elif roll < 0.86:
            yield ("del", key)
        elif roll < 0.95:
            yield ("flush",)
        else:
            yield ("compact",)
        index += 1


def apply_lsm(ops) -> dict[str, str]:
    """Live key→value state after applying ``ops`` in order."""
    state: dict[str, str] = {}
    for op in ops:
        if op[0] == "put":
            state[op[1]] = op[2]
        elif op[0] == "del":
            state.pop(op[1], None)
    return state


def compaction_ops(seed: int):
    """Deterministic op stream for the background-compaction worker.

    Single puts, multi-record ``put_many`` batches, deletes, explicit
    flushes (to pile up L0 tables for the scheduler), and scans that park a
    reader across whatever merge is in flight.
    """
    rng = random.Random(seed)
    index = 0
    while True:
        roll = rng.random()
        if roll < 0.50:
            key = f"k{rng.randrange(64):03d}"
            filler = "x" * rng.randrange(4, 60)
            yield ("put", key, f"v{index}:{key}:{filler}")
        elif roll < 0.75:
            batch = []
            for offset in range(rng.randrange(2, 9)):
                key = f"k{rng.randrange(64):03d}"
                filler = "b" * rng.randrange(4, 40)
                batch.append((key, f"v{index}.{offset}:{key}:{filler}"))
            yield ("batch", batch)
        elif roll < 0.85:
            yield ("del", f"k{rng.randrange(64):03d}")
        elif roll < 0.95:
            yield ("flush",)
        else:
            yield ("scan",)
        index += 1


def apply_compaction(ops) -> dict[str, str]:
    """Live key→value state after applying ``ops`` in order.

    A ``batch`` op applies its records in order with last-write-wins, same
    as ``LSMEngine.put_many``; ``flush``/``scan`` do not change state.
    """
    state: dict[str, str] = {}
    for op in ops:
        if op[0] == "put":
            state[op[1]] = op[2]
        elif op[0] == "batch":
            for key, value in op[1]:
                state[key] = value
        elif op[0] == "del":
            state.pop(op[1], None)
    return state


def apply_partial_batch(state: dict[str, str], batch, cut: int) -> dict[str, str]:
    """State after the first ``cut`` records of a torn ``put_many`` batch."""
    partial = dict(state)
    for key, value in batch[:cut]:
        partial[key] = value
    return partial


def oplog_ops(seed: int):
    """Deterministic all-mutation stream: put / delete / put_many batches."""
    rng = random.Random(seed)
    index = 0
    while True:
        roll = rng.random()
        if roll < 0.60:
            key = f"k{rng.randrange(48):03d}"
            filler = "x" * rng.randrange(4, 48)
            yield ("put", key, f"v{index}:{key}:{filler}")
        elif roll < 0.82:
            batch = []
            for offset in range(rng.randrange(2, 7)):
                key = f"k{rng.randrange(48):03d}"
                filler = "b" * rng.randrange(4, 32)
                batch.append((key, f"v{index}.{offset}:{key}:{filler}"))
            yield ("batch", batch)
        else:
            yield ("del", f"k{rng.randrange(48):03d}")
        index += 1


def oplog_lsn_after(ops) -> int:
    """The LSN the shard reaches after ``ops`` (every record burns one LSN)."""
    lsn = 0
    for op in ops:
        if op[0] == "batch":
            lsn += len(op[1])
        else:
            lsn += 1
    return lsn


def tierbase_ops(seed: int):
    """Infinite deterministic stream of TierBase ops: set/del/save/retrain."""
    rng = random.Random(seed)
    index = 0
    while True:
        if index > 0 and index % SAVE_EVERY == 0:
            yield ("save",)
        elif index in RETRAIN_AT:
            yield ("retrain",)
        else:
            key = f"k{rng.randrange(32):03d}"
            if rng.random() < 0.85:
                filler = "y" * rng.randrange(4, 40)
                yield ("set", key, f"user={index} key={key} pad={filler}")
            else:
                yield ("del", key)
        index += 1


def apply_tierbase(ops) -> dict[str, str]:
    """Key→value state after applying ``ops`` (save/retrain don't mutate)."""
    state: dict[str, str] = {}
    for op in ops:
        if op[0] == "set":
            state[op[1]] = op[2]
        elif op[0] == "del":
            state.pop(op[1], None)
    return state


def train_sample(seed: int) -> list[str]:
    """Deterministic training sample matching the tierbase value shape."""
    rng = random.Random(seed ^ 0x5EED)
    return [
        f"user={index} key=k{rng.randrange(32):03d} pad=" + "y" * rng.randrange(4, 40)
        for index in range(64)
    ]


def retrain_sample(seed: int, index: int) -> list[str]:
    """Deterministic retraining sample for the retrain op at ``index``."""
    rng = random.Random((seed << 8) ^ index)
    return [
        f"user={n} key=k{rng.randrange(32):03d} pad=" + "z" * rng.randrange(4, 40)
        for n in range(48)
    ]


# -------------------------------------------------------------------- workers


def _ack(index: int) -> None:
    sys.stdout.write(f"{index}\n")
    sys.stdout.flush()


def run_lsm(directory: str, sync_mode: str, seed: int) -> None:
    from repro.lsm.engine import LSMEngine

    engine = LSMEngine(
        directory,
        memtable_bytes=1024,
        compaction_trigger=3,
        sync_mode=sync_mode,
    )
    for index, op in enumerate(lsm_ops(seed)):
        if index >= MAX_OPS:
            break
        if op[0] == "put":
            engine.put(op[1], op[2])
        elif op[0] == "del":
            engine.delete(op[1])
        elif op[0] == "flush":
            engine.flush()
        else:
            engine.compact()
        _ack(index)


def run_compaction(directory: str, sync_mode: str, seed: int) -> None:
    import itertools

    from repro.lsm.engine import LSMEngine

    engine = LSMEngine(
        directory,
        memtable_bytes=1024,
        compaction_trigger=2,
        sync_mode=sync_mode,
        background_compaction=True,
    )
    for index, op in enumerate(compaction_ops(seed)):
        if index >= MAX_OPS:
            break
        if op[0] == "put":
            engine.put(op[1], op[2])
        elif op[0] == "batch":
            engine.put_many(op[1])
        elif op[0] == "del":
            engine.delete(op[1])
        elif op[0] == "flush":
            engine.flush()
        else:
            # Park a reader partway through a scan while merges run.
            list(itertools.islice(engine.scan(), 8))
        _ack(index)


def run_oplog(directory: str, sync_mode: str, seed: int) -> None:
    from repro.lsm.engine import LSMEngine

    # Memtable far larger than the workload ever grows: the WAL is never
    # truncated, so it carries the complete LSN history for the parent.
    engine = LSMEngine(directory, memtable_bytes=1 << 26, sync_mode=sync_mode)
    for index, op in enumerate(oplog_ops(seed)):
        if index >= MAX_OPS:
            break
        if op[0] == "put":
            engine.put(op[1], op[2])
        elif op[0] == "batch":
            engine.put_many(op[1])
        else:
            engine.delete(op[1])
        _ack(index)


def run_tierbase(directory: str, seed: int) -> None:
    from repro.tierbase import TierBase, ZstdDictValueCompressor

    store = TierBase(compressor=ZstdDictValueCompressor())
    store.train(train_sample(seed))
    snapshot_path = Path(directory) / "snapshot.tbs"
    for index, op in enumerate(tierbase_ops(seed)):
        if index >= MAX_OPS:
            break
        if op[0] == "set":
            store.set(op[1], op[2])
        elif op[0] == "del":
            store.delete(op[1])
        elif op[0] == "save":
            store.save(snapshot_path)
        else:
            store.retrain(retrain_sample(seed, index))
        _ack(index)


def main(argv: list[str]) -> int:
    mode = argv[0]
    if mode == "lsm":
        run_lsm(argv[1], argv[2], int(argv[3]))
    elif mode == "compaction":
        run_compaction(argv[1], argv[2], int(argv[3]))
    elif mode == "oplog":
        run_oplog(argv[1], argv[2], int(argv[3]))
    elif mode == "tierbase":
        run_tierbase(argv[1], int(argv[2]))
    else:
        raise SystemExit(f"unknown worker mode {mode!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
