"""Property suite for `LSMEngine.scan`: the engine vs a sorted-dict model.

Hypothesis drives random interleavings of put/delete/flush/compact and then
compares `engine.scan(start, end)` against the equivalent slice of a
`sortedcontainers.SortedDict` model.  The properties pinned:

* a scan returns exactly the model's live entries in the range, in key
  order — across memtable-only, mixed (memtable + SSTables), and
  all-on-disk states;
* tombstones never resurface: a deleted key is absent even when an older
  SSTable below still holds a value for it;
* `limit` returns exactly the first N live entries (and never scans past
  them);
* reversed or empty bounds yield an empty scan.
"""

from hypothesis import given, settings, strategies as st
from sortedcontainers import SortedDict

from repro.lsm import LSMEngine

# Small memtable so flushes create real multi-SSTable layouts quickly.
ENGINE_KWARGS = {"memtable_bytes": 512, "block_bytes": 128, "sync_mode": "none"}

KEYS = st.text(alphabet="abcdxyz", min_size=1, max_size=4)
VALUES = st.text(alphabet="ghijkl0189", min_size=0, max_size=12)

#: One mutation step: put / delete / flush / compact.
STEPS = st.one_of(
    st.tuples(st.just("put"), KEYS, VALUES),
    st.tuples(st.just("delete"), KEYS),
    st.tuples(st.just("flush")),
    st.tuples(st.just("compact")),
)

SCAN_SETTINGS = settings(max_examples=60, deadline=None)


def apply_steps(engine: LSMEngine, model: SortedDict, steps) -> None:
    for step in steps:
        if step[0] == "put":
            engine.put(step[1], step[2])
            model[step[1]] = step[2]
        elif step[0] == "delete":
            engine.delete(step[1])
            model.pop(step[1], None)
        elif step[0] == "flush":
            engine.flush()
        else:
            engine.compact()


def model_slice(model: SortedDict, start, end, limit=None):
    items = [
        (key, value)
        for key, value in model.items()
        if (start is None or key >= start) and (end is None or key < end)
    ]
    return items if limit is None else items[:limit]


BOUND = st.one_of(st.none(), KEYS)


class TestScanMatchesModel:
    @SCAN_SETTINGS
    @given(steps=st.lists(STEPS, max_size=40), start=BOUND, end=BOUND)
    def test_scan_equals_model_slice(self, tmp_path_factory, steps, start, end):
        tmp_path = tmp_path_factory.mktemp("lsm-scan")
        model = SortedDict()
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            apply_steps(engine, model, steps)
            assert list(engine.scan(start, end)) == model_slice(model, start, end)

    @SCAN_SETTINGS
    @given(
        steps=st.lists(STEPS, max_size=40),
        start=BOUND,
        end=BOUND,
        limit=st.integers(min_value=0, max_value=8),
    )
    def test_scan_limit_is_a_prefix_of_the_slice(
        self, tmp_path_factory, steps, start, end, limit
    ):
        tmp_path = tmp_path_factory.mktemp("lsm-scan-limit")
        model = SortedDict()
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            apply_steps(engine, model, steps)
            assert list(engine.scan(start, end, limit=limit)) == model_slice(
                model, start, end, limit
            )

    @SCAN_SETTINGS
    @given(steps=st.lists(STEPS, max_size=30))
    def test_all_on_disk_state_scans_like_the_model(self, tmp_path_factory, steps):
        tmp_path = tmp_path_factory.mktemp("lsm-scan-disk")
        model = SortedDict()
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            apply_steps(engine, model, steps)
            engine.flush()  # memtable emptied: the scan reads only SSTables
            assert list(engine.scan()) == model_slice(model, None, None)
            engine.compact()  # single merged SSTable, tombstones dropped
            assert list(engine.scan()) == model_slice(model, None, None)


class TestScanEdgeCases:
    def test_memtable_only_scan(self, tmp_path):
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            for index in (3, 1, 2):
                engine.put(f"k{index}", f"v{index}")
            assert list(engine.scan()) == [("k1", "v1"), ("k2", "v2"), ("k3", "v3")]

    def test_tombstone_in_memtable_hides_flushed_value(self, tmp_path):
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            engine.put("key", "old")
            engine.flush()
            engine.delete("key")
            assert list(engine.scan()) == []
            assert list(engine.scan("a", "z")) == []

    def test_newer_sstable_wins_over_older(self, tmp_path):
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            engine.put("key", "v1")
            engine.flush()
            engine.put("key", "v2")
            engine.flush()
            assert list(engine.scan()) == [("key", "v2")]

    def test_reversed_bounds_scan_is_empty(self, tmp_path):
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            engine.put("a", "1")
            engine.put("b", "2")
            assert list(engine.scan("z", "a")) == []
            assert list(engine.scan("b", "b")) == []

    def test_zero_and_negative_limit_scan_is_empty(self, tmp_path):
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            engine.put("a", "1")
            assert list(engine.scan(limit=0)) == []
            assert list(engine.scan(limit=-3)) == []

    def test_limit_short_circuits_before_later_keys(self, tmp_path):
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            for index in range(20):
                engine.put(f"k{index:02d}", str(index))
            engine.flush()
            assert list(engine.scan(limit=3)) == [
                ("k00", "0"), ("k01", "1"), ("k02", "2"),
            ]

    def test_scan_survives_flush_between_calls(self, tmp_path):
        with LSMEngine(tmp_path, **ENGINE_KWARGS) as engine:
            engine.put("a", "1")
            before = list(engine.scan())
            engine.flush()
            assert list(engine.scan()) == before
