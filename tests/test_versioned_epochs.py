"""Cross-layer tests for versioned model epochs (:mod:`repro.codecs.model`).

The acceptance property of the codecs refactor: a payload compressed at epoch
N decompresses correctly after ≥2 subsequent retrains — in TierBase, in a cold
LSM SSTable, and through the service's compressed LRU cache — and the one
remaining stale case (a pruned epoch) fails with the typed
:class:`~repro.exceptions.ModelEpochError` instead of garbage.
"""

import pytest

from repro.blockstore import BlockStore
from repro.codecs import (
    ModelStore,
    VersionedCodec,
    codec_by_name,
    describe_payload,
    payload_epoch,
    split_payload,
    stamp_payload,
    versioned_codec,
)
from repro.core.extraction import ExtractionConfig
from repro.datasets import load_dataset
from repro.exceptions import CodecError, ModelEpochError
from repro.lsm.sstable import RecordCompressionPolicy
from repro.service import KVService, ServiceConfig
from repro.service.backends import LSMShard, make_value_compressor
from repro.tierbase import PBCValueCompressor, TierBase

from tests.conftest import make_template_records


@pytest.fixture
def values():
    return load_dataset("kv1", count=160)


def drifted_values(count=96):
    return [f"DRIFT|{index:06d}|totally=different&shape={index * 13}" for index in range(count)]


def pbc_compressor():
    return PBCValueCompressor(config=ExtractionConfig(max_patterns=6, sample_size=48))


# ---------------------------------------------------------------- model store


class TestModelStore:
    def test_epochs_are_monotonic_and_retained(self):
        store = ModelStore()
        assert store.current_epoch == 0
        first = store.install(b"model-1")
        second = store.install(b"model-2")
        assert (first.epoch, second.epoch) == (1, 2)
        assert store.get(1).payload == b"model-1"
        assert store.current is second

    def test_missing_epoch_raises_typed_error(self):
        store = ModelStore()
        with pytest.raises(ModelEpochError):
            store.get(5)

    def test_release_prunes_only_unreferenced_non_current_epochs(self):
        store = ModelStore()
        store.install(b"m1")
        store.acquire(1)
        store.acquire(1)
        store.install(b"m2")
        store.release(1)
        assert store.get(1).payload == b"m1"  # one live payload left
        store.release(1)
        with pytest.raises(ModelEpochError):
            store.get(1)
        # The current epoch is never pruned, referenced or not.
        store.acquire(2)
        store.release(2)
        assert store.get(2).payload == b"m2"

    def test_release_without_recorded_reference_is_a_noop(self):
        """Restored stores drop refcounts on purpose; an untracked release
        must not prune a model that live payloads may still need."""
        store = ModelStore()
        store.install(b"m1")
        store.acquire(1)
        store.acquire(1)
        restored = ModelStore.from_bytes(store.to_bytes())
        restored.install(b"m2")
        restored.release(1)
        assert restored.get(1).payload == b"m1"

    def test_epoch_drained_while_current_is_pruned_once_superseded(self):
        """Refs hitting zero while the epoch is still current must not leak
        the model forever: install() prunes it the moment it is superseded."""
        store = ModelStore()
        store.install(b"m1")
        store.acquire(1)
        store.release(1)  # drained while current: kept alive by currency only
        assert store.get(1).payload == b"m1"
        store.install(b"m2")
        with pytest.raises(ModelEpochError):
            store.get(1)
        # Untracked epochs (LSM: never acquired/released) are still retained.
        store.install(b"m3")
        assert store.get(2).payload == b"m2"

    def test_payload_header_roundtrip(self):
        data = stamp_payload(5, 300, b"body")
        assert split_payload(data) == (5, 300, b"body")
        assert payload_epoch(data) == 300
        with pytest.raises(CodecError):
            split_payload(b"")

    def test_serialisation_roundtrip_retains_every_epoch(self):
        store = ModelStore()
        store.install(b"m1", trained_records=10)
        store.install(b"m2", trained_records=20)
        restored = ModelStore.from_bytes(store.to_bytes())
        assert restored.current_epoch == 2
        assert restored.epochs() == [0, 1, 2]
        assert restored.get(1).payload == b"m1"
        assert restored.get(2).trained_records == 20
        # Epoch allocation continues monotonically after a restore.
        assert restored.install(b"m3").epoch == 3
        with pytest.raises(CodecError):
            ModelStore.from_bytes(store.to_bytes()[:-2])


class TestVersionedCodec:
    def test_record_payloads_survive_two_retrains(self, values):
        codec = versioned_codec("pbc_f")
        codec.train(values[:64])
        payloads = [codec.compress_record(value) for value in values[:40]]
        codec.train(drifted_values())
        codec.train(values[64:128])
        assert codec.current_epoch == 3
        for payload, value in zip(payloads, values[:40]):
            assert payload_epoch(payload) == 1
            assert codec.decompress_record(payload) == value

    def test_describe_payload_names_the_codec(self, values):
        codec = versioned_codec("zstd")
        codec.train(values[:32])
        name, epoch, body_bytes = describe_payload(codec.compress_record(values[0]))
        assert (name, epoch) == ("zstd", 1)
        assert body_bytes > 0

    def test_wrong_codec_payload_rejected(self, values):
        zstd = versioned_codec("zstd")
        fsst = VersionedCodec(codec_by_name("fsst"))
        zstd.train(values[:32])
        with pytest.raises(CodecError):
            fsst.decompress_record(zstd.compress_record(values[0]))

    def test_restoring_models_drops_stale_bound_coders(self, values):
        """Epoch ids are unique per store: swapping in a restored store must
        not let a coder bound to the OLD epoch 1 decode NEW epoch-1 payloads
        (which would silently return garbage, not raise)."""
        writer = pbc_compressor()
        writer.train(values[:48])
        payload = writer.compress(values[0])
        dump = writer.dump_models()

        reader = pbc_compressor()
        reader.train(drifted_values())          # a different epoch-1 model…
        reader.compress(drifted_values()[0])    # …with its coder cached
        reader.load_models(dump)
        assert reader.decompress(payload) == values[0]

    def test_byte_blocks_survive_retrain(self, values):
        codec = versioned_codec("zstd")
        codec.train(values[:32])
        block = codec.compress(b"opaque block payload " * 20)
        codec.train(drifted_values())
        assert codec.decompress(block) == b"opaque block payload " * 20


# ------------------------------------------------------------------- tierbase


class TestTierBaseEpochs:
    def test_retrain_does_not_rewrite_stored_payloads(self, values):
        store = TierBase(compressor=pbc_compressor())
        store.train(values[:48])
        for index, value in enumerate(values[:60]):
            store.set(f"k{index}", value)
        before = {key: store.get_compressed(key) for key in store.keys()}
        store.retrain(drifted_values())
        store.retrain(values[:96])
        assert store.compressor.current_epoch == 3
        # Payload bytes are identical — retrain touched nothing.
        assert {key: store.get_compressed(key) for key in store.keys()} == before
        for index, value in enumerate(values[:60]):
            assert store.get(f"k{index}") == value

    def test_overwrites_release_old_epochs(self, values):
        store = TierBase(compressor=pbc_compressor())
        store.train(values[:48])
        store.set("k", values[0])
        stale = store.get_compressed("k")
        store.retrain(drifted_values())
        # Overwriting the only epoch-1 payload prunes the epoch-1 model…
        store.set("k", values[1])
        assert store.get("k") == values[1]
        # …so the stale payload now fails with the typed error.
        with pytest.raises(ModelEpochError):
            store.compressor.decompress(stale)

    def test_reservoir_retrain_uses_recent_values(self, values):
        store = TierBase(compressor=pbc_compressor(), train_size=64)
        store.train(values[:48])
        for index, value in enumerate(values):
            store.set(f"k{index}", value)
        store.retrain()  # no sample: uses the lifecycle reservoir
        assert store.monitor.retraining_events == 1
        assert store.compressor.current_epoch == 2


# ------------------------------------------------------------------------ lsm


class TestLSMEpochs:
    def test_cold_sstable_readable_after_two_retrains(self, tmp_path, values):
        shard = LSMShard(
            tmp_path / "shard",
            pbc_compressor(),
            memtable_bytes=2048,  # small: force SSTable flushes
        )
        try:
            shard.train(values[:48])
            for index, value in enumerate(values[:80]):
                shard.set(f"k{index:04d}", value)
            stats = shard.engine.stats()
            assert stats.sstable_count >= 1  # data really is cold on disk
            shard.retrain(drifted_values())
            shard.retrain(values[48:96])
            assert shard.compressor.current_epoch == 3
            for index, value in enumerate(values[:80]):
                assert shard.get(f"k{index:04d}") == value
        finally:
            shard.close()

    def test_models_persist_across_process_restarts(self, tmp_path, values):
        """A fresh process reopening the shard directory restores the model
        store from models.bin and decodes cold SSTables written before it
        existed — the seed silently corrupted them with the new dictionary."""
        shard = LSMShard(tmp_path / "shard", pbc_compressor(), memtable_bytes=2048)
        shard.train(values[:48])
        for index, value in enumerate(values[:80]):
            shard.set(f"k{index:04d}", value)
        shard.close()
        assert (tmp_path / "shard" / "models.bin").exists()

        reopened = LSMShard(tmp_path / "shard", pbc_compressor(), memtable_bytes=2048)
        try:
            assert reopened.compressor.current_epoch == 1
            assert reopened.get("k0005") == values[5]
            reopened.retrain(drifted_values())  # epoch 2, persisted too
            assert reopened.get("k0005") == values[5]
        finally:
            reopened.close()

        # Reopening with a *different* compressor is a typed mismatch, not
        # garbage decoding: models.bin leads with the writing codec's magic.
        with pytest.raises(CodecError):
            LSMShard(
                tmp_path / "shard", make_value_compressor("zstd"), memtable_bytes=2048
            )
        # …including an un-versioned compressor, which has no model store to
        # validate against and would otherwise skip the check entirely.
        with pytest.raises(CodecError):
            LSMShard(
                tmp_path / "shard", make_value_compressor("none"), memtable_bytes=2048
            )

    def test_block_header_carries_the_write_epoch(self, values):
        compressor = pbc_compressor()
        compressor.train(values[:48])
        policy = RecordCompressionPolicy(compressor)
        block = policy.encode_block([("a", values[0]), ("b", values[1])])
        assert policy.block_epoch(block) == 1
        compressor.train(drifted_values())
        newer = policy.encode_block([("c", values[2])])
        assert policy.block_epoch(newer) == 2
        # Both blocks decode with the epoch stamped in their headers.
        assert list(policy.iter_block(block)) == [("a", values[0]), ("b", values[1])]
        assert list(policy.iter_block(newer)) == [("c", values[2])]


# ------------------------------------------------------------------ blockstore


class TestBlockStoreEpochs:
    def test_extended_blocks_span_epochs(self, values):
        codec = versioned_codec("zstd")
        codec.train(values[:32])
        store = BlockStore(codec=codec, block_size=8)
        store.load(values[:20])
        codec.train(drifted_values())
        store.extend(values[20:40])
        assert store.block_epochs[0] == 1 and store.block_epochs[-1] == 2
        for index in range(40):
            assert store.get(index) == values[index]


# --------------------------------------------------------------------- service


class TestServiceEpochs:
    def test_cached_payload_survives_two_retrains(self, values):
        config = ServiceConfig(
            shard_count=2, compressor="pbc_f", cache_entries=64, train_size=64,
            auto_retrain=False,
        )
        with KVService(config) as service:
            service.train(values[:64])
            for index, value in enumerate(values[:40]):
                service.set(f"k:{index}", value)
            for index in range(40):
                service.get(f"k:{index}")  # fill the cache with epoch-1 payloads
            for shard in service._shards:
                for sample in (drifted_values(), values[64:128]):
                    shard.executor.submit(shard.backend.retrain, sample).result()
            # The cache was NOT cleared by the retrains…
            assert len(service.cache) == 40
            before_hits = service.cache.stats().hits
            for index, value in enumerate(values[:40]):
                assert service.get(f"k:{index}") == value
            # …and the reads above were genuine cache hits across epochs.
            assert service.cache.stats().hits >= before_hits + 40

    def test_pruned_epoch_is_a_typed_miss_not_a_silent_fallback(self, values):
        config = ServiceConfig(
            shard_count=1, compressor="pbc_f", cache_entries=64, train_size=64,
            auto_retrain=False,
        )
        with KVService(config) as service:
            service.train(values[:64])
            service.set("k", values[0])
            stale = service._shards[0].backend.get_compressed("k")
            shard = service._shards[0]
            shard.executor.submit(shard.backend.retrain, drifted_values()).result()
            service.set("k", values[1])  # releases + prunes the epoch-1 model
            with pytest.raises(ModelEpochError):
                shard.backend.decompress(stale)
            # A stale cache entry resolves to a re-fetch, not an error or a
            # silently-wrong value.
            service.cache.put("k", stale)
            assert service.get("k") == values[1]
            assert service.cache.get("k") != stale

    def test_lsm_service_survives_retrains_cold(self, tmp_path, values):
        config = ServiceConfig(
            shard_count=2, backend="lsm", compressor="pbc", directory=tmp_path,
            cache_entries=32, train_size=64, auto_retrain=False,
        )
        with KVService(config) as service:
            service.train(values[:64])
            service.mset([(f"x:{index}", value) for index, value in enumerate(values[:60])])
            for shard in service._shards:
                for sample in (drifted_values(), values[64:128]):
                    shard.executor.submit(shard.backend.retrain, sample).result()
            results = service.mget([f"x:{index}" for index in range(60)])
            assert results == values[:60]

    def test_fsst_compressor_available_from_registry(self, values):
        compressor = make_value_compressor("fsst")
        compressor.train(values[:48])
        payload = compressor.compress(values[0])
        compressor.train(drifted_values())
        assert compressor.decompress(payload) == values[0]


# ----------------------------------------------------- drift-triggered retrain


def test_background_retrain_keeps_old_epoch_payloads_live():
    """End-to-end: injected drift triggers a background retrain and values
    written at every epoch keep round-tripping (no cache clear, no rewrite)."""
    trained = make_template_records(120, seed=3)
    drifted = [
        f"DRIFT|{index:06d}|completely=different&layout={index * 7}" for index in range(400)
    ]
    with KVService(
        ServiceConfig(shard_count=2, compressor="pbc", cache_entries=128, train_size=64)
    ) as service:
        service.train(trained)
        service.mset([(f"t:{index}", value) for index, value in enumerate(trained)])
        service.mset([(f"d:{index}", value) for index, value in enumerate(drifted)])
        snapshot = service.snapshot()
        assert snapshot.retrain_events >= 1
        assert service.mget([f"t:{index}" for index in range(len(trained))]) == trained
        assert service.mget([f"d:{index}" for index in range(len(drifted))]) == drifted
