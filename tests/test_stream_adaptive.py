"""Tests for adaptive codec selection and drift detection (repro.stream.adaptive)."""

import random

import pytest

from repro.exceptions import StreamError
from repro.stream.adaptive import (
    AdaptiveCodecSelector,
    AdaptiveConfig,
    estimate_pbc_ratio,
)
from repro.core.compressor import PBCCompressor
from repro.core.extraction import ExtractionConfig


def template_a(index: int, rng: random.Random) -> str:
    return f"GET /api/v1/users/{index} 200 {rng.randint(1, 900)}us"

def template_b(index: int, rng: random.Random) -> str:
    return f"oom-killer invoked by pid {index} rss={rng.randint(1, 1 << 20)}kB anon-rss={rng.randint(1, 512)}kB"


def frames_of(template, count, size, seed=5):
    rng = random.Random(seed)
    return [
        [template(frame * size + i, rng) for i in range(size)]
        for frame in range(count)
    ]


def make_selector(**overrides) -> AdaptiveCodecSelector:
    defaults = dict(
        candidates=("pbc", "gzip", "raw"),
        sample_size=24,
        train_size=64,
        drift_window=2,
        drift_threshold=0.5,
    )
    defaults.update(overrides)
    return AdaptiveCodecSelector(AdaptiveConfig(**defaults))


class TestSelection:
    def test_raw_never_wins_on_compressible_data(self):
        selector = make_selector()
        for records in frames_of(template_a, 3, 120):
            plan = selector.plan_frame(records)
            assert plan.codec_name != "raw"

    def test_raw_wins_on_incompressible_data(self):
        rng = random.Random(9)
        frames = [
            ["".join(chr(rng.randint(33, 0x2FFF)) for _ in range(40)) for _ in range(60)]
            for _ in range(2)
        ]
        selector = make_selector(candidates=("pbc", "raw"))
        # The second frame is scored with dictionaries trained on the first;
        # random text defeats the patterns, so storing raw must win.
        selector.plan_frame(frames[0])
        assert selector.plan_frame(frames[1]).codec_name == "raw"

    def test_scores_cover_every_candidate(self):
        selector = make_selector()
        plan = selector.plan_frame(frames_of(template_a, 1, 100)[0])
        assert {score.name for score in plan.scores} == {"pbc", "gzip", "raw"}
        for score in plan.scores:
            assert score.measured_ratio > 0
        pbc_score = next(s for s in plan.scores if s.name == "pbc")
        assert pbc_score.estimated_ratio is not None

    def test_winner_has_minimal_score(self):
        selector = make_selector()
        plan = selector.plan_frame(frames_of(template_a, 1, 100)[0])
        assert plan.codec_name == min(plan.scores, key=lambda s: s.score).name

    def test_empty_frame_rejected(self):
        with pytest.raises(StreamError):
            make_selector().plan_frame([])

    def test_needs_candidates(self):
        with pytest.raises(StreamError):
            AdaptiveCodecSelector(AdaptiveConfig(candidates=()))


class TestDriftDetection:
    def test_no_drift_on_stable_stream(self):
        selector = make_selector()
        for records in frames_of(template_a, 5, 100):
            selector.plan_frame(records)
        assert selector.retrain_count == 0
        assert selector.windowed_outlier_rate < 0.5

    def test_drift_triggers_retrain(self):
        selector = make_selector()
        for records in frames_of(template_a, 3, 100):
            plan = selector.plan_frame(records)
            assert not plan.retrained
        for records in frames_of(template_b, 3, 100):
            selector.plan_frame(records)
        assert selector.retrain_count >= 1

    def test_retrain_replaces_dictionaries(self):
        selector = make_selector()
        for records in frames_of(template_a, 3, 100):
            selector.plan_frame(records)
        before = dict(selector.state.dictionaries)
        for records in frames_of(template_b, 3, 100):
            selector.plan_frame(records)
        assert selector.state.dictionaries["pbc"] != before["pbc"]

    def test_outlier_rate_recovers_after_retrain(self):
        selector = make_selector()
        for records in frames_of(template_a, 3, 100):
            selector.plan_frame(records)
        rates = [selector.plan_frame(records).outlier_rate for records in frames_of(template_b, 5, 100)]
        # Before retraining the B-records are mostly outliers; after it they match again.
        assert rates[0] > 0.5
        assert min(rates[1:]) < rates[0]


class TestEncodingLengthEstimate:
    def test_estimate_matches_reality_in_shape(self):
        rng = random.Random(2)
        records = [template_a(i, rng) for i in range(200)]
        compressor = PBCCompressor(config=ExtractionConfig(max_patterns=8, sample_size=64))
        compressor.train(records[:96])
        estimated_ratio, outlier_rate = estimate_pbc_ratio(compressor.dictionary, records[96:])
        measured = compressor.measure(records[96:])
        # The Definition-2 estimate prices residuals with optimal encoders; it
        # must land in the same regime as the real compressor (both well below
        # raw size, within a 2x band of each other).
        assert 0 < estimated_ratio < 0.8
        assert estimated_ratio < measured.ratio * 2
        assert measured.ratio < estimated_ratio * 2 + 0.1
        assert outlier_rate == measured.outlier_rate

    def test_estimate_on_unmatched_records(self):
        rng = random.Random(2)
        compressor = PBCCompressor(config=ExtractionConfig(max_patterns=4, sample_size=32))
        compressor.train([template_a(i, rng) for i in range(64)])
        ratio, outlier_rate = estimate_pbc_ratio(
            compressor.dictionary, [template_b(i, rng) for i in range(40)]
        )
        assert outlier_rate > 0.5
        assert ratio > 0.9  # outliers cost raw bytes plus a marker
