"""Tests for the LSN-stamped operation log (``repro.oplog``).

Covers the shared record codec (round trip, torn tail, CRC corruption,
legacy synthesis, LSN contiguity), the per-shard sequencer, the bounded
subscriber ring (lag accounting, backpressure, typed overrun), the
``FollowerStore`` convergence contract — including a Hypothesis property
interleaving put/delete/put_many/retrain against a live TierBase — and the
service-level read-your-writes surface (``wait_for_lsn``) on both backends.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import OplogError, ServiceError, SubscriberLagError
from repro.lsm.engine import LSMEngine
from repro.oplog import (
    OP_CHECKPOINT,
    OP_DELETE,
    OP_PUT,
    DiskSink,
    FollowerStore,
    OperationLog,
    OpRecord,
    Sequencer,
    SubscriberSink,
    append_record,
    encode_legacy_record,
    encode_record,
    encode_records,
    iter_records,
)
from repro.service import KVService, ServiceConfig
from repro.tierbase import TierBase
from repro.service import make_value_compressor


def _records(count: int, start: int = 1) -> list[OpRecord]:
    return [
        OpRecord(lsn=start + index, op=OP_PUT, key=f"k{start + index}", value=b"v")
        for index in range(count)
    ]


# ----------------------------------------------------------------- the codec


class TestRecordCodec:
    def test_roundtrip_preserves_every_field(self):
        original = [
            OpRecord(lsn=1, op=OP_PUT, key="alpha", value=b"\x00\xffbytes", epoch=3),
            OpRecord(lsn=2, op=OP_DELETE, key="beta"),
            OpRecord(lsn=7, op=OP_CHECKPOINT, key=""),
            OpRecord(lsn=8, op=OP_PUT, key="élé", value="café".encode(), epoch=0),
        ]
        decoded = list(iter_records(encode_records(original)))
        assert decoded == original

    def test_empty_and_torn_tail(self):
        assert list(iter_records(b"")) == []
        data = encode_records(_records(5))
        for cut in range(1, 12):
            prefix = list(iter_records(data[: len(data) - cut]))
            assert [record.lsn for record in prefix] == list(range(1, len(prefix) + 1))
            assert len(prefix) < 5

    def test_crc_corruption_truncates(self):
        data = bytearray(encode_records(_records(3)))
        # Flip one bit inside the second record's body.
        second_start = len(encode_record(_records(1)[0]))
        data[second_start + 6] ^= 0x40
        decoded = list(iter_records(bytes(data)))
        assert [record.lsn for record in decoded] == [1]

    def test_lsn_gap_stops_replay(self):
        data = encode_records(
            [
                OpRecord(lsn=1, op=OP_PUT, key="a", value=b"1"),
                OpRecord(lsn=3, op=OP_PUT, key="b", value=b"2"),  # gap: no lsn 2
            ]
        )
        assert [record.lsn for record in iter_records(data)] == [1]

    def test_start_lsn_enforces_the_expected_prefix(self):
        data = encode_records(_records(3, start=5))
        assert list(iter_records(data, start_lsn=0)) == []
        assert [record.lsn for record in iter_records(data, start_lsn=4)] == [5, 6, 7]

    def test_checkpoint_may_jump_forward_never_backward(self):
        forward = encode_records(
            [
                OpRecord(lsn=9, op=OP_CHECKPOINT, key=""),
                OpRecord(lsn=10, op=OP_PUT, key="a", value=b"1"),
            ]
        )
        assert [record.lsn for record in iter_records(forward)] == [9, 10]
        backward = encode_records(_records(3)) + encode_record(
            OpRecord(lsn=1, op=OP_CHECKPOINT, key="")
        )
        assert [record.lsn for record in iter_records(backward)] == [1, 2, 3]

    def test_legacy_records_synthesise_contiguous_lsns(self):
        data = (
            encode_legacy_record(OP_PUT, "a", "1")
            + encode_legacy_record(OP_DELETE, "a", "")
            + encode_legacy_record(OP_PUT, "b", "2")
        )
        decoded = list(iter_records(data, start_lsn=10))
        assert [(record.lsn, record.op, record.key) for record in decoded] == [
            (11, OP_PUT, "a"),
            (12, OP_DELETE, "a"),
            (13, OP_PUT, "b"),
        ]

    def test_mixed_legacy_and_stamped_records_interleave(self):
        data = (
            encode_legacy_record(OP_PUT, "old", "1")
            + encode_record(OpRecord(lsn=2, op=OP_PUT, key="new", value=b"2", epoch=1))
            + encode_legacy_record(OP_DELETE, "old", "")
        )
        decoded = list(iter_records(data))
        assert [(record.lsn, record.key, record.epoch) for record in decoded] == [
            (1, "old", 0),
            (2, "new", 1),
            (3, "old", 0),
        ]

    def test_append_record_matches_encode_record(self):
        record = OpRecord(lsn=42, op=OP_PUT, key="k", value=b"payload", epoch=2)
        buffer = bytearray(b"prefix")
        append_record(buffer, record)
        assert bytes(buffer) == b"prefix" + encode_record(record)


# -------------------------------------------------------------- the sequencer


class TestSequencer:
    def test_monotone_and_block_allocation(self):
        sequencer = Sequencer()
        assert sequencer.last == 0
        assert [sequencer.next() for _ in range(3)] == [1, 2, 3]
        block = sequencer.next_block(4)
        assert list(block) == [4, 5, 6, 7]
        assert sequencer.last == 7

    def test_advance_to_never_rewinds(self):
        sequencer = Sequencer()
        sequencer.advance_to(10)
        sequencer.advance_to(4)
        assert sequencer.last == 10
        assert sequencer.next() == 11


class TestOperationLog:
    def test_append_assigns_contiguous_lsns_across_sinks(self):
        sink = SubscriberSink(capacity=64)
        log = OperationLog(sinks=[sink])
        log.append(OP_PUT, "a", b"1")
        log.append_many([(OP_PUT, "b", b"2", 0), (OP_DELETE, "a", b"", 0)])
        subscription = sink.subscribe()
        assert [record.lsn for record in subscription.poll()] == [1, 2, 3]
        assert log.last_lsn == 3

    def test_concurrent_appends_stay_gap_free(self):
        sink = SubscriberSink(capacity=4096)
        log = OperationLog(sinks=[sink])

        def writer(tag: str) -> None:
            for index in range(200):
                log.append(OP_PUT, f"{tag}:{index}", b"x")

        threads = [threading.Thread(target=writer, args=(str(n),)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = sink.subscribe().poll()
        assert [record.lsn for record in records] == list(range(1, 801))


# -------------------------------------------------------- the subscriber ring


class TestSubscriberSink:
    def test_poll_sees_appends_and_tracks_lag(self):
        sink = SubscriberSink(capacity=16)
        subscription = sink.subscribe()
        sink.append(_records(3))
        assert subscription.lag == 3 == sink.max_lag()
        assert [record.lsn for record in subscription.poll()] == [1, 2, 3]
        assert subscription.lag == 0 == sink.max_lag()
        assert subscription.poll() == []

    def test_poll_timeout_blocks_until_append(self):
        sink = SubscriberSink(capacity=16)
        subscription = sink.subscribe()
        received: list[int] = []

        def reader() -> None:
            received.extend(r.lsn for r in subscription.poll(timeout=5.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        sink.append(_records(2))
        thread.join(timeout=5.0)
        assert received == [1, 2]

    def test_overrun_raises_typed_error_then_resyncs(self):
        sink = SubscriberSink(capacity=4)
        subscription = sink.subscribe()
        sink.append(_records(10))
        with pytest.raises(SubscriberLagError) as excinfo:
            subscription.poll()
        assert excinfo.value.missed == 6
        assert sink.overrun_records == 6
        # The cursor resynchronised to the oldest retained record.
        assert [record.lsn for record in subscription.poll()] == [7, 8, 9, 10]

    def test_backpressure_waits_for_slow_subscriber(self):
        sink = SubscriberSink(capacity=4, block_seconds=5.0)
        subscription = sink.subscribe()
        sink.append(_records(4))

        def drain() -> None:
            time.sleep(0.05)
            subscription.poll(max_records=4)

        thread = threading.Thread(target=drain)
        thread.start()
        # Would overrun without backpressure; the writer waits for the drain.
        sink.append(_records(4, start=5))
        thread.join(timeout=5.0)
        assert sink.overrun_records == 0
        assert [record.lsn for record in subscription.poll()] == [5, 6, 7, 8]

    def test_no_subscribers_means_no_overrun_accounting(self):
        sink = SubscriberSink(capacity=4)
        sink.append(_records(12))
        assert sink.overrun_records == 0
        assert len(sink) == 4

    def test_tail_subscription_skips_history(self):
        sink = SubscriberSink(capacity=16)
        sink.append(_records(3))
        subscription = sink.subscribe(from_start=False)
        assert subscription.poll() == []
        sink.append(_records(2, start=4))
        assert [record.lsn for record in subscription.poll()] == [4, 5]

    def test_closed_sink_rejects_appends_wakes_pollers(self):
        sink = SubscriberSink(capacity=16)
        subscription = sink.subscribe()
        sink.close()
        with pytest.raises(OplogError):
            sink.append(_records(1))
        assert subscription.poll(timeout=5.0) == []


# ------------------------------------------------------------------ disk sink


class TestDiskSink:
    def test_append_replay_roundtrip(self, tmp_path):
        sink = DiskSink(tmp_path / "ops.log", sync_mode="flush")
        sink.append(_records(5))
        sink.close()
        reopened = DiskSink(tmp_path / "ops.log", sync_mode="flush")
        assert [record.lsn for record in reopened.replay()] == [1, 2, 3, 4, 5]
        reopened.close()

    def test_reset_writes_checkpoint_that_carries_the_lsn(self, tmp_path):
        sink = DiskSink(tmp_path / "ops.log", sync_mode="flush")
        sink.append(_records(5))
        sink.reset(checkpoint_lsn=5)
        sink.append(_records(2, start=6))
        replayed = list(sink.replay())
        assert [(record.lsn, record.op) for record in replayed] == [
            (5, OP_CHECKPOINT),
            (6, OP_PUT),
            (7, OP_PUT),
        ]
        sink.close()


# ------------------------------------------------------------ follower store


class TestFollowerStore:
    def test_apply_is_idempotent(self):
        follower = FollowerStore()
        records = _records(3)
        assert follower.apply_many(records) == 3
        assert follower.apply_many(records) == 0
        assert follower.duplicates == 3
        assert follower.last_applied == 3

    def test_catch_up_converges_with_tierbase_primary(self):
        store = TierBase(compressor=make_value_compressor("pbc_f"))
        store.train([f"value-{index:04d}" for index in range(64)])
        tap = SubscriberSink(capacity=4096)
        store.oplog.attach(tap)
        subscription = tap.subscribe()
        follower = FollowerStore()

        for index in range(100):
            store.set(f"key:{index % 25}", f"value-{index:04d}")
            if index % 7 == 0:
                store.delete(f"key:{index % 25}")
        follower.catch_up(subscription)
        assert follower.diverges_from(store._data) == []
        assert follower.last_applied == store.last_applied_lsn
        # Byte-exact: the follower holds the primary's compressed payloads
        # without ever having seen a compressor model.
        for key in follower.keys():
            assert follower.get_bytes(key) == store.get_compressed(key)

    def test_converges_under_concurrent_writers(self):
        store = TierBase(compressor=make_value_compressor("none"))
        tap = SubscriberSink(capacity=65536)
        store.oplog.attach(tap)
        subscription = tap.subscribe()
        follower = FollowerStore()
        stop = threading.Event()

        def tail() -> None:
            while not stop.is_set():
                follower.catch_up(subscription, timeout=0.05)
            follower.catch_up(subscription)

        def writer(tag: int) -> None:
            for index in range(300):
                key = f"w{tag}:{index % 40}"
                if index % 9 == 0:
                    store.delete(key)
                else:
                    store.set(key, f"{tag}-{index}")

        tailer = threading.Thread(target=tail)
        writers = [threading.Thread(target=writer, args=(n,)) for n in range(4)]
        tailer.start()
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        tailer.join(timeout=10.0)
        assert follower.diverges_from(store._data) == []
        assert follower.last_applied == store.last_applied_lsn

    def test_converges_with_lsm_engine(self, tmp_path):
        engine = LSMEngine(tmp_path, memtable_bytes=1 << 20)
        tap = SubscriberSink(capacity=4096)
        engine.attach_sink(tap)
        subscription = tap.subscribe()
        follower = FollowerStore()
        engine.put("a", "1")
        engine.put_many([(f"k{i}", str(i)) for i in range(20)])
        engine.delete("k3")
        engine.put("a", "2")
        follower.catch_up(subscription)
        expected = {key: value.encode("utf-8") for key, value in engine.scan()}
        assert follower.diverges_from(expected) == []
        assert follower.last_applied == engine.last_applied_lsn
        engine.close()


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.integers(0, 11), st.text(min_size=0, max_size=12)),
        st.tuples(st.just("delete"), st.integers(0, 11), st.just("")),
        st.tuples(st.just("set_many"), st.integers(0, 11), st.text(min_size=0, max_size=8)),
        st.tuples(st.just("retrain"), st.booleans(), st.just("")),
    ),
    min_size=1,
    max_size=40,
)


class TestConvergenceProperty:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(operations=_OPS)
    def test_follower_converges_under_interleaved_mutations(self, operations):
        """Any interleaving of put/delete/put_many/retrain leaves a tailing
        follower byte-identical to the primary's payload map."""
        store = TierBase(compressor=make_value_compressor("pbc_f"))
        store.train([f"seed value {index}" for index in range(32)])
        tap = SubscriberSink(capacity=1 << 16)
        store.oplog.attach(tap)
        subscription = tap.subscribe()
        follower = FollowerStore()

        for kind, arg, text in operations:
            if kind == "set":
                store.set(f"key:{arg}", text)
            elif kind == "delete":
                store.delete(f"key:{arg}")
            elif kind == "set_many":
                for offset in range(3):
                    store.set(f"key:{(arg + offset) % 12}", f"{text}#{offset}")
            elif kind == "retrain":
                try:
                    store.retrain(
                        sample_values=[f"retrain sample {n}" for n in range(16)],
                        rewrite=arg,
                    )
                except Exception:
                    pass
            # Interleave the tail with the mutations.
            follower.catch_up(subscription)

        follower.catch_up(subscription)
        assert follower.diverges_from(store._data) == []
        assert follower.last_applied == store.last_applied_lsn
        for key in follower.keys():
            assert follower.epoch_of(key) == store.compressor.payload_epoch(
                store.get_compressed(key)
            )


# --------------------------------------------------- engine/store LSN surface


class TestEngineLsnSurface:
    def test_mutations_return_contiguous_lsns(self, tmp_path):
        engine = LSMEngine(tmp_path)
        assert engine.put("a", "1") == 1
        assert engine.put("b", "2") == 2
        assert engine.put_many([("c", "3"), ("d", "4")]) == 4
        assert engine.delete("a") == 5
        assert engine.put_many([]) == 5  # empty batch does not burn an LSN
        assert engine.last_applied_lsn == 5
        engine.close()

    def test_reopen_resumes_the_sequence(self, tmp_path):
        engine = LSMEngine(tmp_path)
        engine.put("a", "1")
        engine.put("b", "2")
        engine.close()
        reopened = LSMEngine(tmp_path)
        assert reopened.recovered_lsn == 2
        assert reopened.put("c", "3") == 3
        reopened.close()

    def test_flush_checkpoint_prevents_lsn_reuse(self, tmp_path):
        engine = LSMEngine(tmp_path)
        for index in range(10):
            engine.put(f"k{index}", str(index))
        engine.flush()  # truncates the WAL, leaving a checkpoint at LSN 10
        assert engine.put("after", "flush") == 11
        engine.close()
        reopened = LSMEngine(tmp_path)
        assert reopened.recovered_lsn == 11
        assert reopened.put("again", "x") == 12
        reopened.close()

    def test_legacy_wal_replays_with_synthesised_lsns(self, tmp_path):
        engine = LSMEngine(tmp_path)
        # Write pre-LSN records straight through the legacy WAL API, exactly
        # what an old binary left on disk.
        engine._wal.append_put("old1", "1")
        engine._wal.append_put("old2", "2")
        engine._wal.sync()
        engine.close()

        reopened = LSMEngine(tmp_path)
        assert reopened.recovered_lsn == 2
        assert reopened.get("old1") == "1" and reopened.get("old2") == "2"
        assert reopened.put("new", "3") == 3
        reopened.close()

    def test_tierbase_snapshot_restores_the_watermark(self, tmp_path):
        store = TierBase(compressor=make_value_compressor("none"))
        store.set("a", "1")
        store.set("b", "2")
        store.delete("a")
        assert store.last_applied_lsn == 3
        store.save(tmp_path / "snap.tbs")
        loaded = TierBase.load(tmp_path / "snap.tbs", compressor=make_value_compressor("none"))
        assert loaded.last_applied_lsn == 3
        assert loaded.set("c", "4") == 4


# ------------------------------------------------------- read-your-writes API


@pytest.mark.parametrize("backend", ["tierbase", "lsm"])
class TestReadYourWrites:
    def _service(self, backend: str, tmp_path) -> KVService:
        return KVService(
            ServiceConfig(
                shard_count=2,
                backend=backend,
                compressor="none",
                directory=tmp_path if backend == "lsm" else None,
                sync_mode="none",
                auto_retrain=False,
            )
        )

    def test_set_returns_lsn_and_wait_for_lsn_is_satisfied(self, backend, tmp_path):
        service = self._service(backend, tmp_path)
        try:
            lsn = service.set("user:1", "hello")
            shard_id = service.shard_for("user:1")
            assert lsn >= 1
            assert service.wait_for_lsn(shard_id, lsn) >= lsn
            assert service.last_applied(shard_id) >= lsn
            assert service.get("user:1") == "hello"
        finally:
            service.close()

    def test_mset_reports_per_shard_watermarks(self, backend, tmp_path):
        service = self._service(backend, tmp_path)
        try:
            items = {f"key:{index}": f"value {index}" for index in range(32)}
            watermarks = service.mset(list(items.items()))
            assert watermarks
            for shard_id, lsn in watermarks.items():
                assert service.wait_for_lsn(shard_id, lsn) >= lsn
            # Every write is visible after its shard watermark is reached.
            for key, value in items.items():
                assert service.get(key) == value
        finally:
            service.close()

    def test_wait_for_lsn_times_out_on_future_lsn(self, backend, tmp_path):
        service = self._service(backend, tmp_path)
        try:
            with pytest.raises(ServiceError):
                service.wait_for_lsn(0, 10_000, timeout=0.05)
            with pytest.raises(ServiceError):
                service.wait_for_lsn(99, 1)  # unknown shard
        finally:
            service.close()

    def test_stats_expose_lsn_and_lag_gauges(self, backend, tmp_path):
        service = self._service(backend, tmp_path)
        try:
            for index in range(16):
                service.set(f"key:{index}", "x")
            snapshot = service.snapshot()
            assert sum(shard.last_lsn for shard in snapshot.shards) == 16
            assert all(shard.oplog_lag_records == 0 for shard in snapshot.shards)
        finally:
            service.close()
