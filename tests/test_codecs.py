"""Tests for the baseline byte codecs (LZ4/Snappy/Zstd-like, Gzip, LZMA) and the registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compressors import (
    GzipCodec,
    LZ4LikeCodec,
    LZMACodec,
    SnappyLikeCodec,
    ZstdLikeCodec,
    available_codecs,
    get_codec,
    register_codec,
    train_dictionary,
)
from repro.compressors.base import Codec, measure_codec
from repro.compressors.lz77 import detokenize, tokenize

SAMPLE_PAYLOADS = [
    b"",
    b"a",
    b"abcabcabcabcabcabc",
    b"the quick brown fox jumps over the lazy dog " * 10,
    bytes(range(256)) * 3,
    b"\x00" * 1000,
    "unicode snow ☃ man".encode("utf-8") * 7,
]


class TestLZ77:
    def test_roundtrip(self):
        for payload in SAMPLE_PAYLOADS:
            assert detokenize(tokenize(payload)) == payload

    def test_dictionary_prefix_matches(self):
        dictionary = b"common prefix material "
        payload = b"common prefix material and a tail"
        tokens = tokenize(payload, prefix=dictionary)
        assert detokenize(tokens, prefix=dictionary) == payload
        # The prefix must enable at least one back-reference.
        assert any(token.offset for token in tokens)

    @given(st.binary(max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, payload):
        assert detokenize(tokenize(payload)) == payload

    @given(st.text(alphabet="ab,", max_size=600))
    @settings(max_examples=50, deadline=None)
    def test_repetitive_text_property(self, text):
        payload = text.encode()
        assert detokenize(tokenize(payload)) == payload


@pytest.mark.parametrize(
    "codec",
    [LZ4LikeCodec(), SnappyLikeCodec(), ZstdLikeCodec(level=1), ZstdLikeCodec(level=9), GzipCodec(), LZMACodec(preset=1)],
    ids=lambda codec: f"{codec.name}",
)
class TestCodecRoundtrips:
    def test_roundtrip_samples(self, codec):
        for payload in SAMPLE_PAYLOADS:
            assert codec.decompress(codec.compress(payload)) == payload

    def test_record_helpers(self, codec):
        record = "log line with numbers 12345 and text"
        assert codec.decompress_record(codec.compress_record(record)) == record

    def test_repetitive_payload_shrinks(self, codec):
        payload = b"0123456789abcdef" * 256
        assert len(codec.compress(payload)) < len(payload)


class TestZstdLike:
    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            ZstdLikeCodec(level=0)

    def test_higher_level_not_worse(self):
        payload = ("GET /api/items/%d HTTP/1.1\n" * 200 % tuple(range(200))).encode()
        fast = len(ZstdLikeCodec(level=1).compress(payload))
        strong = len(ZstdLikeCodec(level=9).compress(payload))
        assert strong <= fast * 1.05

    def test_dictionary_improves_short_records(self):
        samples = [f"user_id={index};action=click;ts=16395740{index:02d}".encode() for index in range(100)]
        dictionary = train_dictionary(samples, max_size=1024)
        assert 0 < len(dictionary) <= 1024
        plain = ZstdLikeCodec(level=3)
        trained = ZstdLikeCodec(level=3, dictionary=dictionary)
        record = b"user_id=999;action=click;ts=1639574099"
        assert len(trained.compress(record)) < len(plain.compress(record))
        assert trained.decompress(trained.compress(record)) == record

    def test_empty_dictionary_from_empty_samples(self):
        assert train_dictionary([]) == b""

    @given(st.binary(max_size=1500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, payload):
        codec = ZstdLikeCodec(level=3)
        assert codec.decompress(codec.compress(payload)) == payload


class TestLZ4Dictionary:
    def test_dictionary_roundtrip(self):
        samples = [f"item={index};price={index * 3}".encode() for index in range(50)]
        dictionary = train_dictionary(samples, max_size=512)
        codec = LZ4LikeCodec(dictionary=dictionary)
        record = b"item=999;price=2997"
        assert codec.decompress(codec.compress(record)) == record


class TestGzipLzmaLevels:
    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            GzipCodec(level=10)
        with pytest.raises(ValueError):
            LZMACodec(preset=11)


class TestRegistry:
    def test_expected_codecs_registered(self):
        names = available_codecs()
        for expected in ("lz4", "snappy", "zstd", "gzip", "lzma", "fsst"):
            assert expected in names

    def test_get_codec_with_arguments(self):
        codec = get_codec("zstd", level=9)
        assert isinstance(codec, ZstdLikeCodec)
        assert codec.level == 9

    def test_unknown_codec_rejected(self):
        with pytest.raises(KeyError):
            get_codec("does-not-exist")

    def test_register_custom_codec(self):
        class Identity(Codec):
            name = "identity"

            def compress(self, data: bytes) -> bytes:
                return data

            def decompress(self, data: bytes) -> bytes:
                return data

        register_codec("identity-test", Identity)
        assert isinstance(get_codec("identity-test"), Identity)

    def test_measure_codec_reports_ratio(self):
        measurement = measure_codec(GzipCodec(), [b"abc" * 100, b"def" * 100])
        assert measurement.original_bytes == 600
        assert 0 < measurement.ratio < 1
        assert measurement.compress_mb_per_second >= 0
