"""Tests for the field encoders of Table 1."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoders import (
    CharEncoder,
    IntEncoder,
    VarcharEncoder,
    VarintEncoder,
    candidate_encoders,
    encoder_from_spec,
    select_encoder,
)
from repro.exceptions import DecodingError, EncodingError


class TestVarcharEncoder:
    def test_roundtrip(self):
        encoder = VarcharEncoder()
        for value in ("", "a", "hello world", "héllo", "0" * 300):
            data = encoder.encode(value)
            decoded, offset = encoder.decode(data, 0)
            assert decoded == value
            assert offset == len(data)

    def test_cost_matches_encoding(self):
        encoder = VarcharEncoder()
        for value in ("", "x", "abcdef" * 30, "ünïcode"):
            assert encoder.cost(value) == len(encoder.encode(value))

    def test_accepts_everything(self):
        assert VarcharEncoder().can_encode("anything at all ☃")

    def test_truncated_payload_rejected(self):
        encoder = VarcharEncoder()
        data = encoder.encode("hello")
        with pytest.raises(DecodingError):
            encoder.decode(data[:-2], 0)


class TestCharEncoder:
    def test_roundtrip(self):
        encoder = CharEncoder(4)
        data = encoder.encode("abcd")
        assert encoder.decode(data, 0) == ("abcd", 4)

    def test_rejects_wrong_length(self):
        encoder = CharEncoder(3)
        assert not encoder.can_encode("ab")
        assert not encoder.can_encode("abcd")
        with pytest.raises(EncodingError):
            encoder.encode("ab")

    def test_rejects_multibyte_overflow(self):
        # 3 characters but more than 3 UTF-8 bytes.
        assert not CharEncoder(3).can_encode("hél")

    def test_no_header_overhead(self):
        assert CharEncoder(10).cost("abcdefghij") == 10

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            CharEncoder(-1)


class TestIntEncoder:
    def test_roundtrip_preserves_leading_zeros(self):
        encoder = IntEncoder(6)
        data = encoder.encode("004512")
        assert encoder.decode(data, 0) == ("004512", encoder.width)

    def test_width_defaults_to_minimum(self):
        assert IntEncoder(2).width == 1
        assert IntEncoder(6).width == 3
        assert IntEncoder(10).width == 5

    def test_explicit_width_must_fit(self):
        with pytest.raises(ValueError):
            IntEncoder(6, 1)

    def test_rejects_non_digits_and_wrong_length(self):
        encoder = IntEncoder(4)
        assert not encoder.can_encode("12a4")
        assert not encoder.can_encode("123")
        assert not encoder.can_encode("１２３４")  # full-width digits are not ASCII

    def test_spec_roundtrip(self):
        encoder = IntEncoder(6, 3)
        assert encoder_from_spec(encoder.spec()) == encoder

    @given(st.integers(min_value=0, max_value=999999))
    def test_roundtrip_property(self, number):
        encoder = IntEncoder(6)
        value = f"{number:06d}"
        decoded, _ = encoder.decode(encoder.encode(value), 0)
        assert decoded == value


class TestVarintEncoder:
    def test_roundtrip(self):
        encoder = VarintEncoder()
        for value in ("0", "7", "128", "999999999"):
            decoded, _ = encoder.decode(encoder.encode(value), 0)
            assert decoded == value

    def test_rejects_leading_zeros(self):
        encoder = VarintEncoder()
        assert not encoder.can_encode("007")
        assert encoder.can_encode("0")

    def test_rejects_non_digits(self):
        assert not VarintEncoder().can_encode("12.5")
        assert not VarintEncoder().can_encode("")

    def test_cost_grows_with_magnitude(self):
        encoder = VarintEncoder()
        assert encoder.cost("5") < encoder.cost("500000")


class TestEncoderSelection:
    def test_fixed_digits_prefer_int(self):
        encoder = select_encoder(["123456", "654321", "000001"])
        assert encoder.spec() == "INT(6,3)"

    def test_variable_digits_prefer_varint(self):
        encoder = select_encoder(["5", "1234", "99"])
        assert encoder.spec() == "VARINT"

    def test_fixed_text_prefers_char(self):
        encoder = select_encoder(["abcd", "efgh", "zzzz"])
        assert encoder.spec() == "CHAR(4)"

    def test_mixed_text_falls_back_to_varchar(self):
        encoder = select_encoder(["a", "bcdef", "gh"])
        assert encoder.spec() == "VARCHAR"

    def test_empty_values_only_varchar(self):
        assert select_encoder(["", ""]).spec() == "VARCHAR"

    def test_candidate_set_always_contains_varchar(self):
        for values in (["1", "22"], ["abc"], [""], ["x1", "y2"]):
            specs = {encoder.spec() for encoder in candidate_encoders(values)}
            assert "VARCHAR" in specs

    def test_selected_encoder_can_encode_all_values(self):
        values = ["123", "456", "789"]
        encoder = select_encoder(values)
        assert all(encoder.can_encode(value) for value in values)

    def test_selection_is_cost_minimal_among_candidates(self):
        values = ["120045", "000001", "999999"]
        best = select_encoder(values)
        best_cost = sum(best.cost(value) for value in values)
        for candidate in candidate_encoders(values):
            assert best_cost <= sum(candidate.cost(value) for value in values)

    @given(st.lists(st.text(alphabet="0123456789abc", min_size=1, max_size=12), min_size=1, max_size=10))
    def test_selected_encoder_roundtrips_every_value(self, values):
        encoder = select_encoder(values)
        for value in values:
            decoded, _ = encoder.decode(encoder.encode(value), 0)
            assert decoded == value


class TestSpecParsing:
    def test_all_specs_roundtrip(self):
        for encoder in (VarcharEncoder(), VarintEncoder(), CharEncoder(7), IntEncoder(4, 2)):
            assert encoder_from_spec(encoder.spec()) == encoder

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            encoder_from_spec("BLOB(4)")
