"""Background compaction: scheduler, admission control, per-level codecs,
parked scans across merges, batched writes, and footer-backed stats.

These are the regression tests for moving compaction off the write path:
the tiered scheduler must merge without freezing writers, a scan iterator
parked across a compaction must keep reading retired tables, ``put_many``
must pay one WAL barrier per batch, and ``stats()`` must come from table
footers instead of re-decoding every block.
"""

import threading
import time

import pytest

from repro.core.extraction import ExtractionConfig
from repro.exceptions import StoreError
from repro.lsm import (
    BlockCompressionPolicy,
    CompactionConfig,
    LSMEngine,
    PlainPolicy,
    QUARANTINE_DIR,
    RecordCompressionPolicy,
    SSTable,
    write_sstable,
)
from repro.lsm.sstable import (
    POLICY_KIND_BLOCK,
    POLICY_KIND_PLAIN,
    POLICY_KIND_RECORD,
)
from repro.compressors import ZstdLikeCodec
from repro.service.backends import LSMShard, make_shard_backend
from repro.tierbase import PBCValueCompressor

from tests.conftest import make_template_records


def trained_compressor(values: list[str]) -> PBCValueCompressor:
    compressor = PBCValueCompressor(
        config=ExtractionConfig(max_patterns=6, sample_size=48, seed=9)
    )
    compressor.train(values[:60])
    return compressor


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestParkedScanAcrossCompaction:
    """A scan generator pinned across a compaction must not crash (the bug:
    ``compact()`` unlinked the SSTable files a parked iterator was reading)."""

    def _fill(self, engine: LSMEngine, count: int = 60) -> dict[str, str]:
        expected = {}
        for index in range(count):
            key = f"key:{index:05d}"
            value = f"value-{index}"
            engine.put(key, value)
            expected[key] = value
            if index % 15 == 14:
                engine.flush()
        engine.flush()
        return expected

    def test_parked_scan_survives_explicit_compact(self, tmp_path):
        with LSMEngine(tmp_path, compaction_trigger=100) as engine:
            expected = self._fill(engine)
            assert len(engine._tables) > 1
            iterator = engine.scan()
            head = [next(iterator) for _ in range(5)]
            engine.compact()  # unlinks every table the iterator holds
            assert len(engine._tables) == 1
            rows = head + list(iterator)
            assert dict(rows) == expected
            assert [key for key, _ in rows] == sorted(expected)

    def test_parked_scan_survives_background_merge(self, tmp_path):
        engine = LSMEngine(
            tmp_path, compaction_trigger=2, background_compaction=True
        )
        try:
            expected = {}
            iterator = None
            head = []
            for index in range(120):
                key = f"key:{index:05d}"
                engine.put(key, f"value-{index}")
                expected[key] = f"value-{index}"
                if index == 40:
                    engine.flush()
                    iterator = engine.scan()
                    head = [next(iterator) for _ in range(10)]
                if index % 10 == 9:
                    engine.flush()
            assert wait_until(lambda: engine._compactions >= 1)
            # The parked iterator sees its point-in-time snapshot intact.
            parked = dict(head + list(iterator))
            assert all(parked[key] == expected[key] for key in parked)
            assert len(parked) == 41  # keys 0..40 existed at snapshot time
            # And a fresh scan sees everything.
            assert dict(engine.scan()) == expected
        finally:
            engine.close()

    @pytest.mark.parametrize("kind", ["tierbase", "lsm"])
    def test_scan_parked_across_backend_churn(self, kind, tmp_path):
        """Service-backend flavour of the regression, on both backends."""
        backend = make_shard_backend(
            kind, "pbc", shard_id=0, directory=tmp_path, train_size=64
        )
        try:
            values = make_template_records(80)
            backend.train(values[:60])
            expected = {}
            for index, value in enumerate(values):
                key = f"row:{index:05d}"
                backend.set(key, value)
                expected[key] = value
            if kind == "lsm":
                backend.engine.flush()
            iterator = iter(backend.scan(None, None, None))
            head = [next(iterator) for _ in range(5)]
            # Churn the storage underneath the parked iterator: a full
            # compaction for lsm, an epoch retrain for tierbase.
            if kind == "lsm":
                backend.engine.compact()
            else:
                backend.retrain(values[:60])
            rows = head + list(iterator)
            assert dict(rows) == expected
        finally:
            backend.close()


class TestBackgroundScheduler:
    def test_scheduler_merges_without_explicit_compact(self, tmp_path):
        engine = LSMEngine(
            tmp_path, compaction_trigger=2, background_compaction=True
        )
        try:
            for index in range(100):
                engine.put(f"key:{index:05d}", "x" * 64)
                if index % 10 == 9:
                    engine.flush()
            assert wait_until(lambda: engine._compactions >= 1)
            assert engine._scheduler is not None and engine._scheduler.alive
            for index in range(100):
                assert engine.get(f"key:{index:05d}") == "x" * 64
        finally:
            engine.close()

    def test_close_stops_scheduler(self, tmp_path):
        engine = LSMEngine(tmp_path, background_compaction=True)
        scheduler = engine._scheduler
        engine.put("key", "value")
        engine.close()
        assert scheduler is not None and not scheduler.alive

    def test_inline_engine_has_no_scheduler_and_never_throttles(self, tmp_path):
        with LSMEngine(tmp_path, memtable_bytes=1, compaction_trigger=2) as engine:
            assert engine._scheduler is None
            for index in range(40):
                engine.put(f"key:{index:05d}", "value")
            assert engine._stalls == 0 and engine._slowdowns == 0


class TestAdmissionControl:
    def test_slowdown_band_counts_and_sleeps(self, tmp_path):
        engine = LSMEngine(
            tmp_path,
            memtable_bytes=1,  # every put flushes its own L0 table
            compaction_trigger=2,
            background_compaction=True,
        )
        try:
            with engine._compact_mutex:  # freeze the compactor mid-run
                for index in range(6):  # slowdown watermark = 4
                    engine.put(f"key:{index}", "value")
                assert engine._slowdowns >= 1
                assert engine._stalls == 0
                assert engine._stall_seconds > 0.0
        finally:
            engine.close()

    def test_stall_blocks_until_compactor_catches_up(self, tmp_path):
        engine = LSMEngine(
            tmp_path,
            memtable_bytes=1,
            compaction_trigger=2,  # slowdown at 4, stall at 8 L0 tables
            background_compaction=True,
        )
        try:
            stalled = threading.Event()

            def writer():
                for index in range(10):
                    engine.put(f"key:{index}", "value")
                stalled.set()

            with engine._compact_mutex:
                thread = threading.Thread(target=writer)
                thread.start()
                # The writer must hit the stall watermark and block while the
                # compactor is frozen.
                assert wait_until(lambda: engine._level_count(0) >= 8)
                time.sleep(0.1)
                assert not stalled.is_set()
            # Mutex released: the scheduler drains L0 and wakes the writer.
            thread.join(timeout=30)
            assert stalled.is_set()
            assert engine._stalls >= 1
            assert engine._stall_seconds > 0.0
        finally:
            engine.close()

    def test_dead_scheduler_falls_back_to_inline_compaction(self, tmp_path):
        engine = LSMEngine(
            tmp_path,
            memtable_bytes=1,
            compaction_trigger=2,
            background_compaction=True,
        )
        try:
            assert engine._scheduler is not None
            engine._scheduler.close()  # simulate the thread dying
            assert not engine._scheduler.alive
            for index in range(20):
                engine.put(f"key:{index:03d}", "value")
            # No deadlock, and the stalled writer compacted inline.
            assert engine._level_count(0) < 8
            assert engine._compactions >= 1
            for index in range(20):
                assert engine.get(f"key:{index:03d}") == "value"
        finally:
            engine.close()

    def test_custom_watermarks_validated(self, tmp_path):
        with pytest.raises(StoreError):
            CompactionConfig(slowdown_tables=8, stall_tables=4).resolve(4)
        with pytest.raises(StoreError):
            CompactionConfig(slowdown_tables=0).resolve(4)
        assert CompactionConfig().resolve(4) == (8, 16)
        assert CompactionConfig(slowdown_tables=3, stall_tables=5).resolve(4) == (3, 5)
        with pytest.raises(StoreError):
            LSMEngine(tmp_path, compaction=CompactionConfig(slowdown_tables=9, stall_tables=3))


class TestTieredCompaction:
    def test_merges_shallowest_eligible_level_into_one_deeper_table(self, tmp_path):
        with LSMEngine(tmp_path, compaction_trigger=2) as engine:
            for index in range(4):
                engine.put(f"key:{index}", f"value-{index}")
                engine.flush()  # inline engine drains eligible levels per flush
            levels = sorted(table.level for table in engine._tables)
            assert max(levels) >= 1  # data migrated off L0
            for index in range(4):
                assert engine.get(f"key:{index}") == f"value-{index}"

    def test_whole_store_compact_drops_tombstones(self, tmp_path):
        with LSMEngine(tmp_path, compaction_trigger=100) as engine:
            engine.put("keep", "value")
            engine.put("drop", "value")
            engine.flush()
            engine.delete("drop")
            engine.flush()
            engine.compact()
            assert len(engine._tables) == 1
            table = engine._tables[0]
            assert table.entry_count == 1  # tombstone physically gone
            assert engine.get("keep") == "value"
            assert engine.get("drop") is None

    def test_per_level_codec_policy_stamps(self, tmp_path):
        values = make_template_records(80)
        policies = {
            0: PlainPolicy(),
            1: BlockCompressionPolicy(ZstdLikeCodec()),
            2: RecordCompressionPolicy(trained_compressor(values)),
        }
        with LSMEngine(
            tmp_path,
            compaction_trigger=100,
            level_policies=policies,
            policy=policies[2],
        ) as engine:
            expected = {}
            for index, value in enumerate(values):
                key = f"row:{index:05d}"
                engine.put(key, value)
                expected[key] = value
            engine.flush()
            kind, _ = SSTable.read_stamp(engine._tables[0].path)
            assert kind == POLICY_KIND_PLAIN

            engine.put("row:zzz", "tail")
            expected["row:zzz"] = "tail"
            engine.flush()
            engine.compact()  # -> level 1, block codec
            table = engine._tables[0]
            assert table.level == 1
            kind, _ = SSTable.read_stamp(table.path)
            assert kind == POLICY_KIND_BLOCK

            engine.put("row:zzzz", "tail2")
            expected["row:zzzz"] = "tail2"
            engine.flush()
            engine.compact()  # -> level 2, trained record codec
            table = engine._tables[0]
            assert table.level == 2
            kind, _ = SSTable.read_stamp(table.path)
            assert kind == POLICY_KIND_RECORD
            assert dict(engine.scan()) == expected

    def test_deeper_levels_inherit_deepest_configured_policy(self, tmp_path):
        """A merge below the deepest configured level keeps that level's codec."""
        policies = {0: PlainPolicy(), 1: BlockCompressionPolicy(ZstdLikeCodec())}
        with LSMEngine(
            tmp_path, compaction_trigger=100, level_policies=policies
        ) as engine:
            for round_index in range(3):
                engine.put(f"key:{round_index}", "value")
                engine.flush()
                engine.compact()
            table = engine._tables[0]
            assert table.level >= 2
            kind, _ = SSTable.read_stamp(table.path)
            assert kind == POLICY_KIND_BLOCK


class TestLeveledRecovery:
    def test_superseded_shallow_table_is_quarantined(self, tmp_path):
        # A crash between publishing a merge output and retiring its inputs
        # leaves both on disk; recovery must prefer the deeper (newer) table
        # and quarantine — never silently resurrect — the stale shallow one.
        write_sstable(
            tmp_path / "sstable-000000-000.sst", [("key", "stale")], PlainPolicy()
        )
        write_sstable(
            tmp_path / "sstable-000000-001.sst", [("key", "fresh")], PlainPolicy()
        )
        with LSMEngine(tmp_path) as engine:
            assert engine.get("key") == "fresh"
            assert len(engine._tables) == 1
            assert engine._tables[0].level == 1
        quarantine = tmp_path / QUARANTINE_DIR
        assert quarantine.is_dir()
        assert [path.name for path in quarantine.iterdir()] == [
            "sstable-000000-000.sst"
        ]

    def test_legacy_unleveled_names_recover_as_level_zero(self, tmp_path):
        write_sstable(tmp_path / "sstable-000003.sst", [("key", "value")], PlainPolicy())
        with LSMEngine(tmp_path) as engine:
            assert engine.get("key") == "value"
            assert engine._tables[0].level == 0
            assert engine._tables[0].table_id == 3
            engine.put("other", "value")
            engine.flush()
            assert engine._tables[-1].table_id == 4  # ids continue past legacy names

    def test_background_engine_survives_reopen(self, tmp_path):
        engine = LSMEngine(tmp_path, compaction_trigger=2, background_compaction=True)
        expected = {}
        try:
            for index in range(60):
                key = f"key:{index:04d}"
                engine.put(key, f"value-{index}")
                expected[key] = f"value-{index}"
                if index % 8 == 7:
                    engine.flush()
            wait_until(lambda: engine._compactions >= 1)
        finally:
            engine.close()
        with LSMEngine(tmp_path, compaction_trigger=2, background_compaction=True) as reopened:
            assert dict(reopened.scan()) == expected


class TestPutManyBatching:
    def test_one_wal_write_per_batch(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            writes = []
            original = engine._wal._sink._file.write

            def counting_write(data):
                writes.append(len(data))
                return original(data)

            engine._wal._sink._file.write = counting_write
            engine.put_many([(f"key:{index}", "value") for index in range(50)])
            assert len(writes) == 1  # one buffer for the whole batch

    def test_one_fsync_per_batch_in_fsync_mode(self, tmp_path):
        with LSMEngine(tmp_path, sync_mode="fsync") as engine:
            base = engine._wal.fsyncs
            engine.put_many([(f"key:{index}", "value") for index in range(50)])
            assert engine._wal.fsyncs == base + 1

    def test_one_flush_check_per_batch(self, tmp_path):
        # 50 values of 64 bytes blow well past a 1 KiB memtable; the per-item
        # write path would flush mid-batch many times, the batched path once.
        with LSMEngine(tmp_path, memtable_bytes=1024, compaction_trigger=100) as engine:
            engine.put_many([(f"key:{index:03d}", "x" * 64) for index in range(50)])
            assert engine._flushes == 1

    def test_batch_is_durable_and_replayable(self, tmp_path):
        items = [(f"key:{index:03d}", f"value-{index}") for index in range(30)]
        engine = LSMEngine(tmp_path, sync_mode="fsync")
        engine.put_many(items)
        engine._wal._sink._file.close()  # crash without flush: WAL is the only copy
        engine._closed = True
        with LSMEngine(tmp_path) as reopened:
            assert dict(reopened.scan()) == dict(items)

    def test_empty_batch_is_a_noop(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            engine.put_many([])
            stats = engine.stats()
            assert stats.memtable_entries == 0 and stats.flushes == 0


class TestFooterBackedStats:
    def test_logical_value_bytes_stable_across_flush_and_compaction(self, tmp_path):
        with LSMEngine(tmp_path, compaction_trigger=100) as engine:
            values = make_template_records(60)
            for index, value in enumerate(values):
                engine.put(f"row:{index:04d}", value)
            before = engine.stats().logical_value_bytes
            assert before == sum(len(v.encode("utf-8")) for v in values)
            engine.flush()
            assert engine.stats().logical_value_bytes == before
            engine.put("row:zzzz", "tail")
            engine.flush()
            engine.compact()
            assert (
                engine.stats().logical_value_bytes
                == before + len(b"tail")
            )

    def test_stats_read_footer_not_blocks(self, tmp_path):
        with LSMEngine(tmp_path) as engine:
            for index in range(20):
                engine.put(f"key:{index:03d}", "value")
            engine.flush()
            table = engine._tables[0]
            assert table._logical_value_bytes is not None  # persisted, not lazy

            def explode(*args, **kwargs):  # stats() must never touch block data
                raise AssertionError("stats() decoded a block")

            table._read_block = explode
            assert engine.stats().logical_value_bytes == 20 * len(b"value")


class TestModelEpochReclamation:
    def test_compaction_reclaims_superseded_epochs(self, tmp_path):
        values = make_template_records(120)
        shard = LSMShard(
            tmp_path,
            trained_compressor(values),
            memtable_bytes=1024,
            train_size=64,
            sync_mode="none",
            background_compaction=False,
        )
        try:
            first_epoch = shard.compressor.current_epoch
            assert first_epoch >= 1
            for index, value in enumerate(values):
                shard.set(f"row:{index:05d}", value)
            shard.engine.flush()
            # Push everything to the cold record-compressed level: epoch
            # `first_epoch` is now referenced by on-disk blocks.
            shard.engine.compact()
            shard.engine.put("row:zzzzz", "tail")
            shard.engine.flush()
            shard.engine.compact()
            models = shard.compressor.models
            assert first_epoch in models.epochs()
            assert models.references(first_epoch) > 0

            shard.retrain(values[:60])
            second_epoch = shard.compressor.current_epoch
            assert second_epoch > first_epoch
            # The rewrite encodes against the new epoch and retires the old
            # tables — and with them the last references to the old epoch.
            shard.engine.put("row:zzzzzz", "tail2")
            shard.engine.flush()
            shard.engine.compact()
            assert models.references(first_epoch) == 0
            assert first_epoch not in models.epochs()
            assert 0 in models.epochs()  # untrained sentinel is never dropped
            for index, value in enumerate(values):
                assert shard.get(f"row:{index:05d}") == value
        finally:
            shard.close()

    def test_compaction_hook_retrains_when_drift_flagged(self, tmp_path):
        values = make_template_records(120)
        shard = LSMShard(
            tmp_path,
            trained_compressor(values),
            memtable_bytes=1024,
            train_size=64,
            sync_mode="none",
            background_compaction=False,
        )
        try:
            shard.lifecycle.needs_retrain = lambda outlier_rate: True
            for index, value in enumerate(values):
                shard.set(f"row:{index:05d}", value)  # feeds the reservoir
            shard.engine.flush()
            epoch_before = shard.compressor.current_epoch
            shard.engine.put("row:zzzzz", "tail")
            shard.engine.flush()
            shard.engine.compact()  # cold rewrite => hook => retrain
            assert shard._retrain_events >= 1
            assert shard.compressor.current_epoch > epoch_before
        finally:
            shard.close()
