"""Tests for the evidence-grade perf harness (``repro.bench.harness``).

Three pillars, per the PR's acceptance criteria:

* **document schema** — every ``BENCH_*.json`` carries the envelope keys,
  the env fingerprint, per-cell monotone repetition ids, and the
  before/after optimization pairs; :func:`validate_document` rejects each
  violation with a typed error;
* **determinism of shape** — a grid run produces exactly
  ``cells × repetitions`` rows regardless of workload knobs;
* **compare semantics** — identical documents pass, a cell whose mean
  throughput drops past the threshold fails, a vanished cell fails, a new
  cell never fails, and the CLI maps these to exit codes 0/1 (plus 2 for
  ``--require-baseline`` on a missing file).
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import harness
from repro.bench.harness import (
    AREAS,
    BenchHarnessError,
    ExperimentGrid,
    compare_documents,
    env_fingerprint,
    run_area,
    validate_document,
)
from repro.cli import main

#: tiny knobs so a full grid run stays in CI-smoke territory.
WIRE_OVERRIDES = {"operations": 48, "values": 32}
SERVICE_OVERRIDES = {"operations": 48, "values": 32, "records": 32, "rate": 4000.0}


@pytest.fixture(scope="module")
def wire_document():
    return run_area("wire", repetitions=2, warmup=0, overrides=WIRE_OVERRIDES, pairs=False)


# ----------------------------------------------------------------------- grid


class TestGrid:
    def test_cells_are_the_cartesian_product_in_declared_order(self):
        grid = ExperimentGrid(
            name="toy",
            description="",
            kind="closed_wire",
            dimensions={"a": (1, 2), "b": ("x", "y", "z")},
        )
        cells = grid.cells()
        assert len(cells) == 6
        assert cells[0] == {"a": 1, "b": "x"}
        assert cells[-1] == {"a": 2, "b": "z"}
        # first dimension varies slowest
        assert [cell["a"] for cell in cells] == [1, 1, 1, 2, 2, 2]

    def test_registered_areas(self):
        assert set(AREAS) == {"wire", "service", "sustained"}
        assert AREAS["wire"].kind == "closed_wire"
        assert AREAS["service"].kind == "open_scenario"
        assert AREAS["sustained"].kind == "sustained_write"
        assert len(AREAS["wire"].cells()) == 4
        assert len(AREAS["service"].cells()) == 8  # backend × mix × shards
        assert len(AREAS["sustained"].cells()) == 3

    def test_unknown_area_is_rejected(self):
        with pytest.raises(BenchHarnessError, match="unknown bench area"):
            harness.get_area("nope")

    def test_unknown_override_knob_is_rejected(self):
        with pytest.raises(BenchHarnessError, match="unknown base knob"):
            run_area("wire", overrides={"bogus": 1})

    def test_bad_repetition_counts_are_rejected(self):
        with pytest.raises(BenchHarnessError, match="at least one repetition"):
            run_area("wire", repetitions=0)
        with pytest.raises(BenchHarnessError, match="cannot be negative"):
            run_area("wire", warmup=-1)


# ------------------------------------------------------------------- document


class TestDocument:
    def test_envelope_and_fingerprint(self, wire_document):
        for key in harness.DOCUMENT_KEYS:
            assert key in wire_document
        assert wire_document["schema"] == harness.SCHEMA
        assert wire_document["area"] == "wire"
        for key in harness.ENV_KEYS:
            assert key in wire_document["env"]
        assert wire_document["env"]["cpu_count"] >= 1
        assert wire_document["config"]["base"]["operations"] == 48

    def test_row_count_is_cells_times_repetitions(self, wire_document):
        assert len(wire_document["rows"]) == 4 * 2

    def test_rows_carry_dimensions_and_metrics(self, wire_document):
        for row in wire_document["rows"]:
            for key in ("codec", "pipeline_depth", *harness.ROW_METRIC_KEYS):
                assert key in row
            assert row["ops_per_second"] > 0
            assert row["clock"] == "round-trip"
            assert row["lost"] == 0 and row["corrupt"] == 0

    def test_repetition_ids_are_monotone_per_cell(self, wire_document):
        seen: dict[tuple, int] = {}
        for row in wire_document["rows"]:
            cell = (row["codec"], row["pipeline_depth"])
            assert row["repetition"] == seen.get(cell, -1) + 1
            seen[cell] = row["repetition"]

    def test_service_area_uses_the_scheduled_release_clock(self):
        document = run_area(
            "service", repetitions=1, warmup=0, overrides=SERVICE_OVERRIDES, pairs=False
        )
        assert len(document["rows"]) == 8
        assert {row["clock"] for row in document["rows"]} == {"scheduled-release"}
        assert {row["backend"] for row in document["rows"]} == {"tierbase", "lsm"}
        assert {row["shards"] for row in document["rows"]} == {1, 4}

    def test_env_fingerprint_shape(self):
        fingerprint = env_fingerprint()
        assert set(fingerprint) == set(harness.ENV_KEYS)
        assert isinstance(fingerprint["cpu_count"], int)
        assert fingerprint["python"].count(".") == 2


class TestValidation:
    def test_missing_envelope_key(self, wire_document):
        broken = {key: value for key, value in wire_document.items() if key != "env"}
        with pytest.raises(BenchHarnessError, match="missing key 'env'"):
            validate_document(broken)

    def test_wrong_schema_marker(self, wire_document):
        broken = copy.deepcopy(wire_document)
        broken["schema"] = "repro-bench/0"
        with pytest.raises(BenchHarnessError, match="unsupported schema"):
            validate_document(broken)

    def test_missing_env_key(self, wire_document):
        broken = copy.deepcopy(wire_document)
        del broken["env"]["git_sha"]
        with pytest.raises(BenchHarnessError, match="missing key 'git_sha'"):
            validate_document(broken)

    def test_missing_row_metric(self, wire_document):
        broken = copy.deepcopy(wire_document)
        del broken["rows"][0]["p99_ms"]
        with pytest.raises(BenchHarnessError, match="missing key 'p99_ms'"):
            validate_document(broken)

    def test_missing_row_dimension(self, wire_document):
        broken = copy.deepcopy(wire_document)
        del broken["rows"][0]["codec"]
        with pytest.raises(BenchHarnessError, match="missing dimension 'codec'"):
            validate_document(broken)

    def test_non_monotone_repetitions(self, wire_document):
        broken = copy.deepcopy(wire_document)
        broken["rows"][1]["repetition"] = 5
        with pytest.raises(BenchHarnessError, match="not\\s+monotone"):
            validate_document(broken)

    def test_malformed_pair(self, wire_document):
        broken = copy.deepcopy(wire_document)
        broken["optimizations"] = [{"name": "x"}]
        with pytest.raises(BenchHarnessError, match="optimization pair"):
            validate_document(broken)

    def test_load_document_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchHarnessError, match="not valid JSON"):
            harness.load_document(path)


# ----------------------------------------------------------------- comparison


def _with_cell_scaled(document, codec, depth, factor):
    scaled = copy.deepcopy(document)
    for row in scaled["rows"]:
        if row["codec"] == codec and row["pipeline_depth"] == depth:
            row["ops_per_second"] = row["ops_per_second"] * factor
    return scaled


class TestCompare:
    def test_identical_documents_pass(self, wire_document):
        report, regressions = compare_documents(wire_document, wire_document, threshold=0.15)
        assert regressions == 0
        assert len(report) == 4
        assert {row["status"] for row in report} == {"ok"}

    def test_drop_past_threshold_regresses(self, wire_document):
        slowed = _with_cell_scaled(wire_document, "pbc_f", 8, 0.5)
        report, regressions = compare_documents(wire_document, slowed, threshold=0.15)
        assert regressions == 1
        (regressed,) = [row for row in report if row["status"] == "regressed"]
        assert regressed["cell"] == "codec=pbc_f, pipeline_depth=8"
        assert regressed["delta"] == pytest.approx(-0.5, abs=0.01)

    def test_drop_within_threshold_passes(self, wire_document):
        slowed = _with_cell_scaled(wire_document, "none", 0, 0.9)
        _, regressions = compare_documents(wire_document, slowed, threshold=0.15)
        assert regressions == 0

    def test_missing_cell_regresses(self, wire_document):
        shrunk = copy.deepcopy(wire_document)
        shrunk["rows"] = [row for row in shrunk["rows"] if row["codec"] != "none"]
        report, regressions = compare_documents(wire_document, shrunk, threshold=0.15)
        assert regressions == 2
        assert sum(row["status"] == "missing" for row in report) == 2

    def test_extra_new_cell_is_reported_but_never_fails(self, wire_document):
        grown = copy.deepcopy(wire_document)
        extra = copy.deepcopy(grown["rows"][0])
        extra["codec"] = "zstd3"
        grown["rows"].append(extra)
        report, regressions = compare_documents(wire_document, grown, threshold=0.15)
        assert regressions == 0
        assert sum(row["status"] == "new" for row in report) == 1

    def test_mismatched_areas_are_rejected(self, wire_document):
        other = copy.deepcopy(wire_document)
        other["area"] = "service"
        with pytest.raises(BenchHarnessError, match="cannot compare area"):
            compare_documents(wire_document, other)

    def test_threshold_bounds(self, wire_document):
        with pytest.raises(BenchHarnessError, match="threshold"):
            compare_documents(wire_document, wire_document, threshold=1.0)
        with pytest.raises(BenchHarnessError, match="threshold"):
            compare_documents(wire_document, wire_document, threshold=-0.1)

    def test_latency_regression_fails_only_when_gated(self, wire_document):
        lagged = copy.deepcopy(wire_document)
        for row in lagged["rows"]:
            if row["codec"] == "pbc_f" and row["pipeline_depth"] == 8:
                row["p99_ms"] = row["p99_ms"] * 10 + 5.0
        # Without the gate, a pure latency regression passes...
        _, regressions = compare_documents(wire_document, lagged, threshold=0.15)
        assert regressions == 0
        # ...with it, the lagged cell fails as "slower".
        report, regressions = compare_documents(
            wire_document, lagged, threshold=0.15, latency_threshold=0.5
        )
        assert regressions == 1
        (slower,) = [row for row in report if row["status"] == "slower"]
        assert slower["cell"] == "codec=pbc_f, pipeline_depth=8"
        assert slower["new_p99_ms"] > slower["old_p99_ms"]

    def test_latency_within_threshold_passes(self, wire_document):
        report, regressions = compare_documents(
            wire_document, wire_document, threshold=0.15, latency_threshold=0.5
        )
        assert regressions == 0
        assert {row["status"] for row in report} == {"ok"}

    def test_negative_latency_threshold_rejected(self, wire_document):
        with pytest.raises(BenchHarnessError, match="latency"):
            compare_documents(
                wire_document, wire_document, latency_threshold=-0.5
            )


# ------------------------------------------------------------------------ CLI


class TestCli:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        output = capsys.readouterr().out
        assert "wire" in output and "service" in output

    def test_bench_list_raw_is_json(self, capsys):
        assert main(["bench", "list", "--raw"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["area"] for row in rows] == ["wire", "service", "sustained"]

    def test_compare_identical_exits_zero(self, tmp_path, wire_document, capsys):
        path = self._write(tmp_path, "a.json", wire_document)
        assert main(["bench", "compare", path, path, "--threshold", "0.15"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_compare_injected_regression_exits_one(self, tmp_path, wire_document, capsys):
        slowed = _with_cell_scaled(wire_document, "pbc_f", 8, 0.5)
        old = self._write(tmp_path, "old.json", wire_document)
        new = self._write(tmp_path, "new.json", slowed)
        assert main(["bench", "compare", old, new, "--threshold", "0.15"]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_compare_missing_baseline_warns_and_exits_zero(self, tmp_path, wire_document, capsys):
        new = self._write(tmp_path, "new.json", wire_document)
        missing = str(tmp_path / "missing.json")
        assert main(["bench", "compare", missing, new]) == 0
        assert "warning" in capsys.readouterr().err

    def test_compare_require_baseline_exits_two(self, tmp_path, wire_document, capsys):
        new = self._write(tmp_path, "new.json", wire_document)
        missing = str(tmp_path / "missing.json")
        assert main(["bench", "compare", missing, new, "--require-baseline"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_compare_raw_report(self, tmp_path, wire_document, capsys):
        path = self._write(tmp_path, "a.json", wire_document)
        assert main(["bench", "compare", path, path, "--raw"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 0
        assert len(payload["cells"]) == 4

    def test_bench_run_writes_valid_document(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                ["bench", "run", "wire", "--operations", "48", "--values", "32",
                 "--repetitions", "1", "--warmup", "0", "--no-pairs", "--quiet"]
            )
            == 0
        )
        document = harness.load_document(tmp_path / "BENCH_wire.json")
        assert len(document["rows"]) == 4
        assert "run table" in capsys.readouterr().out

    def test_bench_run_unknown_area_is_a_clean_error(self, capsys):
        assert main(["bench", "run", "nope", "--quiet"]) == 1
        assert "unknown bench area" in capsys.readouterr().err

    def test_bench_profile_prints_stats(self, capsys):
        assert main(["bench", "profile", "frame-decode", "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "function calls" in output
        assert "cumulative" in output

    def test_bench_profile_unknown_target(self, capsys):
        assert main(["bench", "profile", "nope"]) == 1
        assert "unknown profile target" in capsys.readouterr().err
