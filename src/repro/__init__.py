"""Reproduction of "High-Ratio Compression for Machine-Generated Data" (PBC, SIGMOD 2023).

The public API re-exports the pieces a downstream user needs most often:

* the PBC compressors (:class:`PBCCompressor`, :class:`PBCFCompressor`,
  :class:`PBCBlockCompressor`) and the extraction configuration,
* the baseline codec registry (:func:`repro.compressors.get_codec`),
* the synthetic dataset registry (:func:`repro.datasets.load_dataset`),
* the storage substrates (:class:`repro.blockstore.BlockStore`,
  :class:`repro.tierbase.TierBase`).

Quick start::

    from repro import PBCCompressor, ExtractionConfig
    from repro.datasets import load_dataset

    records = load_dataset("kv1", count=2000)
    pbc = PBCCompressor(config=ExtractionConfig(max_patterns=16))
    pbc.train(records[:256])
    payload = pbc.compress(records[0])
    assert pbc.decompress(payload) == records[0]
"""

from repro.core.compressor import (
    CompressionStats,
    PBCBlockCompressor,
    PBCCompressor,
    PBCFCompressor,
    PBCHCompressor,
)
from repro.core.extraction import ExtractionConfig, PatternExtractor
from repro.core.pattern import Pattern, PatternDictionary

__version__ = "1.2.0"

__all__ = [
    "CompressionStats",
    "ExtractionConfig",
    "PBCBlockCompressor",
    "PBCCompressor",
    "PBCFCompressor",
    "PBCHCompressor",
    "Pattern",
    "PatternDictionary",
    "PatternExtractor",
    "__version__",
]
