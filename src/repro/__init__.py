"""Reproduction of "High-Ratio Compression for Machine-Generated Data" (PBC, SIGMOD 2023).

The top-level package re-exports the compression core a downstream user needs
most often: the PBC compressor variants (:class:`PBCCompressor`,
:class:`PBCFCompressor`, :class:`PBCHCompressor`, :class:`PBCBlockCompressor`),
the extraction configuration, patterns, and the live :class:`CompressionStats`.

The bigger subsystems are imported explicitly from their own packages:

* :func:`repro.compressors.get_codec` — the baseline codec registry,
* :func:`repro.datasets.load_dataset` — the synthetic Table 2 datasets,
* :mod:`repro.blockstore`, :mod:`repro.lsm`, :mod:`repro.tierbase` — the
  storage substrates,
* :mod:`repro.stream` — seekable containers and the parallel pipeline,
* :mod:`repro.service` — the sharded concurrent KV service.

See ``docs/ARCHITECTURE.md`` for the full layer map and ``docs/FORMATS.md``
for the on-disk byte layouts.

Quick start::

    from repro import PBCCompressor, ExtractionConfig
    from repro.datasets import load_dataset

    records = load_dataset("kv1", count=2000)
    pbc = PBCCompressor(config=ExtractionConfig(max_patterns=16))
    pbc.train(records[:256])
    payload = pbc.compress(records[0])
    assert pbc.decompress(payload) == records[0]
"""

from repro.core.compressor import (
    CompressionStats,
    PBCBlockCompressor,
    PBCCompressor,
    PBCFCompressor,
    PBCHCompressor,
)
from repro.core.extraction import ExtractionConfig, PatternExtractor
from repro.core.pattern import Pattern, PatternDictionary

__version__ = "1.4.0"

__all__ = [
    "CompressionStats",
    "ExtractionConfig",
    "PBCBlockCompressor",
    "PBCCompressor",
    "PBCFCompressor",
    "PBCHCompressor",
    "Pattern",
    "PatternDictionary",
    "PatternExtractor",
    "__version__",
]
