"""Reproduction of "High-Ratio Compression for Machine-Generated Data" (PBC, SIGMOD 2023).

The top-level package re-exports the compression core a downstream user needs
most often: the PBC compressor variants (:class:`PBCCompressor`,
:class:`PBCFCompressor`, :class:`PBCHCompressor`, :class:`PBCBlockCompressor`),
the extraction configuration, patterns, and the live :class:`CompressionStats`.

The bigger subsystems are imported explicitly from their own packages:

* :func:`repro.compressors.get_codec` — the baseline codec registry,
* :func:`repro.datasets.load_dataset` — the synthetic Table 2 datasets,
* :mod:`repro.blockstore`, :mod:`repro.lsm`, :mod:`repro.tierbase` — the
  storage substrates,
* :mod:`repro.stream` — seekable containers and the parallel pipeline,
* :mod:`repro.service` — the sharded concurrent KV service,
* :mod:`repro.net` — the ``RKV1`` wire protocol, asyncio server, and
  clients (``repro serve`` / ``repro client``); :class:`KVServer`,
  :class:`KVClient` and :class:`AsyncKVClient` are also re-exported lazily
  from this package.

See ``docs/ARCHITECTURE.md`` for the full layer map and ``docs/FORMATS.md``
for the on-disk byte layouts.

Quick start::

    from repro import PBCCompressor, ExtractionConfig
    from repro.datasets import load_dataset

    records = load_dataset("kv1", count=2000)
    pbc = PBCCompressor(config=ExtractionConfig(max_patterns=16))
    pbc.train(records[:256])
    payload = pbc.compress(records[0])
    assert pbc.decompress(payload) == records[0]
"""

from repro.core.compressor import (
    CompressionStats,
    PBCBlockCompressor,
    PBCCompressor,
    PBCFCompressor,
    PBCHCompressor,
)
from repro.core.extraction import ExtractionConfig, PatternExtractor
from repro.core.pattern import Pattern, PatternDictionary

__version__ = "1.11.0"

#: Lazily re-exported from :mod:`repro.net` (keeps ``import repro`` light).
_NET_EXPORTS = ("KVServer", "KVClient", "AsyncKVClient")


def __getattr__(name: str):
    if name in _NET_EXPORTS:
        import repro.net as net

        return getattr(net, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    *_NET_EXPORTS,
    "CompressionStats",
    "ExtractionConfig",
    "PBCBlockCompressor",
    "PBCCompressor",
    "PBCFCompressor",
    "PBCHCompressor",
    "Pattern",
    "PatternDictionary",
    "PatternExtractor",
    "__version__",
]
