"""Server-side overload protection primitives: token buckets and slow logs.

The policy objects live here; the *enforcement* sits in
:class:`repro.net.server.KVServer` (which knows the frame types) and relays
violations to clients as typed ERR frames —
:class:`~repro.exceptions.RateLimitedError` for an over-budget connection,
:class:`~repro.exceptions.LimitExceededError` for an oversized value or
batch.  Rejections never tear down the connection: only the offending
request is refused, and every rejection is visible as a labelled
``repro_rejections_total`` counter.

:class:`SlowRequestLog` is the threshold-gated, *rate-limited* logger for
requests that out-stay ``slow_request_seconds`` — rate-limited with its own
token bucket so a pathological stretch of slow requests cannot turn the log
into a second overload vector.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

from repro.exceptions import NetError

#: Logger that slow-request records are emitted on.
SLOW_LOGGER_NAME = "repro.obs.slow"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst`` capacity.

    Thread-safe and driven by a monotonic clock; :meth:`try_acquire` never
    blocks — it answers whether the caller is within budget *now*, which is
    the semantics a request-rejecting server wants (queueing the request
    would re-introduce the unbounded backlog the limiter exists to prevent).
    """

    def __init__(self, rate: float, burst: float | None = None,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise NetError("token bucket rate must be positive")
        if burst is not None and burst < 1:
            raise NetError("token bucket burst must be at least 1")
        self.rate = float(rate)
        self.capacity = float(burst) if burst is not None else max(1.0, self.rate)
        self._clock = clock
        self._tokens = self.capacity
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` means over budget."""
        now = self._clock()
        with self._lock:
            elapsed = now - self._updated
            if elapsed > 0:
                self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
                self._updated = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens available right now (refilled to the current instant)."""
        now = self._clock()
        with self._lock:
            elapsed = now - self._updated
            if elapsed > 0:
                self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
                self._updated = now
            return self._tokens


@dataclass(frozen=True)
class RequestLimits:
    """Per-connection protection policy enforced by the server.

    Zero disables each limit individually, so the default configuration is
    byte-for-byte the pre-observability behaviour.
    """

    #: largest accepted SET / MSET value in bytes (0 = unlimited).
    max_value_bytes: int = 0
    #: largest accepted MGET / MSET batch item count (0 = unlimited).
    max_batch_items: int = 0
    #: per-connection request budget in requests/second (0 = unlimited).
    rate_limit: float = 0.0
    #: token-bucket capacity (0 = ``max(1, rate_limit)``).
    rate_burst: int = 0

    def __post_init__(self) -> None:
        if self.max_value_bytes < 0 or self.max_batch_items < 0:
            raise NetError("size limits must be >= 0 (0 disables)")
        if self.rate_limit < 0 or self.rate_burst < 0:
            raise NetError("rate limit and burst must be >= 0 (0 disables)")

    @property
    def enforced(self) -> bool:
        """Whether any limit is active."""
        return bool(self.max_value_bytes or self.max_batch_items or self.rate_limit)

    def bucket(self) -> TokenBucket | None:
        """A fresh per-connection bucket, or ``None`` when rate is unlimited."""
        if not self.rate_limit:
            return None
        return TokenBucket(
            self.rate_limit, burst=self.rate_burst if self.rate_burst else None
        )


class SlowRequestLog:
    """Threshold-gated, rate-limited log of slow requests.

    :meth:`record` returns whether the request was slow (so the caller can
    bump its slow-request counter) independently of whether a log line was
    actually emitted — emission is capped at ``per_second`` lines via an
    internal token bucket, with the overflow counted in :attr:`suppressed`.
    """

    def __init__(
        self,
        threshold_seconds: float,
        per_second: float = 1.0,
        logger: logging.Logger | None = None,
    ) -> None:
        if threshold_seconds <= 0:
            raise NetError("slow-request threshold must be positive")
        self.threshold_seconds = threshold_seconds
        self._bucket = TokenBucket(per_second) if per_second > 0 else None
        self.logger = logger if logger is not None else logging.getLogger(SLOW_LOGGER_NAME)
        self.emitted = 0
        self.suppressed = 0

    def record(self, opcode: str, key_count: int, seconds: float) -> bool:
        """Consider one finished request; returns whether it was slow."""
        if seconds < self.threshold_seconds:
            return False
        if self._bucket is not None and not self._bucket.try_acquire():
            self.suppressed += 1
            return True
        self.emitted += 1
        self.logger.warning(
            "slow request: opcode=%s keys=%d duration_ms=%.2f threshold_ms=%.2f",
            opcode, key_count, seconds * 1e3, self.threshold_seconds * 1e3,
        )
        return True
