"""Process-wide metrics fabric: counters, gauges, and fixed-bucket histograms.

The registry is the write side of the observability pipeline (the read side —
Prometheus text rendering and the HTTP sidecar — lives in
:mod:`repro.obs.exposition`).  Design constraints, in order:

* **hot-path cheapness** — every instrument child carries a lock drawn from a
  small striped pool keyed by ``(metric, labels)``, so two unrelated counters
  almost never contend and an increment is one dict lookup plus one locked
  float add.  Label lookups cache the child per label-value tuple; steady-state
  request paths resolve their child once and hold it;
* **a true no-op mode** — a registry built with ``enabled=False`` hands out a
  shared :data:`NOOP` instrument whose methods do nothing, so un-instrumented
  benchmarks keep their numbers without ``if metrics:`` branches at call sites
  (``benchmarks/bench_obs.py`` measures the residual overhead);
* **thread safety everywhere** — instruments are written from bridge threads,
  shard executors, and the asyncio loop; reads (scrapes) take each child's
  stripe lock only long enough to copy values.

Histograms use **fixed, log-spaced** upper bounds (latency lives on a log
scale) with a ``+Inf`` overflow bucket and running sum/count, matching the
Prometheus histogram contract: rendered buckets are cumulative and
monotonically non-decreasing, ``+Inf`` equals ``_count``.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Iterator, Sequence

from repro.exceptions import ObsError

#: Stripe pool size: instruments hash their ``(metric, labels)`` identity into
#: one of these locks, so unrelated hot counters almost never contend.
STRIPE_COUNT = 16

#: Metric and label names follow the Prometheus data model.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Positive infinity, named for readability in bucket tables.
INF = float("inf")


def log_spaced_buckets(
    lowest: float = 100e-6, highest: float = 10.0, per_decade: int = 4
) -> tuple[float, ...]:
    """Log-spaced histogram bounds from ``lowest`` to ``highest`` inclusive.

    ``per_decade`` bounds per factor-of-ten; the ``+Inf`` overflow bucket is
    implicit (every histogram gets one).  Defaults span 100 µs to 10 s — the
    useful latency range of the pure-Python wire path.
    """
    if lowest <= 0 or highest <= lowest:
        raise ObsError("bucket range needs 0 < lowest < highest")
    if per_decade < 1:
        raise ObsError("per_decade must be at least 1")
    step = 10.0 ** (1.0 / per_decade)
    bounds: list[float] = []
    bound = lowest
    # Round to 10 significant digits so repeated multiplication noise cannot
    # make two runs render different ``le`` labels for the same bucket.
    while bound < highest * (1.0 + 1e-9):
        bounds.append(float(f"{bound:.10g}"))
        bound *= step
    return tuple(bounds)


#: Default latency bounds (seconds): 100 µs → 10 s, four buckets per decade.
DEFAULT_LATENCY_BUCKETS = log_spaced_buckets()


# ------------------------------------------------------------------ instruments


class Counter:
    """A monotonically increasing value (one label-combination's cell)."""

    __slots__ = ("_lock", "_value")

    kind = "counter"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError("counter increments must be non-negative")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the running total — for *bridge* collectors only.

        Bridged counters mirror a total owned elsewhere (e.g. a shard's WAL
        fsync count); the collector re-states the absolute value at scrape
        time instead of tracking deltas.
        """
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one label-combination's cell)."""

    __slots__ = ("_lock", "_value")

    kind = "gauge"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with running sum and count.

    Buckets store *per-bucket* counts internally; :meth:`snapshot` returns
    the cumulative view the Prometheus text format wants.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(self, lock: threading.Lock, bounds: Sequence[float]) -> None:
        self._lock = lock
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # trailing cell = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        # ``le`` is inclusive: a value equal to a bound lands in that bucket,
        # which is exactly what bisect_left yields.
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """``(cumulative_bucket_counts, sum, count)`` — one consistent copy.

        The cumulative list has ``len(bounds) + 1`` entries; the last is the
        ``+Inf`` bucket and always equals ``count``.
        """
        with self._lock:
            counts = list(self._counts)
            total, observed = self._sum, self._count
        running = 0
        cumulative: list[int] = []
        for cell in counts:
            running += cell
            cumulative.append(running)
        return cumulative, total, observed

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class _Noop:
    """Shared do-nothing instrument handed out by a disabled registry.

    Answers the full union of the instrument/family surface (``labels``
    returns itself), so call sites never branch on whether metrics are on.
    """

    __slots__ = ()

    kind = "noop"
    name = "noop"
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, *args, **kwargs) -> "_Noop":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The single no-op instrument (see :class:`_Noop`).
NOOP = _Noop()


# ---------------------------------------------------------------------- family


class MetricFamily:
    """One named metric with its labelled children.

    Families are created through the registry (:meth:`MetricsRegistry.counter`
    and friends).  ``labels(...)`` resolves (creating on first use) the child
    for one label-value combination; a family declared without label names has
    a single default child and the instrument methods are available directly
    on the family (``family.inc()``).
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._create_lock = threading.Lock()
        self._default = self._make_child(()) if not labelnames else None

    def _make_child(self, labelvalues: tuple[str, ...]) -> Counter | Gauge | Histogram:
        lock = self.registry._stripe_for(self.name, labelvalues)
        if self.kind == "counter":
            return Counter(lock)
        if self.kind == "gauge":
            return Gauge(lock)
        return Histogram(lock, self.buckets or DEFAULT_LATENCY_BUCKETS)

    def labels(self, *values, **named) -> Counter | Gauge | Histogram:
        """The child instrument for one label-value combination.

        Accepts positional values in ``labelnames`` order, or keyword values
        by label name (not both).  Values are coerced to ``str``.
        """
        if named:
            if values:
                raise ObsError(f"{self.name}: pass labels positionally or by name, not both")
            try:
                values = tuple(named[label] for label in self.labelnames)
            except KeyError as error:
                raise ObsError(f"{self.name}: missing label {error.args[0]!r}") from None
            if len(named) != len(self.labelnames):
                unknown = set(named) - set(self.labelnames)
                raise ObsError(f"{self.name}: unknown labels {sorted(unknown)}")
        if len(values) != len(self.labelnames):
            raise ObsError(
                f"{self.name} expects {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._create_lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
                    self._children[key] = child
        return child

    # Convenience: an unlabelled family *is* its single child.

    def _require_default(self) -> Counter | Gauge | Histogram:
        if self._default is None:
            raise ObsError(f"{self.name} is labelled {self.labelnames}; use .labels(...)")
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def set_total(self, value: float) -> None:
        self._require_default().set_total(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    def snapshot(self) -> tuple[list[int], float, int]:
        return self._require_default().snapshot()

    @property
    def value(self) -> float:
        return self._require_default().value

    def items(self) -> list[tuple[tuple[str, ...], Counter | Gauge | Histogram]]:
        """``(labelvalues, child)`` pairs, sorted by label values."""
        if self._default is not None:
            return [((), self._default)]
        with self._create_lock:
            pairs = list(self._children.items())
        return sorted(pairs)


# -------------------------------------------------------------------- registry


class MetricsRegistry:
    """A process-wide, thread-safe collection of metric families.

    ``enabled=False`` turns the whole registry into a no-op: every factory
    returns the shared :data:`NOOP` instrument, collectors are dropped, and
    :meth:`families` is empty — instrumented code pays a dict lookup and a
    no-op method call, nothing more.

    *Collectors* bridge externally-owned state (e.g. a
    :class:`~repro.service.stats.ServiceSnapshot`) into gauges at scrape
    time: :meth:`run_collectors` is called by the exposition renderer before
    reading families, so bridged values are as fresh as the scrape.  A
    raising collector is counted (:attr:`collector_errors`) and skipped —
    a scrape must never fail because one bridge source is mid-shutdown.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()
        self._stripes = tuple(threading.Lock() for _ in range(STRIPE_COUNT))
        self._collectors: list[Callable[[], None]] = []
        self.collector_errors = 0
        # Registered eagerly so the family shows up in scrapes (and the docs
        # inventory) even before the first collector failure.
        self._collector_errors_total = self.counter(
            "repro_collector_errors_total",
            "Scrape-time bridge collectors that raised and were skipped.",
        )

    def _stripe_for(self, name: str, labelvalues: tuple[str, ...]) -> threading.Lock:
        return self._stripes[hash((name, labelvalues)) % STRIPE_COUNT]

    # ------------------------------------------------------------- factories

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily | _Noop:
        if not self.enabled:
            return NOOP
        if not _NAME_RE.match(name):
            raise ObsError(f"invalid metric name {name!r}")
        labels = tuple(labelnames)
        for label in labels:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ObsError(f"invalid label name {label!r} on metric {name!r}")
        bounds = tuple(buckets) if buckets is not None else None
        if bounds is not None:
            if list(bounds) != sorted(set(bounds)):
                raise ObsError(f"{name}: histogram bounds must be strictly increasing")
            bounds = tuple(bound for bound in bounds if bound != INF)
            if not bounds:
                raise ObsError(f"{name}: histogram needs at least one finite bound")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labels:
                    raise ObsError(
                        f"metric {name!r} is already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            family = MetricFamily(self, name, help_text, kind, labels, bounds)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily | _Noop:
        """Register (or fetch) a counter family."""
        return self._family(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily | _Noop:
        """Register (or fetch) a gauge family."""
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily | _Noop:
        """Register (or fetch) a histogram family (default: latency buckets)."""
        return self._family(
            name, help_text, "histogram", labelnames,
            buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS,
        )

    # ------------------------------------------------------------ collection

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Add a scrape-time bridge (ignored when the registry is disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._collectors.append(collector)

    def run_collectors(self) -> None:
        """Run every bridge collector; failures are counted and skipped."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:  # noqa: BLE001 — a scrape must not fail mid-shutdown
                self.collector_errors += 1
                self._collector_errors_total.inc()

    def families(self) -> list[MetricFamily]:
        """Every registered family, sorted by metric name."""
        with self._lock:
            return sorted(self._families.values(), key=lambda family: family.name)

    def family_names(self) -> list[str]:
        """Registered metric names, sorted (the docs anti-ghost check's source)."""
        return [family.name for family in self.families()]

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(self.families())
