"""Prometheus text-format 0.0.4 exposition, plus the ``/metrics`` sidecar.

Two consumers render the same registry:

* the asyncio **HTTP sidecar** (:class:`MetricsHTTPServer`) started by
  ``repro serve --metrics-port`` — ``GET /metrics`` returns the exposition
  text, ``GET /healthz`` a liveness ``ok``.  Rendering runs in an executor
  because scrape-time collectors may take blocking service snapshots; the
  event loop only frames HTTP;
* the ``METRICS`` **wire opcode** (:mod:`repro.net`) — the same text as a
  length-prefixed RKV1 frame, so ``repro client metrics`` needs no second
  port.  Both paths call :func:`render_text`, which is what makes them
  byte-identical for the same registry state (docs/FORMATS.md §9).

:func:`parse_text` is the inverse used by tests and the CLI table printer; it
understands exactly what :func:`render_text` emits (HELP/TYPE comments,
labelled samples, histogram ``_bucket``/``_sum``/``_count`` series).
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.exceptions import NetError, ObsError
from repro.obs.metrics import INF, Histogram, MetricsRegistry

#: Content type of the exposition format this module renders.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Socket-level cap on an HTTP request head the sidecar will buffer.
_MAX_REQUEST_BYTES = 8 * 1024


def format_value(value: float) -> str:
    """Canonical sample-value rendering: integral floats drop the ``.0``."""
    if value == INF:
        return "+Inf"
    if value == -INF:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in (*zip(labelnames, labelvalues), *extra)
    ]
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_text(registry: MetricsRegistry) -> str:
    """Render every family as Prometheus text format 0.0.4.

    Runs the registry's bridge collectors first, so gauges mirroring external
    state (service snapshots, engine disk stats) are as fresh as the scrape.
    A disabled registry renders to the empty string.
    """
    if not registry.enabled:
        return ""
    registry.run_collectors()
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.items():
            if isinstance(child, Histogram):
                cumulative, total, count = child.snapshot()
                bounds = (*child.bounds, INF)
                for bound, running in zip(bounds, cumulative):
                    labels = _render_labels(
                        family.labelnames, labelvalues, (("le", format_value(bound)),)
                    )
                    lines.append(f"{family.name}_bucket{labels} {running}")
                labels = _render_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{labels} {format_value(total)}")
                lines.append(f"{family.name}_count{labels} {count}")
            else:
                labels = _render_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}{labels} {format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


# -------------------------------------------------------------------- parsing


def _parse_label_block(block: str, where: str) -> tuple[tuple[str, str], ...]:
    pairs: list[tuple[str, str]] = []
    position = 0
    while position < len(block):
        equals = block.index("=", position)
        name = block[position:equals]
        if block[equals + 1] != '"':
            raise ObsError(f"unquoted label value in {where!r}")
        value_chars: list[str] = []
        cursor = equals + 2
        while True:
            char = block[cursor]
            if char == "\\":
                escape = block[cursor + 1]
                value_chars.append({"n": "\n", "\\": "\\", '"': '"'}.get(escape, escape))
                cursor += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            cursor += 1
        pairs.append((name, "".join(value_chars)))
        position = cursor + 1
        if position < len(block) and block[position] == ",":
            position += 1
    return tuple(pairs)


def parse_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, sorted_label_pairs): value}``.

    Histogram series come back under their rendered sample names
    (``*_bucket`` with an ``le`` label, ``*_sum``, ``*_count``).  Comment and
    blank lines are skipped; a malformed sample raises
    :class:`~repro.exceptions.ObsError`.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ObsError(f"malformed exposition line {line!r}")
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            if not rest.endswith("}"):
                raise ObsError(f"unterminated label block in {line!r}")
            labels = _parse_label_block(rest[:-1], line)
        else:
            name, labels = name_part, ()
        try:
            value = float(value_part.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as error:
            raise ObsError(f"bad sample value in {line!r}: {error}") from None
        samples[(name, tuple(sorted(labels)))] = value
    return samples


# ----------------------------------------------------------------- HTTP sidecar


class MetricsHTTPServer:
    """Minimal asyncio HTTP/1.1 sidecar: ``GET /metrics`` and ``GET /healthz``.

    Deliberately not a web framework: it answers exactly two GET paths, sets
    ``Connection: close`` on every response, and rejects anything else with
    404/405.  ``render`` is a *blocking* callable (scrape collectors snapshot
    the service) and is run in the default executor, never on the loop.
    """

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self.scrapes = 0

    async def start(self) -> None:
        if self._server is not None:
            raise NetError("metrics sidecar is already started")
        try:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port
            )
        except OSError as error:
            raise NetError(
                f"cannot bind metrics sidecar {self.host}:{self.port}: {error}"
            ) from error

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves an ephemeral port)."""
        if self._server is None or not self._server.sockets:
            raise NetError("metrics sidecar is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    ConnectionError, OSError):
                return
            if len(head) > _MAX_REQUEST_BYTES:
                await self._respond(writer, 400, "request too large\n")
                return
            request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            parts = request_line.split(" ")
            if len(parts) != 3:
                await self._respond(writer, 400, "malformed request line\n")
                return
            method, path, _ = parts
            path = path.split("?", 1)[0]
            if method != "GET":
                await self._respond(writer, 405, "only GET is supported\n")
                return
            if path == "/healthz":
                await self._respond(writer, 200, "ok\n")
            elif path == "/metrics":
                loop = asyncio.get_running_loop()
                body = await loop.run_in_executor(None, self._render)
                self.scrapes += 1
                await self._respond(writer, 200, body, content_type=CONTENT_TYPE)
            else:
                await self._respond(writer, 404, f"unknown path {path}\n")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "OK")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
