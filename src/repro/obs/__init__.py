"""``repro.obs`` — metrics fabric, Prometheus exposition, overload protection.

The observability layer of the serving stack (ROADMAP item 5): the write
side is a process-wide :class:`MetricsRegistry` of counters, gauges, and
log-spaced-bucket histograms; the read side renders Prometheus text format
0.0.4 over an asyncio HTTP sidecar (``repro serve --metrics-port``) *and*
over the RKV1 ``METRICS`` opcode (``repro client metrics``); the protection
side supplies the token buckets and slow-request log the server enforces its
per-connection limits with.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, :class:`Counter`,
  :class:`Gauge`, :class:`Histogram`; lock-striped children, label support,
  and an ``enabled=False`` no-op mode so un-instrumented benchmarks keep
  their numbers;
* :mod:`repro.obs.exposition` — :func:`render_text` / :func:`parse_text`
  (text format 0.0.4) and the :class:`MetricsHTTPServer` sidecar
  (``GET /metrics`` + ``GET /healthz``);
* :mod:`repro.obs.limits` — :class:`TokenBucket`, :class:`RequestLimits`,
  :class:`SlowRequestLog`; enforcement and the typed
  :class:`~repro.exceptions.RateLimitedError` /
  :class:`~repro.exceptions.LimitExceededError` relays live in
  :mod:`repro.net.server`.

Quick start::

    from repro.obs import MetricsRegistry, render_text

    registry = MetricsRegistry()
    requests = registry.counter("app_requests_total", "Requests.", ("opcode",))
    requests.labels("GET").inc()
    print(render_text(registry))
"""

from repro.obs.exposition import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    format_value,
    parse_text,
    render_text,
)
from repro.obs.limits import RequestLimits, SlowRequestLog, TokenBucket
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NOOP,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    log_spaced_buckets,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NOOP",
    "RequestLimits",
    "SlowRequestLog",
    "TokenBucket",
    "format_value",
    "log_spaced_buckets",
    "parse_text",
    "render_text",
]
