"""Command-line interface for the PBC reproduction (installed as ``repro``/``pbc``).

The CLI wraps the offline/online split of the paper's Figure 1 into a small
file-based workflow:

* ``pbc train`` — offline pattern extraction from a sample file or a synthetic
  dataset; writes the pattern dictionary to disk.
* ``pbc compress`` / ``pbc decompress`` — per-record compression of a text file
  (one record per line) against a trained dictionary.
* ``pbc inspect`` — print the patterns of a trained dictionary.
* ``pbc datasets`` — list the synthetic Table 2 datasets.
* ``pbc codecs`` — list the registered baseline block codecs; ``pbc codecs
  list`` prints the :mod:`repro.codecs` registry table (id, name, magic byte,
  trainable) that every storage layer shares.
* ``pbc experiments`` / ``pbc experiment <id>`` — enumerate and run the
  registered paper experiments (tables and figures).
* ``pbc stream compress|decompress|inspect|get`` — the :mod:`repro.stream`
  subsystem: seekable containers with per-frame (optionally adaptive) codecs,
  a parallel compression pipeline, and single-frame random access.
* ``pbc serve-bench`` — the :mod:`repro.service` subsystem: drives a mixed,
  batched GET/SET workload against the sharded concurrent KV service and
  reports per-shard compression ratios, cache hit rate and latency
  percentiles.
* ``pbc serve`` / ``pbc client get|set|del|ping|stats|metrics|bench`` — the
  :mod:`repro.net` subsystem: the asyncio ``RKV1`` wire server over the KV
  service (with a ``--metrics-port`` Prometheus sidecar and overload limits),
  and the pooled client (including the mixed wire workload driver with a
  pipelining-depth knob and an open-loop ``--rate`` mode).

Every command is a thin veneer over the library API, so anything the CLI does
can also be done programmatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro import ExtractionConfig, PatternDictionary, PBCCompressor, __version__
from repro.bench import render_table
from repro.bench.registry import EXPERIMENTS, get_experiment
from repro.codecs import trainable_codec_names
from repro.compressors import available_codecs
from repro.datasets import DATASET_SPECS, EXTRA_DATASET_SPECS, dataset_statistics, load_dataset
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import ReproError
from repro.lsm.wal import SYNC_MODES
from repro.stream import (
    AdaptiveConfig,
    StreamConfig,
    StreamContainerReader,
    StreamReader,
    compress_stream,
    decompress_stream,
    frame_codec_by_id,
    frame_codec_names,
)

#: Magic prefix of compressed record files produced by ``pbc compress``.
_FILE_MAGIC = b"PBC1"


# ------------------------------------------------------------------ utilities


def _read_records(path: Path) -> list[str]:
    """Read one record per line (the trailing newline is not part of the record)."""
    text = path.read_text(encoding="utf-8")
    if text.endswith("\n"):
        text = text[:-1]
    return text.split("\n") if text else []


def _load_training_records(args: argparse.Namespace) -> list[str]:
    """Training records from ``--input`` or ``--dataset``."""
    if args.input is not None:
        return _read_records(Path(args.input))
    return load_dataset(args.dataset, count=args.count)


def _build_config(args: argparse.Namespace) -> ExtractionConfig:
    return ExtractionConfig(
        max_patterns=args.max_patterns,
        sample_size=args.sample_size,
        seed=args.seed,
    )


# ------------------------------------------------------------------- commands


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in DATASET_SPECS.items():
        row = {
            "dataset": name,
            "category": spec.category,
            "description": spec.description,
            "paper_records": f"{spec.paper_records:,.0f}",
            "paper_avg_len": spec.paper_avg_len,
        }
        if args.stats:
            statistics = dataset_statistics(name)
            row["generated_avg_len"] = round(statistics.avg_record_len, 1)
        rows.append(row)
    print(render_table(rows, title="Synthetic datasets (Table 2)"))
    return 0


def _cmd_codecs(_: argparse.Namespace) -> int:
    for name in available_codecs():
        print(name)
    return 0


def _cmd_codecs_list(_: argparse.Namespace) -> int:
    from repro.codecs import codec_inventory

    print(render_table(codec_inventory(), title="Registered codecs (repro.codecs)"))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    records = _load_training_records(args)
    if not records:
        print("error: no training records", file=sys.stderr)
        return 2
    compressor = PBCCompressor(config=_build_config(args))
    report = compressor.train(records)
    Path(args.output).write_bytes(report.dictionary.to_bytes())
    print(f"trained {len(report.dictionary)} patterns from {report.sample_count} sampled records")
    print(f"dictionary written to {args.output} ({Path(args.output).stat().st_size} bytes)")
    if args.verbose:
        for pattern in report.dictionary:
            print(f"  [{pattern.pattern_id}] {pattern.display()}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    dictionary = PatternDictionary.from_bytes(Path(args.dictionary).read_bytes())
    print(f"{len(dictionary)} patterns")
    for pattern in dictionary:
        print(f"  [{pattern.pattern_id}] {pattern.display()}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    dictionary = PatternDictionary.from_bytes(Path(args.dictionary).read_bytes())
    compressor = PBCCompressor(dictionary=dictionary)
    records = _read_records(Path(args.input))
    payloads = compressor.compress_many(records)
    out = bytearray(_FILE_MAGIC)
    out += encode_uvarint(len(payloads))
    for payload in payloads:
        out += encode_uvarint(len(payload))
        out += payload
    Path(args.output).write_bytes(bytes(out))
    original = sum(len(record.encode("utf-8")) for record in records)
    compressed = len(out)
    ratio = compressed / original if original else 1.0
    print(f"compressed {len(records)} records: {original} -> {compressed} bytes (ratio {ratio:.3f})")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    dictionary = PatternDictionary.from_bytes(Path(args.dictionary).read_bytes())
    compressor = PBCCompressor(dictionary=dictionary)
    data = Path(args.input).read_bytes()
    if not data.startswith(_FILE_MAGIC):
        print("error: input is not a pbc-compressed file", file=sys.stderr)
        return 2
    count, offset = decode_uvarint(data, len(_FILE_MAGIC))
    records: list[str] = []
    for _ in range(count):
        length, offset = decode_uvarint(data, offset)
        end = offset + length
        records.append(compressor.decompress(data[offset:end]))
        offset = end
    Path(args.output).write_text("\n".join(records) + ("\n" if records else ""), encoding="utf-8")
    print(f"decompressed {count} records to {args.output}")
    return 0


# ------------------------------------------------------------ stream commands


def _stream_input_records(args: argparse.Namespace) -> list[str]:
    """Records for ``stream compress`` from ``--input`` or ``--dataset``."""
    if args.input is not None:
        return _read_records(Path(args.input))
    return load_dataset(args.dataset, count=args.count)


def _cmd_stream_compress(args: argparse.Namespace) -> int:
    records = _stream_input_records(args)
    if not records:
        print("error: no input records", file=sys.stderr)
        return 2
    config = StreamConfig(
        codec=args.codec,
        frame_records=args.frame_records,
        workers=args.workers,
        executor=args.executor,
        timed_stats=True,
        adaptive=AdaptiveConfig(sample_size=args.sample_size),
    )
    summary = compress_stream(records, Path(args.output), config)
    stats = summary.stats
    assert stats is not None
    usage = ", ".join(f"{name}×{count}" for name, count in sorted(summary.codec_usage.items()))
    print(
        f"compressed {stats.records} records into {len(summary.frames)} frames: "
        f"{stats.original_bytes} -> {Path(args.output).stat().st_size} bytes "
        f"(payload ratio {stats.ratio:.3f})"
    )
    print(f"frame codecs: {usage}; outliers {stats.outliers}; retrains {summary.retrain_count}")
    return 0


def _cmd_stream_decompress(args: argparse.Namespace) -> int:
    records = decompress_stream(Path(args.input), workers=args.workers)
    Path(args.output).write_text("\n".join(records) + ("\n" if records else ""), encoding="utf-8")
    print(f"decompressed {len(records)} records to {args.output}")
    return 0


def _cmd_stream_inspect(args: argparse.Namespace) -> int:
    with StreamContainerReader(Path(args.input)) as container:
        print(
            f"stream container v{container.version}: "
            f"{container.record_count} records in {container.frame_count} frames"
        )
        rows = [
            {
                "frame": position,
                "codec": frame_codec_by_id(frame.codec_id).name,
                "records": frame.record_count,
                "first_record": frame.first_record,
                "bytes": frame.length,
            }
            for position, frame in enumerate(container.frames)
        ]
        if rows:
            print(render_table(rows, title="Frames"))
    return 0


def _cmd_stream_get(args: argparse.Namespace) -> int:
    with StreamReader(Path(args.input)) as reader:
        record = reader.get(args.index)
        if args.verbose:
            print(
                f"record {args.index} (frame {reader.frame_for_record(args.index)}, "
                f"{reader.frames_decompressed} frame(s) decompressed):",
                file=sys.stderr,
            )
        print(record)
    return 0


# ------------------------------------------------------------- serve-bench


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.service import KVService, ServiceConfig, run_mixed_workload

    values = load_dataset(args.dataset, count=args.count)
    directory = args.directory
    temporary = None
    if args.backend == "lsm" and directory is None:
        import tempfile

        temporary = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        directory = temporary.name
    config = ServiceConfig(
        shard_count=args.shards,
        backend=args.backend,
        compressor=args.compressor,
        directory=directory,
        cache_entries=args.cache_entries,
        train_size=args.train_size,
    )
    try:
        with KVService(config) as service:
            result = run_mixed_workload(
                service,
                values,
                operations=args.ops,
                get_fraction=args.get_fraction,
                batch_size=args.batch_size,
                clients=args.clients,
                seed=args.seed,
            )
    finally:
        if temporary is not None:
            temporary.cleanup()
    print(
        f"{result.operations} mixed operations ({result.get_operations} GET / "
        f"{result.set_operations} SET) over {args.shards} {args.backend} shard(s) "
        f"with {args.clients} client(s): {result.ops_per_second:,.0f} ops/s"
    )
    print(render_table(result.shard_rows(), title="Per-shard compression"))
    print(render_table(result.summary_rows(), title="Service summary"))
    return 0


# ------------------------------------------------------------- serve / client


def _build_service(args: argparse.Namespace):
    """Build (and optionally train) a KVService from serve-style arguments.

    Returns ``(service, reopened, cleanup)``: ``reopened`` is whether the
    data directory already held shard state — the shards then come back with
    their data and trained model epochs intact.  Pre-training is skipped only
    when *trained* state (``models.bin`` / ``snapshot.tbs``) actually exists:
    bare ``shard-*`` directories from a run killed before its first
    flush/train must not leave a restarted server silently untrained.
    ``cleanup`` disposes any temp dir auto-created for the lsm backend.
    """
    from repro.service import KVService, ServiceConfig

    directory = args.directory
    temporary = None
    if args.backend == "lsm" and directory is None:
        import tempfile

        temporary = tempfile.TemporaryDirectory(prefix="repro-serve-")
        directory = temporary.name
    base = Path(directory) if directory is not None else None
    trained_state = base is not None and (
        any(base.glob("shard-*/models.bin")) or any(base.glob("shard-*/snapshot.tbs"))
    )
    reopened = trained_state or (
        base is not None and any(base.glob("shard-*/sstable-*.sst"))
    )
    config = ServiceConfig(
        shard_count=args.shards,
        backend=args.backend,
        compressor=args.compressor,
        directory=directory,
        sync_mode=getattr(args, "sync_mode", "flush"),
        cache_entries=args.cache_entries,
        train_size=args.train_size,
        background_compaction=getattr(args, "background_compaction", True),
    )
    service = KVService(config)
    if args.compressor != "none" and not trained_state:
        sample = load_dataset(args.train_dataset, count=args.train_count)
        service.train(sample)
    return service, reopened, (temporary.cleanup if temporary is not None else (lambda: None))


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net import KVServer, ServerConfig

    service, reopened, cleanup = _build_service(args)

    async def main() -> None:
        server = KVServer(
            service,
            ServerConfig(
                host=args.host,
                port=args.port,
                max_inflight=args.max_inflight,
                metrics_port=args.metrics_port,
                max_value_bytes=args.max_value_bytes,
                max_batch_items=args.max_batch_items,
                rate_limit=args.rate_limit,
                rate_burst=args.rate_burst,
                slow_request_seconds=args.slow_ms / 1e3,
            ),
        )
        await server.start()
        host, port = server.address
        state = f"reopened {len(service)} key(s) from {args.directory}" if reopened else "fresh"
        print(
            f"serving {args.shards} {args.backend} shard(s) "
            f"({args.compressor} compression, {state}) on {host}:{port}"
        )
        if server.metrics_sidecar is not None:
            metrics_host, metrics_port = server.metrics_address
            print(f"metrics on http://{metrics_host}:{metrics_port}/metrics")
        try:
            if args.serve_seconds is None:
                await server.serve_forever()
            else:
                await asyncio.sleep(args.serve_seconds)
        finally:
            await server.stop()
            print(
                f"drained: {server.connections_served} connection(s) served, "
                f"{len(service)} key(s) stored"
            )

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    finally:
        service.close()
        cleanup()
    return 0


def _client(args: argparse.Namespace):
    from repro.net import KVClient

    return KVClient(args.host, args.port, timeout=args.timeout)


def _cmd_client_get(args: argparse.Namespace) -> int:
    with _client(args) as client:
        value = client.get(args.key)
    if value is None:
        print(f"(key {args.key!r} not found)", file=sys.stderr)
        return 1
    print(value)
    return 0


def _cmd_client_set(args: argparse.Namespace) -> int:
    with _client(args) as client:
        client.set(args.key, args.value)
    print("OK")
    return 0


def _cmd_client_del(args: argparse.Namespace) -> int:
    with _client(args) as client:
        existed = client.delete(args.key)
    print("deleted" if existed else "(key did not exist)")
    return 0


def _cmd_client_scan(args: argparse.Namespace) -> int:
    count = 0
    with _client(args) as client:
        for key, value in client.scan(args.start, args.end, limit=args.limit):
            print(f"{key}\t{value}")
            count += 1
    print(f"({count} result(s))", file=sys.stderr)
    return 0


def _cmd_client_ping(args: argparse.Namespace) -> int:
    import time

    with _client(args) as client:
        started = time.perf_counter()
        client.ping()
        elapsed = time.perf_counter() - started
    print(f"PONG in {elapsed * 1e3:.2f} ms")
    return 0


def _cmd_client_stats(args: argparse.Namespace) -> int:
    with _client(args) as client:
        stats = client.stats()
    if args.raw:
        import json

        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    shards = stats.pop("shards", [])
    print(render_table([{"metric": key, "value": value} for key, value in stats.items()],
                       title="Service stats"))
    if shards:
        print(render_table(shards, title="Per-shard"))
    return 0


def _cmd_client_metrics(args: argparse.Namespace) -> int:
    with _client(args) as client:
        text = client.metrics()
    if args.raw:
        # The exposition text exactly as the HTTP sidecar would serve it.
        sys.stdout.write(text)
        return 0
    from repro.obs import parse_text

    rows = [
        {
            "name": name,
            "labels": ",".join(f"{label}={value}" for label, value in labels) or "-",
            "value": f"{value:g}",
        }
        for (name, labels), value in sorted(parse_text(text).items())
    ]
    if not rows:
        print("(metrics disabled on this server)")
        return 0
    print(render_table(rows, title="Server metrics"))
    return 0


def _cmd_client_bench(args: argparse.Namespace) -> int:
    from repro.net import run_open_loop_workload, run_wire_workload

    values = load_dataset(args.dataset, count=args.count)
    if args.rate:
        result = run_open_loop_workload(
            args.host,
            args.port,
            values,
            rate=args.rate,
            operations=args.ops,
            get_fraction=args.get_fraction,
            workers=args.clients,
            seed=args.seed,
            preload=not args.no_preload,
            timeout=args.timeout,
        )
        print(
            f"open loop: offered {result.offered_rate:,.0f} ops/s, achieved "
            f"{result.achieved_rate:,.0f} ops/s ({result.completed}/{result.offered_operations} "
            f"completed, {result.errors} error(s))"
        )
        print(render_table(result.summary_rows(), title="Open-loop wire workload"))
        return 0
    result = run_wire_workload(
        args.host,
        args.port,
        values,
        operations=args.ops,
        get_fraction=args.get_fraction,
        batch_size=args.batch_size,
        clients=args.clients,
        pipeline_depth=args.depth,
        seed=args.seed,
        preload=not args.no_preload,
        timeout=args.timeout,
    )
    mode = f"pipeline depth {args.depth}" if args.depth else "mget/mset batches"
    print(
        f"{result.operations} wire operations ({result.get_operations} GET / "
        f"{result.set_operations} SET) from {args.clients} client(s), {mode}: "
        f"{result.ops_per_second:,.0f} ops/s"
    )
    print(render_table(result.summary_rows(), title="Wire workload"))
    if result.lost_responses or result.corrupt_responses:
        print("error: lost or corrupted responses detected", file=sys.stderr)
        return 1
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import run_suite, scenario_names

    names = args.mixes or scenario_names()
    results = run_suite(
        names,
        backends=tuple(args.backends),
        operations=args.ops,
        rate=args.rate,
        workers=args.clients,
        records=args.records,
        value_count=args.values,
        seed=args.seed,
        shard_count=args.shards,
        compressor=args.compressor,
    )
    rows = [result.row() for result in results]
    if args.output:
        Path(args.output).write_text(json.dumps(rows, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {len(rows)} row(s) to {args.output}", file=sys.stderr)
    if args.raw:
        for row in rows:
            print(json.dumps(row))
    else:
        table_rows = [
            {
                "scenario": row["scenario"],
                "backend": row["backend"],
                "ops": row["operations"],
                "errors": row["errors"],
                "achieved/s": f"{row['achieved_rate']:,.0f}",
                "p50 ms": f"{row['p50_ms']:.3f}",
                "p95 ms": f"{row['p95_ms']:.3f}",
                "p99 ms": f"{row['p99_ms']:.3f}",
                "scans": row["scan_count"],
                "avg len": row["avg_scan_len"],
                "lost": row["lost"],
                "corrupt": row["corrupt"],
            }
            for row in rows
        ]
        print(render_table(table_rows, title="Scenario suite"))
    dirty = [result for result in results if not result.clean]
    if dirty:
        for result in dirty:
            print(
                f"error: scenario {result.scenario!r} on {result.backend}: "
                f"{result.lost} lost, {result.corrupt} corrupt, "
                f"{result.unordered} unordered",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_experiments(_: argparse.Namespace) -> int:
    rows = [
        {
            "id": experiment.experiment_id,
            "artifact": experiment.paper_artifact,
            "description": experiment.description,
            "bench": experiment.bench_module,
        }
        for experiment in EXPERIMENTS.values()
    ]
    print(render_table(rows, title="Registered experiments"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.id)
    rows = experiment.runner()
    print(render_table(rows, title=f"{experiment.paper_artifact}: {experiment.description}"))
    return 0


# ---------------------------------------------------------------------- bench


def _bench_overrides(args: argparse.Namespace) -> dict:
    overrides: dict[str, object] = {}
    for knob in ("operations", "values", "records", "rate", "clients", "workers", "seconds"):
        value = getattr(args, knob, None)
        if value is not None:
            overrides[knob] = value
    return overrides


def _cmd_bench_run(args: argparse.Namespace) -> int:
    import json

    from repro.bench import harness

    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    document = harness.run_area(
        args.area,
        repetitions=args.repetitions,
        warmup=args.warmup,
        overrides=_bench_overrides(args) or None,
        pairs=not args.no_pairs,
        progress=progress,
    )
    payload = json.dumps(document, indent=2) + "\n"
    output = args.output
    if output == "-":
        print(payload, end="")
        return 0
    if output is None:
        output = str(harness.default_output_path(args.area))
    Path(output).write_text(payload, encoding="utf-8")
    print(f"wrote {len(document['rows'])} rows to {output}")
    if not args.raw:
        print(render_table(document["rows"], title=f"bench {args.area} run table"))
        if document["optimizations"]:
            print(render_table(document["optimizations"], title="optimization pairs"))
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import harness

    old_path = Path(args.old)
    if not old_path.exists():
        if args.require_baseline:
            print(f"error: baseline {old_path} does not exist", file=sys.stderr)
            return 2
        print(f"warning: baseline {old_path} does not exist; nothing to compare", file=sys.stderr)
        return 0
    old_document = harness.load_document(old_path)
    new_document = harness.load_document(args.new)
    report, regressions = harness.compare_documents(
        old_document,
        new_document,
        threshold=args.threshold,
        latency_threshold=args.latency_threshold,
    )
    if args.raw:
        import json

        print(json.dumps({"threshold": args.threshold, "regressions": regressions, "cells": report}, indent=2))
    else:
        print(render_table(report, title=f"bench compare ({args.threshold:.0%} threshold)"))
    if regressions:
        print(f"error: {regressions} cell(s) regressed past the threshold", file=sys.stderr)
        return 1
    return 0


def _cmd_oplog_dump(args: argparse.Namespace) -> int:
    from repro.oplog import OP_CHECKPOINT, OP_DELETE, OP_PUT, iter_records

    op_names = {OP_PUT: "put", OP_DELETE: "delete", OP_CHECKPOINT: "checkpoint"}
    data = Path(args.file).read_bytes()
    rows = []
    for record in iter_records(data, start_lsn=args.start_lsn):
        rows.append(
            {
                "lsn": record.lsn,
                "op": op_names.get(record.op, f"op{record.op}"),
                "key": record.key,
                "value_bytes": len(record.value),
                "epoch": record.epoch,
            }
        )
    if args.raw:
        import json

        print(json.dumps(rows, indent=2))
    else:
        print(render_table(rows, title=f"oplog {args.file} ({len(rows)} records)"))
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import harness

    rows = [harness.get_area(name).summary_row() for name in harness.area_names()]
    if args.raw:
        import json

        print(json.dumps(rows, indent=2))
    else:
        print(render_table(rows, title="Benchmark areas"))
    return 0


def _cmd_bench_profile(args: argparse.Namespace) -> int:
    from repro.bench import harness

    print(harness.profile_target(args.target, top=args.top, sort=args.sort))
    return 0


# --------------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="pbc",
        description="Pattern-Based Compression (SIGMOD 2023 reproduction) command-line tool.",
    )
    parser.add_argument("--version", action="version", version=f"pbc {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="list the synthetic Table 2 datasets")
    datasets.add_argument("--stats", action="store_true", help="also generate and measure each dataset")
    datasets.set_defaults(func=_cmd_datasets)

    codecs = subparsers.add_parser(
        "codecs",
        help="list codecs (bare: baseline block codecs; 'list': the repro.codecs registry)",
    )
    codecs.set_defaults(func=_cmd_codecs)
    codecs_sub = codecs.add_subparsers(dest="codecs_command", required=False)
    codecs_list = codecs_sub.add_parser(
        "list", help="table of every registered codec: id, name, magic, trainable"
    )
    codecs_list.set_defaults(func=_cmd_codecs_list)

    train = subparsers.add_parser("train", help="extract a pattern dictionary (offline phase)")
    source = train.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="training file with one record per line")
    source.add_argument(
        "--dataset",
        choices=sorted(DATASET_SPECS) + sorted(EXTRA_DATASET_SPECS),
        help="synthetic dataset name",
    )
    train.add_argument("--count", type=int, default=None, help="records to generate for --dataset")
    train.add_argument("--output", required=True, help="path for the trained dictionary")
    train.add_argument("--max-patterns", type=int, default=16, help="pattern budget (default 16)")
    train.add_argument("--sample-size", type=int, default=256, help="training sample size (default 256)")
    train.add_argument("--seed", type=int, default=2023, help="sampling seed")
    train.add_argument("--verbose", action="store_true", help="print the extracted patterns")
    train.set_defaults(func=_cmd_train)

    inspect = subparsers.add_parser("inspect", help="print the patterns of a trained dictionary")
    inspect.add_argument("--dictionary", required=True, help="dictionary file produced by 'pbc train'")
    inspect.set_defaults(func=_cmd_inspect)

    compress = subparsers.add_parser("compress", help="compress a record file with a trained dictionary")
    compress.add_argument("--dictionary", required=True, help="dictionary file produced by 'pbc train'")
    compress.add_argument("--input", required=True, help="text file with one record per line")
    compress.add_argument("--output", required=True, help="output file for the compressed records")
    compress.set_defaults(func=_cmd_compress)

    decompress = subparsers.add_parser("decompress", help="decompress a file produced by 'pbc compress'")
    decompress.add_argument("--dictionary", required=True, help="dictionary file produced by 'pbc train'")
    decompress.add_argument("--input", required=True, help="compressed file")
    decompress.add_argument("--output", required=True, help="output text file")
    decompress.set_defaults(func=_cmd_decompress)

    stream = subparsers.add_parser("stream", help="seekable stream containers (repro.stream)")
    stream_sub = stream.add_subparsers(dest="stream_command", required=True)

    stream_compress = stream_sub.add_parser(
        "compress", help="compress records into a seekable stream container"
    )
    stream_source = stream_compress.add_mutually_exclusive_group(required=True)
    stream_source.add_argument("--input", help="text file with one record per line")
    stream_source.add_argument(
        "--dataset",
        choices=sorted(DATASET_SPECS) + sorted(EXTRA_DATASET_SPECS),
        help="synthetic dataset name",
    )
    stream_compress.add_argument("--count", type=int, default=None, help="records for --dataset")
    stream_compress.add_argument("--output", required=True, help="output container file")
    stream_compress.add_argument(
        "--codec",
        default="adaptive",
        choices=["adaptive"] + frame_codec_names(),
        help="frame codec, or 'adaptive' for per-frame selection (default)",
    )
    stream_compress.add_argument(
        "--frame-records", type=int, default=2048, help="records per frame (default 2048)"
    )
    stream_compress.add_argument(
        "--workers", type=int, default=0, help="parallel frame-compression workers (0 = inline)"
    )
    stream_compress.add_argument(
        "--executor",
        default="auto",
        choices=["auto", "thread", "process", "serial"],
        help="worker pool kind (default auto)",
    )
    stream_compress.add_argument(
        "--sample-size", type=int, default=64, help="adaptive scoring sample per frame"
    )
    stream_compress.set_defaults(func=_cmd_stream_compress)

    stream_decompress = stream_sub.add_parser(
        "decompress", help="decompress a stream container back to text"
    )
    stream_decompress.add_argument("--input", required=True, help="stream container file")
    stream_decompress.add_argument("--output", required=True, help="output text file")
    stream_decompress.add_argument(
        "--workers", type=int, default=0, help="parallel frame-decompression workers"
    )
    stream_decompress.set_defaults(func=_cmd_stream_decompress)

    stream_inspect = stream_sub.add_parser(
        "inspect", help="print the frame index of a stream container"
    )
    stream_inspect.add_argument("--input", required=True, help="stream container file")
    stream_inspect.set_defaults(func=_cmd_stream_inspect)

    stream_get = stream_sub.add_parser(
        "get", help="random-access one record (decompresses a single frame)"
    )
    stream_get.add_argument("--input", required=True, help="stream container file")
    stream_get.add_argument("--index", type=int, required=True, help="record index")
    stream_get.add_argument("--verbose", action="store_true", help="report the frame touched")
    stream_get.set_defaults(func=_cmd_stream_get)

    serve_bench = subparsers.add_parser(
        "serve-bench", help="benchmark the sharded concurrent KV service (repro.service)"
    )
    serve_bench.add_argument(
        "--dataset",
        default="kv1",
        choices=sorted(DATASET_SPECS) + sorted(EXTRA_DATASET_SPECS),
        help="synthetic dataset providing the values (default kv1)",
    )
    serve_bench.add_argument("--count", type=int, default=2000, help="values to load (default 2000)")
    serve_bench.add_argument("--shards", type=int, default=4, help="shard count (default 4)")
    serve_bench.add_argument(
        "--backend",
        default="tierbase",
        choices=["tierbase", "lsm"],
        help="shard backend (default tierbase)",
    )
    # "none" + every trainable registry codec — the same menu the service's
    # COMPRESSOR_CHOICES derives (pinned by a test); computed here from the
    # registry directly so the CLI does not import the service stack eagerly.
    serve_bench.add_argument(
        "--compressor",
        default="pbc_f",
        choices=["none", *trainable_codec_names()],
        help="per-shard value compressor, from the codec registry (default pbc_f)",
    )
    serve_bench.add_argument(
        "--directory", default=None, help="base directory for the lsm backend (default: temp dir)"
    )
    serve_bench.add_argument("--ops", type=int, default=4096, help="mixed operations (default 4096)")
    serve_bench.add_argument(
        "--get-fraction", type=float, default=0.7, help="fraction of GET batches (default 0.7)"
    )
    serve_bench.add_argument("--batch-size", type=int, default=16, help="mget/mset batch size")
    serve_bench.add_argument("--clients", type=int, default=2, help="client threads (default 2)")
    serve_bench.add_argument(
        "--cache-entries", type=int, default=1024, help="compressed read-cache entries"
    )
    serve_bench.add_argument(
        "--train-size", type=int, default=256, help="training/retraining sample size"
    )
    serve_bench.add_argument("--seed", type=int, default=2023, help="workload seed")
    serve_bench.set_defaults(func=_cmd_serve_bench)

    serve = subparsers.add_parser(
        "serve", help="serve the sharded KV service over the RKV1 wire protocol (repro.net)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=9100, help="TCP port (default 9100; 0 = ephemeral)")
    serve.add_argument("--shards", type=int, default=4, help="shard count (default 4)")
    serve.add_argument(
        "--backend", default="tierbase", choices=["tierbase", "lsm"],
        help="shard backend (default tierbase)",
    )
    serve.add_argument(
        "--compressor",
        default="pbc_f",
        choices=["none", *trainable_codec_names()],
        help="per-shard value compressor (default pbc_f)",
    )
    serve.add_argument(
        "--data-dir", "--directory", dest="directory", default=None,
        help="persistent data directory: shards (both backends) reopen from it on "
             "restart with data, models and epochs intact (default: lsm uses a "
             "temp dir, tierbase stays in-memory)",
    )
    serve.add_argument(
        "--sync-mode", default="flush", choices=list(SYNC_MODES),
        help="lsm WAL durability per acknowledged write: none (buffered), flush "
             "(survives process kill; default), fsync (survives machine crash)",
    )
    serve.add_argument(
        "--no-background-compaction", dest="background_compaction",
        action="store_false", default=True,
        help="compact lsm shards inline on the write path instead of on the "
             "per-shard background scheduler (deterministic, but sustained "
             "writes sawtooth; ignored by tierbase)",
    )
    serve.add_argument("--cache-entries", type=int, default=1024, help="compressed read-cache entries")
    serve.add_argument("--train-size", type=int, default=256, help="retraining reservoir size")
    serve.add_argument(
        "--train-dataset",
        default="kv1",
        choices=sorted(DATASET_SPECS) + sorted(EXTRA_DATASET_SPECS),
        help="dataset used to pre-train the shard compressors (default kv1)",
    )
    serve.add_argument("--train-count", type=int, default=256, help="pre-training sample size")
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="pipelined requests in flight per connection before backpressure",
    )
    serve.add_argument(
        "--serve-seconds", type=float, default=None,
        help="serve for N seconds then drain and exit (default: until interrupted)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve Prometheus text on http://HOST:PORT/metrics (0 = ephemeral; "
             "default: no HTTP sidecar — the METRICS opcode always works)",
    )
    serve.add_argument(
        "--max-value-bytes", type=int, default=0,
        help="reject SET/MSET values larger than this (0 = unlimited)",
    )
    serve.add_argument(
        "--max-batch-items", type=int, default=0,
        help="reject MGET/MSET batches larger than this (0 = unlimited)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="per-connection request budget in req/s (0 = unlimited)",
    )
    serve.add_argument(
        "--rate-burst", type=int, default=0,
        help="token-bucket burst capacity (0 = max(1, rate))",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=0.0,
        help="log requests slower than this many milliseconds (0 = off)",
    )
    serve.set_defaults(func=_cmd_serve)

    client = subparsers.add_parser("client", help="talk to a running 'repro serve' endpoint")
    client.add_argument("--host", default="127.0.0.1", help="server host (default 127.0.0.1)")
    client.add_argument("--port", type=int, default=9100, help="server port (default 9100)")
    client.add_argument("--timeout", type=float, default=30.0, help="socket timeout seconds")
    client_sub = client.add_subparsers(dest="client_command", required=True)

    client_get = client_sub.add_parser("get", help="fetch one key")
    client_get.add_argument("key")
    client_get.set_defaults(func=_cmd_client_get)

    client_set = client_sub.add_parser("set", help="store one key")
    client_set.add_argument("key")
    client_set.add_argument("value")
    client_set.set_defaults(func=_cmd_client_set)

    client_del = client_sub.add_parser("del", help="delete one key")
    client_del.add_argument("key")
    client_del.set_defaults(func=_cmd_client_del)

    client_scan = client_sub.add_parser(
        "scan", help="range scan: ordered key/value pairs in [START, END)"
    )
    client_scan.add_argument("start", nargs="?", default=None, help="inclusive start bound (omit for open)")
    client_scan.add_argument("end", nargs="?", default=None, help="exclusive end bound (omit for open)")
    client_scan.add_argument("--limit", type=int, default=0, help="max pairs to return (0 = unlimited)")
    client_scan.set_defaults(func=_cmd_client_scan)

    client_ping = client_sub.add_parser("ping", help="round-trip latency check")
    client_ping.set_defaults(func=_cmd_client_ping)

    client_stats = client_sub.add_parser("stats", help="service-wide statistics tables")
    client_stats.add_argument(
        "--raw", action="store_true", help="print the raw JSON document instead of tables"
    )
    client_stats.set_defaults(func=_cmd_client_stats)

    client_metrics = client_sub.add_parser(
        "metrics", help="server metrics over the METRICS opcode (no HTTP needed)"
    )
    client_metrics.add_argument(
        "--raw", action="store_true",
        help="print the Prometheus exposition text instead of a table",
    )
    client_metrics.set_defaults(func=_cmd_client_metrics)

    client_bench = client_sub.add_parser(
        "bench", help="mixed GET/SET wire workload (throughput, latency, pipelining)"
    )
    client_bench.add_argument(
        "--dataset",
        default="kv1",
        choices=sorted(DATASET_SPECS) + sorted(EXTRA_DATASET_SPECS),
        help="synthetic dataset providing the values (default kv1)",
    )
    client_bench.add_argument("--count", type=int, default=1000, help="values to preload")
    client_bench.add_argument("--ops", type=int, default=2048, help="mixed operations")
    client_bench.add_argument("--get-fraction", type=float, default=0.7, help="GET fraction")
    client_bench.add_argument("--batch-size", type=int, default=8, help="mget/mset batch size")
    client_bench.add_argument("--clients", type=int, default=2, help="client threads")
    client_bench.add_argument(
        "--depth", type=int, default=0,
        help="pipeline depth for single-key frames (0 = use mget/mset batches)",
    )
    client_bench.add_argument("--seed", type=int, default=2023, help="workload seed")
    client_bench.add_argument(
        "--no-preload", action="store_true", help="skip the initial mset preload"
    )
    client_bench.add_argument(
        "--rate", type=float, default=0.0,
        help="open-loop mode: offer this many single-key ops/s on a fixed "
             "timetable and report offered vs achieved rate (0 = closed loop)",
    )
    client_bench.set_defaults(func=_cmd_client_bench)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="run the YCSB-style scenario suite against in-process servers",
    )
    scenarios.add_argument(
        "--mixes", nargs="*", default=None,
        help="scenario names to run (default: the whole registry)",
    )
    scenarios.add_argument(
        "--backends", nargs="*", default=["tierbase", "lsm"],
        choices=["tierbase", "lsm"], help="backends to run the matrix against",
    )
    scenarios.add_argument("--ops", type=int, default=512, help="operations per mix")
    scenarios.add_argument("--rate", type=float, default=2000.0, help="offered arrival rate (ops/s)")
    scenarios.add_argument("--clients", type=int, default=4, help="load-generator worker threads")
    scenarios.add_argument("--records", type=int, default=256, help="records preloaded per mix")
    scenarios.add_argument("--values", type=int, default=256, help="dataset values generated per mix")
    scenarios.add_argument("--shards", type=int, default=2, help="service shard count")
    scenarios.add_argument(
        "--compressor", default="pbc_f",
        choices=["none", *trainable_codec_names()],
        help="per-shard value compressor (default pbc_f)",
    )
    scenarios.add_argument("--seed", type=int, default=2023, help="workload seed")
    scenarios.add_argument("--raw", action="store_true", help="print one JSON row per mix instead of a table")
    scenarios.add_argument("--output", default=None, help="write the per-mix rows to this JSON file")
    scenarios.set_defaults(func=_cmd_scenarios)

    experiments = subparsers.add_parser("experiments", help="list the registered paper experiments")
    experiments.set_defaults(func=_cmd_experiments)

    experiment = subparsers.add_parser("experiment", help="run one registered experiment")
    experiment.add_argument("id", help="experiment id (see 'pbc experiments')")
    experiment.set_defaults(func=_cmd_experiment)

    bench = subparsers.add_parser(
        "bench", help="evidence-grade perf harness (BENCH_*.json run tables)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="execute one experiment grid and write its BENCH_<area>.json"
    )
    bench_run.add_argument("area", help="experiment area (see 'pbc bench list')")
    bench_run.add_argument(
        "--repetitions", type=int, default=2, help="recorded repetitions per cell (default 2)"
    )
    bench_run.add_argument(
        "--warmup", type=int, default=1, help="throwaway repetitions per cell (default 1)"
    )
    bench_run.add_argument(
        "--operations", type=int, default=None, help="override the base operation count"
    )
    bench_run.add_argument(
        "--values", type=int, default=None, help="override the base dataset value count"
    )
    bench_run.add_argument(
        "--records", type=int, default=None, help="override the preloaded record count (service area)"
    )
    bench_run.add_argument(
        "--rate", type=float, default=None, help="override the offered rate (service area)"
    )
    bench_run.add_argument(
        "--clients", type=int, default=None, help="override the client thread count (wire area)"
    )
    bench_run.add_argument(
        "--workers", type=int, default=None, help="override the worker thread count (service area)"
    )
    bench_run.add_argument(
        "--seconds", type=float, default=None,
        help="override the per-cell run duration (sustained area)",
    )
    bench_run.add_argument(
        "--no-pairs", action="store_true",
        help="skip re-measuring the before/after optimization pairs",
    )
    bench_run.add_argument(
        "--output", default=None,
        help="output path (default BENCH_<area>.json in the working directory; '-' for stdout)",
    )
    bench_run.add_argument("--raw", action="store_true", help="skip the rendered run table")
    bench_run.add_argument("--quiet", action="store_true", help="suppress per-cell progress lines")
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare", help="diff two BENCH_*.json files; exit 1 past the regression threshold"
    )
    bench_compare.add_argument("old", help="baseline document (usually the committed one)")
    bench_compare.add_argument("new", help="candidate document")
    bench_compare.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed fractional throughput drop per cell (default 0.15)",
    )
    bench_compare.add_argument(
        "--latency-threshold", type=float, default=None,
        help="also fail cells whose mean p99 latency grows past this fraction "
        "(default: latency is reported but never gates)",
    )
    bench_compare.add_argument(
        "--require-baseline", action="store_true",
        help="exit 2 when the baseline file is missing (default: warn and exit 0)",
    )
    bench_compare.add_argument("--raw", action="store_true", help="print the report as JSON")
    bench_compare.set_defaults(func=_cmd_bench_compare)

    bench_list = bench_sub.add_parser("list", help="table of the registered experiment areas")
    bench_list.add_argument("--raw", action="store_true", help="print the areas as JSON")
    bench_list.set_defaults(func=_cmd_bench_list)

    bench_profile = bench_sub.add_parser(
        "profile", help="cProfile one named hot-path workload"
    )
    bench_profile.add_argument(
        "target", help="profile target: frame-decode, mvalue-decode, matcher, service-dispatch"
    )
    bench_profile.add_argument("--top", type=int, default=25, help="pstats rows to print (default 25)")
    bench_profile.add_argument(
        "--sort", default="cumulative", help="pstats sort key (default cumulative)"
    )
    bench_profile.set_defaults(func=_cmd_bench_profile)

    oplog = subparsers.add_parser(
        "oplog", help="inspect LSN-stamped operation-log artifacts"
    )
    oplog_sub = oplog.add_subparsers(dest="oplog_command", required=True)

    oplog_dump = oplog_sub.add_parser(
        "dump", help="decode a WAL/oplog file record by record (stops at torn tail)"
    )
    oplog_dump.add_argument("file", help="path to the log file")
    oplog_dump.add_argument(
        "--start-lsn", type=int, default=0,
        help="LSN the file is expected to continue from (default 0)",
    )
    oplog_dump.add_argument("--raw", action="store_true", help="print records as JSON")
    oplog_dump.set_defaults(func=_cmd_oplog_dump)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
