"""Sharded, thread-safe key-value service over TierBase / LSM shard backends.

The concurrency model mirrors what the related crawler repos do with batched
worker pools, inverted to the server side:

* every shard owns a **lock** that serialises all mutations and backend reads
  of that shard, so the backends themselves need no internal locks and two
  operations on the same key cannot interleave.  Single-key operations (and
  batches that land on one shard) take the lock **inline on the calling
  thread** — the committed ``service_inline_dispatch`` benchmark row measures
  what that saves over the earlier submit-plus-``Future.result()`` handoff to
  a per-shard worker thread;
* every shard also keeps a **single-worker executor** for work that should
  not run on the calling thread (background retraining) or that fans out
  across shards (flush, train, snapshots, scans, multi-shard batches); its
  tasks take the same shard lock, so queued and inline work stay serialised;
* batched operations (``mget`` / ``mset``) group their keys by shard with the
  :class:`~repro.service.router.ShardRouter` and run one task per shard
  **in parallel across shards** (inline when only one shard is touched);
* the :class:`~repro.service.cache.CompressedLRUCache` is checked on the
  *calling* thread: a hit decompresses the cached payload without touching
  the shard's lock at all, which is where the per-record random-access
  advantage of PBC turns into read concurrency.  Cache fills happen under
  the shard lock (serialised with writes), so a stale payload can never be
  cached over a newer write;
* after every write batch the shard checks its
  :class:`~repro.codecs.ModelLifecycle`; when the ratio or the PBC outlier
  rate crosses its threshold, a **retrain task** is queued on the same shard
  executor (Section 7.5's monitor-and-retrain loop).  The sample is the
  lifecycle's sliding reservoir of that shard's most recent values, so the
  new model reflects the drifted workload.  Retraining installs a new model
  *epoch* — stored payloads and cached payloads keep decoding against the
  epoch stamped in their headers, so a retrain no longer clears the cache or
  rewrites a single byte of the backend.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.exceptions import ModelEpochError, ServiceError
from repro.service.backends import (
    BACKEND_CHOICES,
    COMPRESSOR_CHOICES,
    ShardBackend,
    make_shard_backend,
)
from repro.service.cache import CompressedLRUCache
from repro.service.router import ShardRouter
from repro.service.stats import LatencyRecorder, ServiceSnapshot, ShardSnapshot


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of a :class:`KVService`."""

    #: number of independent shards (each with its own backend + compressor).
    shard_count: int = 4
    #: shard backend kind: "tierbase" (in-memory) or "lsm" (on-disk).
    backend: str = "tierbase"
    #: per-shard value compressor: "none", "zstd", "pbc" or "pbc_f".
    compressor: str = "pbc_f"
    #: base directory for on-disk backends (required for "lsm"; optional for
    #: "tierbase", which then persists TBS2 snapshots on flush/close).
    directory: str | Path | None = None
    #: WAL durability policy of lsm shards: "none", "flush" or "fsync"
    #: (see repro.lsm.wal.SYNC_MODES; ignored by the tierbase backend).
    sync_mode: str = "flush"
    #: entry capacity of the compressed read cache.
    cache_entries: int = 1024
    #: optional byte capacity of the compressed read cache.
    cache_bytes: int | None = None
    #: per-shard reservoir size used as the retraining sample.
    train_size: int = 256
    #: whether drift-triggered background retraining is enabled.
    auto_retrain: bool = True
    #: sliding-window size of the latency recorders.
    latency_window: int = 8192
    #: whether lsm shards compact on a background scheduler thread with
    #: admission-controlled writes (off = inline compaction after flushes,
    #: the deterministic single-threaded mode; ignored by tierbase).
    background_compaction: bool = True

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ServiceError("service needs at least one shard")
        if self.backend not in BACKEND_CHOICES:
            raise ServiceError(f"unknown backend {self.backend!r}; choose from {BACKEND_CHOICES}")
        if self.compressor not in COMPRESSOR_CHOICES:
            raise ServiceError(
                f"unknown compressor {self.compressor!r}; choose from {COMPRESSOR_CHOICES}"
            )
        from repro.lsm.wal import SYNC_MODES

        if self.sync_mode not in SYNC_MODES:
            raise ServiceError(
                f"unknown sync_mode {self.sync_mode!r}; choose from {SYNC_MODES}"
            )


class _Shard:
    """One shard: backend + serialising lock + single-worker executor.

    Every backend access goes through :meth:`run` (inline, calling thread)
    or :meth:`defer` (queued on the worker); both hold :attr:`lock`, which
    is what serialises operations on the shard.  The retraining reservoir
    lives in the backend's :class:`~repro.codecs.ModelLifecycle` and is only
    ever touched under the lock.
    """

    def __init__(self, shard_id: int, backend: ShardBackend) -> None:
        self.shard_id = shard_id
        self.backend = backend
        self.lock = threading.Lock()
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"kv-shard-{shard_id}"
        )
        self.retrain_pending = False

    def run(self, fn, *args):
        """Run ``fn`` inline under the shard lock (single-op fast path)."""
        with self.lock:
            return fn(*args)

    def defer(self, fn, *args) -> Future:
        """Queue ``fn`` on the shard worker; it takes the same lock."""
        return self.executor.submit(self.run, fn, *args)


class KVService:
    """Sharded concurrent KV facade with compressed-value caching.

    >>> service = KVService(ServiceConfig(shard_count=2, compressor="none"))
    >>> service.set("k", "v")
    >>> service.get("k")
    'v'
    >>> service.close()
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.router = ShardRouter(self.config.shard_count)
        self.cache = CompressedLRUCache(
            max_entries=self.config.cache_entries, max_bytes=self.config.cache_bytes
        )
        self._shards = [
            _Shard(
                shard_id,
                make_shard_backend(
                    self.config.backend,
                    self.config.compressor,
                    shard_id,
                    directory=self.config.directory,
                    train_size=self.config.train_size,
                    sync_mode=self.config.sync_mode,
                    background_compaction=self.config.background_compaction,
                ),
            )
            for shard_id in range(self.config.shard_count)
        ]
        self._get_latency = LatencyRecorder(self.config.latency_window)
        self._set_latency = LatencyRecorder(self.config.latency_window)
        self._counter_lock = threading.Lock()
        self._gets = 0
        self._sets = 0
        self._deletes = 0
        self._cache_hits = 0
        self._closed = False

    # ---------------------------------------------------------------- lifecycle

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed service rejects every op)."""
        return self._closed

    def flush(self) -> None:
        """Persist every shard's durable state (in parallel across shards).

        Runs on the shard executors, serialised with writes: lsm shards take
        a WAL fsync barrier, directory-backed tierbase shards publish a fresh
        ``TBS2`` snapshot.  After it returns, every previously acknowledged
        write survives a process kill (and, for fsynced backends, a machine
        crash).  A no-op for purely in-memory shards.
        """
        self._require_open()
        futures = [shard.defer(shard.backend.flush) for shard in self._shards]
        self._raise_first_error(futures)

    def close(self) -> None:
        """Flush every shard, drain the executors, and close the backends."""
        if self._closed:
            return
        self._closed = True
        flush_futures = [shard.defer(shard.backend.flush) for shard in self._shards]
        try:
            self._raise_first_error(flush_futures)
        finally:
            for shard in self._shards:
                shard.executor.shutdown(wait=True)
            for shard in self._shards:
                # Under the shard lock: an inline op that slipped past the
                # closed check must not interleave with the backend teardown.
                with shard.lock:
                    shard.backend.close()

    def __enter__(self) -> "KVService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return self.snapshot().keys

    # ----------------------------------------------------------------- training

    def train(self, sample_values: Sequence[str]) -> None:
        """Offline-train every shard's compressor (in parallel across shards)."""
        self._require_open()
        if not sample_values:
            raise ServiceError("cannot train the service on an empty sample")
        futures = [
            shard.defer(shard.backend.train, list(sample_values))
            for shard in self._shards
        ]
        self._raise_first_error(futures)

    @staticmethod
    def _raise_first_error(futures: Sequence[Future]) -> None:
        if len(futures) == 1:
            futures[0].result()
            return
        wait(futures)
        for future in futures:
            future.result()

    # --------------------------------------------------------------- shard tasks

    def _shard_set(self, shard: _Shard, items: Sequence[tuple[str, str]]) -> int:
        # backend.set_many feeds the lifecycle reservoir + drift monitor per
        # value, and batched backends (LSM) pay one WAL durability barrier
        # for the whole batch instead of one per record.
        lsn = shard.backend.set_many(items)
        for key, _ in items:
            # Invalidate inside the shard task: reads of this shard are
            # serialised with us, so no reader can re-cache the old payload
            # after this point.
            self.cache.invalidate(key)
        self._maybe_schedule_retrain(shard)
        return lsn

    def _shard_get(self, shard: _Shard, keys: Sequence[str]) -> list[str | None]:
        results: list[str | None] = []
        for key in keys:
            value, payload = shard.backend.fetch(key)
            if payload is not None:
                self.cache.put(key, payload)
            results.append(value)
        return results

    def _shard_delete(self, shard: _Shard, key: str) -> bool:
        existed = shard.backend.delete(key)
        self.cache.invalidate(key)
        return existed

    def _shard_retrain(self, shard: _Shard) -> None:
        shard.retrain_pending = False
        # Installs a new model epoch for future writes.  Cached and stored
        # payloads carry their own epoch headers and keep decoding against
        # the retained old models, so nothing is cleared or rewritten.
        shard.backend.retrain_from_recent()

    def _maybe_schedule_retrain(self, shard: _Shard) -> None:
        if (
            self.config.auto_retrain
            and not shard.retrain_pending
            and shard.backend.needs_retraining()
        ):
            shard.retrain_pending = True
            shard.defer(self._shard_retrain, shard)

    def _decompress_cached(self, shard: _Shard, key: str, payload: bytes) -> str | None:
        """Decode a cached payload; ``None`` if its model epoch is gone.

        Every cached payload names the model epoch that wrote it, so a hit
        decodes correctly even across retrains.  The one failure mode left is
        *typed*: the referenced epoch was pruned (its last live backend
        payload was overwritten or deleted after we cached this one), which
        raises :class:`~repro.exceptions.ModelEpochError` — treated as a miss
        so the read re-fetches from the shard.  Anything else propagates:
        pre-epoch, this path silently swallowed every decompression error.
        """
        try:
            return shard.backend.decompress(payload)
        except ModelEpochError:
            self.cache.invalidate(key)
            return None

    # ------------------------------------------------------------- single ops

    def set(self, key: str, value: str) -> int:
        """Store ``value`` under ``key``; returns the write's assigned LSN.

        The LSN, together with :meth:`shard_for` and :meth:`wait_for_lsn`,
        is the read-your-writes handle: once the owning shard's
        :meth:`last_applied` watermark reaches it, any read observes this
        write.
        """
        self._require_open()
        started = time.perf_counter()
        shard = self._shards[self.router.shard_for(key)]
        lsn = shard.run(self._shard_set, shard, [(key, value)])
        self._set_latency.record(time.perf_counter() - started)
        with self._counter_lock:
            self._sets += 1
        return lsn

    def get(self, key: str) -> str | None:
        """Fetch ``key``; ``None`` when missing.  Cache hits skip the shard.

        The GET counter is committed in a ``finally`` once the cache has been
        consulted: a raising decode or shard fetch still counted one cache
        lookup, and leaving ``gets`` behind would permanently break the
        lookups == gets invariant :meth:`ServiceSnapshot.validate` checks.
        """
        self._require_open()
        started = time.perf_counter()
        shard = self._shards[self.router.shard_for(key)]
        hit = False
        try:
            payload = self.cache.get(key)
            value = None
            if payload is not None:
                value = self._decompress_cached(shard, key, payload)
                hit = value is not None
            if not hit:
                value = shard.run(self._shard_get, shard, [key])[0]
            self._get_latency.record(time.perf_counter() - started)
            return value
        finally:
            with self._counter_lock:
                self._gets += 1
                if hit:
                    self._cache_hits += 1

    def delete(self, key: str) -> bool:
        """Delete ``key``; returns whether it existed."""
        self._require_open()
        shard = self._shards[self.router.shard_for(key)]
        existed = shard.run(self._shard_delete, shard, key)
        with self._counter_lock:
            self._deletes += 1
        return existed

    # ------------------------------------------------------------- batched ops

    def mset(self, items: Sequence[tuple[str, str]]) -> dict[int, int]:
        """Batched SET: one task per shard, executed in parallel across shards.

        Returns ``{shard_id: last_assigned_lsn}`` for every shard the batch
        touched — the per-shard read-your-writes handles (LSNs are per-shard
        sequences, so a multi-shard batch has one watermark per shard).
        """
        self._require_open()
        if not items:
            return {}
        started = time.perf_counter()
        groups = self.router.group_items(items)
        lsns: dict[int, int] = {}
        if len(groups) == 1:
            # One shard touched: run inline, skip the executor handoff.
            ((shard_id, shard_items),) = groups.items()
            shard = self._shards[shard_id]
            lsns[shard_id] = shard.run(self._shard_set, shard, shard_items)
        else:
            futures = [
                (
                    shard_id,
                    self._shards[shard_id].defer(
                        self._shard_set, self._shards[shard_id], shard_items
                    ),
                )
                for shard_id, shard_items in groups.items()
            ]
            self._raise_first_error([future for _, future in futures])
            lsns = {shard_id: future.result() for shard_id, future in futures}
        self._set_latency.record(time.perf_counter() - started, operations=len(items))
        with self._counter_lock:
            self._sets += len(items)
        return lsns

    def mget(self, keys: Sequence[str]) -> list[str | None]:
        """Batched GET preserving key order; cache hits answered inline.

        As in :meth:`get`, the GET counter is committed in a ``finally`` with
        exactly the number of cache lookups performed, so an exception
        mid-batch cannot skew the lookups == gets invariant.
        """
        self._require_open()
        if not keys:
            return []
        started = time.perf_counter()
        results: list[str | None] = [None] * len(keys)
        miss_positions: list[int] = []
        looked_up = 0
        hits = 0
        try:
            for position, key in enumerate(keys):
                payload = self.cache.get(key)
                looked_up += 1
                value = None
                if payload is not None:
                    shard = self._shards[self.router.shard_for(key)]
                    value = self._decompress_cached(shard, key, payload)
                if value is None:
                    miss_positions.append(position)
                    continue
                results[position] = value
                hits += 1
            if miss_positions:
                miss_keys = [keys[position] for position in miss_positions]
                groups = self.router.group_keys(miss_keys)
                if len(groups) == 1:
                    # One shard touched: fetch inline, skip the executor.
                    ((shard_id, local_positions),) = groups.items()
                    shard = self._shards[shard_id]
                    shard_keys = [miss_keys[position] for position in local_positions]
                    fetched = shard.run(self._shard_get, shard, shard_keys)
                    for local_position, value in zip(local_positions, fetched):
                        results[miss_positions[local_position]] = value
                else:
                    futures: list[tuple[list[int], Future]] = []
                    for shard_id, local_positions in groups.items():
                        shard = self._shards[shard_id]
                        shard_keys = [miss_keys[position] for position in local_positions]
                        futures.append(
                            (
                                [miss_positions[position] for position in local_positions],
                                shard.defer(self._shard_get, shard, shard_keys),
                            )
                        )
                    self._raise_first_error([future for _, future in futures])
                    for original_positions, future in futures:
                        for original_position, value in zip(original_positions, future.result()):
                            results[original_position] = value
            self._get_latency.record(time.perf_counter() - started, operations=len(keys))
            return results
        finally:
            with self._counter_lock:
                self._gets += looked_up
                self._cache_hits += hits

    # ----------------------------------------------------------- operation log

    def shard_for(self, key: str) -> int:
        """The shard id that owns ``key`` (the router's stable mapping)."""
        return self.router.shard_for(key)

    def last_applied(self, shard_id: int) -> int:
        """Shard ``shard_id``'s operation-log watermark (newest applied LSN).

        Read under the shard lock, so it is ordered with that shard's
        writes: if it returns ``>= lsn`` for an LSN a :meth:`set` returned,
        a subsequent read observes that write (read-your-writes).
        """
        self._require_open()
        shard = self._shard_by_id(shard_id)
        return shard.run(shard.backend.last_applied)

    def wait_for_lsn(self, shard_id: int, lsn: int, timeout: float = 5.0) -> int:
        """Block until shard ``shard_id`` has applied ``lsn``; returns the
        watermark that satisfied the wait.

        This is the read-your-writes primitive: ``wait_for_lsn(shard_for(k),
        set(k, v))`` returning guarantees a following ``get(k)`` sees ``v``.
        On the primary the watermark already covers every acknowledged write,
        so the wait is immediate; against a replica (next PR) it polls until
        replication catches up.  Raises :class:`ServiceError` after
        ``timeout`` seconds.
        """
        self._require_open()
        if lsn < 0:
            raise ServiceError("lsn must be >= 0")
        shard = self._shard_by_id(shard_id)
        deadline = time.monotonic() + timeout
        while True:
            applied = shard.run(shard.backend.last_applied)
            if applied >= lsn:
                return applied
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"shard {shard_id} did not reach LSN {lsn} within "
                    f"{timeout:g}s (last applied: {applied})"
                )
            time.sleep(0.001)

    def _shard_by_id(self, shard_id: int) -> _Shard:
        if not 0 <= shard_id < len(self._shards):
            raise ServiceError(
                f"shard id {shard_id} out of range (service has "
                f"{len(self._shards)} shards)"
            )
        return self._shards[shard_id]

    # ------------------------------------------------------------------- scans

    @staticmethod
    def _shard_scan(
        shard: _Shard, start: str | None, end: str | None, limit: int | None
    ) -> list[tuple[str, str]]:
        # Materialised on the shard worker: the whole scan is serialised with
        # that shard's writes, so each per-shard slice is a consistent view.
        return list(shard.backend.scan(start, end, limit))

    def scan(
        self,
        start: str | None = None,
        end: str | None = None,
        limit: int | None = None,
    ) -> list[tuple[str, str]]:
        """Range scan across every shard, merged in key order.

        Fans one bounded scan out per shard (each runs on its shard's worker,
        serialised with that shard's writes) and k-way-merges the sorted
        per-shard slices.  Shards partition the key space, so the merge never
        sees duplicate keys.  ``start`` is inclusive, ``end`` exclusive;
        ``limit`` bounds both each per-shard scan and the merged result.
        Works on every backend — unlike :meth:`keys`, which is a
        tierbase-only diagnostic.
        """
        self._require_open()
        if limit is not None and limit <= 0:
            return []
        futures = [
            shard.defer(self._shard_scan, shard, start, end, limit)
            for shard in self._shards
        ]
        self._raise_first_error(futures)
        merged = heapq.merge(*(future.result() for future in futures))
        if limit is not None:
            return list(itertools.islice(merged, limit))
        return list(merged)

    # ----------------------------------------------------------------- metrics

    def shard_snapshots(self) -> list[ShardSnapshot]:
        """Per-shard statistics, gathered on each shard's executor."""
        self._require_open()
        futures = [
            shard.defer(shard.backend.snapshot, shard.shard_id)
            for shard in self._shards
        ]
        self._raise_first_error(futures)
        return [future.result() for future in futures]

    def snapshot(self) -> ServiceSnapshot:
        """Service-wide statistics: shards, cache counters, latency percentiles.

        Capture order matters for concurrent scrapes: the service counters
        are read *before* the cache stats, and every GET bumps its cache
        lookup *before* its GET counter — together that guarantees
        ``cache.lookups >= gets`` in any snapshot taken mid-traffic, which is
        the invariant ``ServiceSnapshot.validate(concurrent=True)`` checks.
        """
        shards = tuple(self.shard_snapshots())
        with self._counter_lock:
            gets, sets, deletes, cache_hits = (
                self._gets,
                self._sets,
                self._deletes,
                self._cache_hits,
            )
        cache_stats = self.cache.stats()
        return ServiceSnapshot(
            shards=shards,
            cache=cache_stats,
            get_latency=self._get_latency.summary(),
            set_latency=self._set_latency.summary(),
            gets=gets,
            sets=sets,
            deletes=deletes,
            cache_hits=cache_hits,
            retrain_events=sum(shard.retrain_events for shard in shards),
        )

    def keys(self) -> Iterator[str]:
        """Iterate the keys of every shard (TierBase backends only)."""
        for shard in self._shards:
            backend = shard.backend
            store = getattr(backend, "store", None)
            if store is None:
                raise ServiceError("keys() is only supported by the tierbase backend")
            yield from list(store.keys())
