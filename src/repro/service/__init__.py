"""``repro.service`` — sharded, thread-safe KV service over TierBase/LSM shards.

The serving layer the ROADMAP's "heavy traffic" north star asks for, modelled
on the paper's production deployment (Section 7.5): many independent shards,
each an in-memory :class:`~repro.tierbase.store.TierBase` or on-disk
:class:`~repro.lsm.engine.LSMEngine` with its own workload-trained value
compressor, fronted by one façade:

* :mod:`repro.service.router` — deterministic CRC32 key→shard routing,
* :mod:`repro.service.backends` — the shard backend interface and the
  TierBase / LSM implementations (per-shard compressor + drift monitor),
* :mod:`repro.service.service` — :class:`KVService`: single and batched
  ``get``/``set``/``delete``/``mget``/``mset`` over single-worker-per-shard
  executors, with drift-triggered background retraining,
* :mod:`repro.service.cache` — an LRU read cache holding *compressed*
  payloads, decompressed per hit (the per-record random-access advantage),
* :mod:`repro.service.stats` — latency recorders and snapshot dataclasses,
* :mod:`repro.service.workload` — the mixed GET/SET benchmark driver behind
  ``repro serve-bench`` and ``benchmarks/bench_service.py``.

Quick start::

    from repro.datasets import load_dataset
    from repro.service import KVService, ServiceConfig

    values = load_dataset("kv1", count=2000)
    with KVService(ServiceConfig(shard_count=4, compressor="pbc_f")) as service:
        service.train(values[:256])
        service.mset([(f"k:{i}", value) for i, value in enumerate(values)])
        assert service.mget(["k:0", "k:1"]) == values[:2]
        print(service.snapshot().ratio)   # service-wide compression ratio
"""

from repro.service.backends import (
    BACKEND_CHOICES,
    COMPRESSOR_CHOICES,
    LSMShard,
    ShardBackend,
    TierBaseShard,
    make_shard_backend,
    make_value_compressor,
)
from repro.service.cache import CacheStats, CompressedLRUCache
from repro.service.router import ShardRouter
from repro.service.service import KVService, ServiceConfig
from repro.service.stats import (
    LatencyRecorder,
    LatencySummary,
    ServiceSnapshot,
    ShardSnapshot,
)
from repro.service.workload import MixedWorkloadResult, preload, run_mixed_workload

#: Wire-layer classes re-exported lazily so ``from repro.service import
#: KVServer`` works without importing asyncio machinery on every service use
#: (and without a circular import: repro.net imports repro.service).
_NET_EXPORTS = ("KVServer", "ServerConfig", "ThreadedKVServer", "KVClient", "AsyncKVClient")


def __getattr__(name: str):
    if name in _NET_EXPORTS:
        import repro.net as net

        return getattr(net, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    *_NET_EXPORTS,
    "BACKEND_CHOICES",
    "COMPRESSOR_CHOICES",
    "CacheStats",
    "CompressedLRUCache",
    "KVService",
    "LSMShard",
    "LatencyRecorder",
    "LatencySummary",
    "MixedWorkloadResult",
    "ServiceConfig",
    "ServiceSnapshot",
    "ShardBackend",
    "ShardRouter",
    "ShardSnapshot",
    "TierBaseShard",
    "make_shard_backend",
    "make_value_compressor",
    "preload",
    "run_mixed_workload",
]
