"""Latency tracking and service-wide statistics snapshots.

Latencies are recorded into a bounded sliding window (the most recent
``window`` samples per operation kind), from which percentiles are computed
with the nearest-rank method at snapshot time — good enough for the p50/p99
service metrics the benchmark reports, without keeping every sample alive.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.service.cache import CacheStats


def percentile(sorted_samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, round(fraction * (len(sorted_samples) - 1))))
    return sorted_samples[rank]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one operation kind's recent latencies."""

    operations: int
    window: int
    p50_ms: float
    p99_ms: float
    mean_ms: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(operations=0, window=0, p50_ms=0.0, p99_ms=0.0, mean_ms=0.0)


class LatencyRecorder:
    """Thread-safe sliding window of per-operation latencies (seconds)."""

    def __init__(self, window: int = 8192) -> None:
        self._samples: deque[float] = deque(maxlen=max(1, window))
        self._operations = 0
        self._lock = threading.Lock()

    def record(self, seconds: float, operations: int = 1) -> None:
        """Record one latency sample covering ``operations`` logical operations.

        Batched calls (``mget``/``mset``) record the amortised per-operation
        latency once per batch member, so percentiles stay comparable between
        batched and single-operation workloads.
        """
        with self._lock:
            self._operations += operations
            if operations == 1:
                self._samples.append(seconds)
            else:
                amortised = seconds / operations
                for _ in range(min(operations, self._samples.maxlen or operations)):
                    self._samples.append(amortised)

    def summary(self) -> LatencySummary:
        """Percentile summary over the current window."""
        with self._lock:
            samples = sorted(self._samples)
            operations = self._operations
        if not samples:
            return LatencySummary.empty()
        return LatencySummary(
            operations=operations,
            window=len(samples),
            p50_ms=percentile(samples, 0.50) * 1e3,
            p99_ms=percentile(samples, 0.99) * 1e3,
            mean_ms=sum(samples) / len(samples) * 1e3,
        )


@dataclass(frozen=True)
class ShardSnapshot:
    """Point-in-time view of one shard's backend."""

    shard_id: int
    backend: str
    compressor: str
    keys: int
    original_bytes: int
    stored_bytes: int
    sets: int
    gets: int
    retrain_events: int
    outlier_rate: float
    #: durable footprint: SSTables + WAL (lsm) or the TBS2 snapshot file
    #: (directory-backed tierbase); 0 for purely in-memory shards.
    bytes_on_disk: int = 0
    #: model epoch new writes are stamped with (0 = untrained / plain codec).
    model_epoch: int = 0
    #: seconds since the current model epoch was installed (0.0 = untrained).
    model_epoch_age_seconds: float = 0.0
    #: SSTable file count (lsm shards; 0 elsewhere).
    sstables: int = 0
    #: WAL fsync barriers taken and their cumulative duration (lsm shards).
    wal_fsyncs: int = 0
    wal_fsync_seconds: float = 0.0
    #: distinct live SSTable levels (lsm shards; 0 when empty).
    levels: int = 0
    #: bytes in levels at/over the compaction trigger, i.e. merge backlog.
    pending_compaction_bytes: int = 0
    #: cumulative seconds writes spent throttled by L0 admission control.
    compaction_stall_seconds: float = 0.0
    #: merges performed by this shard's engine (background + inline).
    compactions: int = 0
    #: newest operation-log LSN this shard has applied (0 = no writes yet);
    #: the ``repro_shard_last_lsn`` gauge and the read-your-writes watermark.
    last_lsn: int = 0
    #: worst subscriber backlog on this shard's operation log, in records
    #: (the ``repro_oplog_subscriber_lag_records`` gauge; 0 = no subscribers
    #: or all caught up).
    oplog_lag_records: int = 0

    @property
    def ratio(self) -> float:
        """Compression ratio of the values currently stored on this shard."""
        if self.original_bytes == 0:
            return 1.0
        return self.stored_bytes / self.original_bytes


@dataclass(frozen=True)
class ServiceSnapshot:
    """Service-wide statistics: shards, cache, and latency percentiles."""

    shards: tuple[ShardSnapshot, ...]
    cache: CacheStats
    get_latency: LatencySummary
    set_latency: LatencySummary
    gets: int
    sets: int
    deletes: int
    cache_hits: int
    retrain_events: int

    @property
    def keys(self) -> int:
        """Total keys across every shard."""
        return sum(shard.keys for shard in self.shards)

    @property
    def ratio(self) -> float:
        """Service-wide compression ratio over the stored values."""
        original = sum(shard.original_bytes for shard in self.shards)
        stored = sum(shard.stored_bytes for shard in self.shards)
        if original == 0:
            return 1.0
        return stored / original

    @property
    def bytes_on_disk(self) -> int:
        """Total durable footprint across every shard."""
        return sum(shard.bytes_on_disk for shard in self.shards)

    def validate(self, concurrent: bool = False) -> "ServiceSnapshot":
        """Check the cross-counter invariants; raises :class:`ServiceError`.

        The default (``concurrent=False``) is the strict quiescent contract
        (no in-flight operations while the snapshot was taken — e.g. after a
        workload's clients joined).  With ``concurrent=True`` the check is
        safe while traffic is running — the mode metrics scrapes use:

        * every cache lookup is classified: ``hits + misses == lookups``.
          This holds in **both** modes: the cache updates all three counters
          under one lock and :meth:`CompressedLRUCache.stats` copies them
          under the same lock, so a scrape can never observe a torn state;
        * every logical GET consults the cache exactly once, so the cache's
          lookup count equals the service's GET count.  Under concurrent
          traffic the two counters live behind different locks, but
          :meth:`KVService.snapshot` captures the GET counter *before* the
          cache stats and every GET bumps its cache lookup *before* its GET
          counter — so ``lookups >= gets`` is guaranteed even mid-traffic,
          and that is what ``concurrent=True`` checks (equality would flag
          requests that were simply in flight during the scrape);
        * a service-level cache hit (payload found *and* decoded) implies a
          raw cache hit, so ``cache_hits <= cache.hits`` (same capture-order
          argument; valid in both modes);
        * counters never go negative.
        """
        from repro.exceptions import ServiceError

        if self.cache.hits + self.cache.misses != self.cache.lookups:
            raise ServiceError(
                f"inconsistent cache stats: {self.cache.hits} hits + "
                f"{self.cache.misses} misses != {self.cache.lookups} lookups"
            )
        if self.cache.lookups < self.gets or (
            not concurrent and self.cache.lookups != self.gets
        ):
            raise ServiceError(
                f"inconsistent cache stats: {self.cache.lookups} cache lookups "
                f"for {self.gets} service GETs (every GET must consult the "
                f"cache exactly once)"
            )
        if self.cache_hits > self.cache.hits:
            raise ServiceError(
                f"inconsistent cache stats: service decoded {self.cache_hits} "
                f"cache hits but the cache only saw {self.cache.hits}"
            )
        counters = {
            "gets": self.gets,
            "sets": self.sets,
            "deletes": self.deletes,
            "cache_hits": self.cache_hits,
            "retrain_events": self.retrain_events,
            "cache.entries": self.cache.entries,
            "cache.evictions": self.cache.evictions,
            "cache.invalidations": self.cache.invalidations,
        }
        negative = {name: value for name, value in counters.items() if value < 0}
        if negative:
            raise ServiceError(f"negative counters in snapshot: {negative}")
        return self
