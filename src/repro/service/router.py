"""Deterministic hash-based key→shard routing for the KV service.

The service partitions its key space over ``shard_count`` independent backend
stores.  Routing must be deterministic *across processes and runs* (a client
and a benchmark harness must agree on the placement of every key), so the
router hashes keys with CRC32 rather than Python's salted built-in ``hash``.
The raw CRC is mixed with a Fibonacci multiplier before the modulo so that
keys with sequential suffixes (``user:1``, ``user:2``, ...) still spread
evenly over small shard counts.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

from repro.exceptions import ServiceError

#: 64-bit Fibonacci hashing multiplier (2^64 / golden ratio, odd).
_FIB_MULTIPLIER = 0x9E3779B97F4A7C15

_MASK64 = (1 << 64) - 1


class ShardRouter:
    """Maps keys to shard ids with a stable, well-mixed hash.

    >>> router = ShardRouter(4)
    >>> router.shard_for("user:42") == router.shard_for("user:42")
    True
    >>> all(0 <= router.shard_for(f"k{i}") < 4 for i in range(100))
    True
    """

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ServiceError("shard count must be at least 1")
        self.shard_count = shard_count

    def shard_for(self, key: str) -> int:
        """Shard id owning ``key`` (deterministic across processes)."""
        crc = zlib.crc32(key.encode("utf-8"))
        mixed = (crc * _FIB_MULTIPLIER) & _MASK64
        return (mixed >> 32) % self.shard_count

    def group_keys(self, keys: Sequence[str]) -> dict[int, list[int]]:
        """Group key *positions* by owning shard.

        Returns ``{shard_id: [index, ...]}`` so batched operations can fan out
        per shard while reassembling results in the caller's original order.
        """
        groups: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self.shard_for(key), []).append(position)
        return groups

    def group_items(self, items: Iterable[tuple[str, str]]) -> dict[int, list[tuple[str, str]]]:
        """Group ``(key, value)`` pairs by owning shard (for batched writes)."""
        groups: dict[int, list[tuple[str, str]]] = {}
        for key, value in items:
            groups.setdefault(self.shard_for(key), []).append((key, value))
        return groups
