"""Thread-safe LRU read cache that stores *compressed* value payloads.

The paper's per-record compressors keep decompression cheap enough that a
read cache can hold values in their compressed form and decompress on every
hit: memory stretches by the compression ratio (Section 7.5's motivation for
compressing TierBase values at all) while a hit still avoids the backend
round-trip.  Only the payload bytes live here; decompression stays with the
shard that owns the key, because each shard trains its own compressor.

Every cached payload carries its versioned-model header (codec magic +
epoch, docs/FORMATS.md §6), so cache hits stay decodable across shard
retrains and the cache is **not** cleared when a shard retrains.  The only
stale case left is a payload whose model epoch was pruned after caching
(its last live backend reference was overwritten or deleted); decompressing
it raises the typed :class:`~repro.exceptions.ModelEpochError`, which the
service treats as a miss — it no longer swallows arbitrary decompression
errors the way the pre-epoch "stale-dictionary fallback" did.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.exceptions import ServiceError


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`CompressedLRUCache`."""

    entries: int
    compressed_bytes: int
    hits: int
    misses: int
    evictions: int
    invalidations: int
    #: total :meth:`CompressedLRUCache.get` calls, counted independently of
    #: the hit/miss classification so ``hits + misses == lookups`` is a real
    #: invariant (checked by :meth:`ServiceSnapshot.validate`), not a tautology.
    lookups: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 before the first lookup)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class CompressedLRUCache:
    """LRU map from key to compressed payload with byte- and entry-capacity.

    All methods are safe to call from any thread.  ``max_bytes`` bounds the
    payload bytes held (``None`` for unbounded); ``max_entries`` bounds the
    entry count.  Writes to the underlying store must call :meth:`invalidate`
    so a subsequent read re-fetches the new payload.
    """

    def __init__(self, max_entries: int = 1024, max_bytes: int | None = None) -> None:
        if max_entries < 1:
            raise ServiceError("cache needs room for at least one entry")
        if max_bytes is not None and max_bytes < 1:
            raise ServiceError("cache byte capacity must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._lookups = 0

    def get(self, key: str) -> bytes | None:
        """Compressed payload for ``key`` or ``None``; a hit refreshes recency."""
        with self._lock:
            self._lookups += 1
            payload = self._entries.get(key)
            if payload is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return payload

    def put(self, key: str, payload: bytes) -> None:
        """Insert or refresh ``key``; evicts least-recently-used entries to fit."""
        with self._lock:
            existing = self._entries.pop(key, None)
            if existing is not None:
                self._bytes -= len(existing)
            self._entries[key] = payload
            self._bytes += len(payload)
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None and self._bytes > self.max_bytes and len(self._entries) > 1
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self._evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` (after an overwrite or delete); returns whether it was cached."""
        with self._lock:
            payload = self._entries.pop(key, None)
            if payload is None:
                return False
            self._bytes -= len(payload)
            self._invalidations += 1
            return True

    def clear(self) -> None:
        """Drop every entry.

        No longer part of the retrain path (epoch-stamped payloads survive
        retrains); kept for tests and explicit cache resets.
        """
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                entries=len(self._entries),
                compressed_bytes=self._bytes,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                lookups=self._lookups,
            )
