"""Mixed GET/SET workload driver for the sharded KV service.

Follows the shape of :mod:`repro.tierbase.workload` (the Table 8 harness) but
drives the concurrent service instead of a single store: values come from a
:mod:`repro.datasets` generator, operations are issued in batches (``mget`` /
``mset``) from one or more client threads, and the outcome bundles throughput
with the service's own snapshot (per-shard ratios, cache hit rate, latency
percentiles) — the numbers ``repro serve-bench`` and
``benchmarks/bench_service.py`` report.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from threading import Thread
from typing import Sequence

from repro.exceptions import ServiceError
from repro.service.service import KVService
from repro.service.stats import ServiceSnapshot


@dataclass
class MixedWorkloadResult:
    """Outcome of one mixed GET/SET run against a :class:`KVService`."""

    operations: int
    get_operations: int
    set_operations: int
    elapsed_seconds: float
    clients: int
    snapshot: ServiceSnapshot

    @property
    def ops_per_second(self) -> float:
        """Aggregate operation throughput across every client."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.operations / self.elapsed_seconds

    def shard_rows(self) -> list[dict]:
        """Per-shard table rows for :func:`repro.bench.render_table`."""
        return [
            {
                "shard": shard.shard_id,
                "backend": shard.backend,
                "compressor": shard.compressor,
                "keys": shard.keys,
                "ratio": round(shard.ratio, 3),
                "outlier_rate": round(shard.outlier_rate, 3),
                "retrains": shard.retrain_events,
            }
            for shard in self.snapshot.shards
        ]

    def summary_rows(self) -> list[dict]:
        """Service-level table rows (throughput, cache, latency percentiles)."""
        cache = self.snapshot.cache
        return [
            {"metric": "operations", "value": f"{self.operations:,}"},
            {"metric": "clients", "value": self.clients},
            {"metric": "ops_per_second", "value": f"{self.ops_per_second:,.0f}"},
            {"metric": "keys", "value": f"{self.snapshot.keys:,}"},
            {"metric": "value_ratio", "value": f"{self.snapshot.ratio:.3f}"},
            {"metric": "cache_hit_rate", "value": f"{cache.hit_rate:.3f}"},
            {"metric": "cache_entries", "value": cache.entries},
            {"metric": "get_p50_ms", "value": f"{self.snapshot.get_latency.p50_ms:.3f}"},
            {"metric": "get_p99_ms", "value": f"{self.snapshot.get_latency.p99_ms:.3f}"},
            {"metric": "set_p50_ms", "value": f"{self.snapshot.set_latency.p50_ms:.3f}"},
            {"metric": "set_p99_ms", "value": f"{self.snapshot.set_latency.p99_ms:.3f}"},
            {"metric": "retrain_events", "value": self.snapshot.retrain_events},
        ]


def preload(service: KVService, values: Sequence[str], key_prefix: str = "kv") -> list[str]:
    """Train the service on a value sample and bulk-load every value; returns the keys."""
    if not values:
        raise ServiceError("cannot preload an empty value set")
    train_sample = values[: min(len(values), service.config.train_size)]
    service.train(train_sample)
    keys = [f"{key_prefix}:{index}" for index in range(len(values))]
    service.mset(list(zip(keys, values)))
    return keys


def run_mixed_workload(
    service: KVService,
    values: Sequence[str],
    operations: int = 4096,
    get_fraction: float = 0.7,
    batch_size: int = 16,
    clients: int = 1,
    seed: int = 2023,
    key_prefix: str = "kv",
) -> MixedWorkloadResult:
    """Preload ``values`` then drive a mixed, batched GET/SET workload.

    Each client thread issues ``operations // clients`` operations in batches:
    a batch is either an ``mget`` of uniformly random existing keys (with
    probability ``get_fraction``) or an ``mset`` overwriting random keys with
    rotated values — overwrites, not inserts, so cache invalidation and the
    compression monitor both stay exercised.
    """
    if operations < 1:
        raise ServiceError("workload needs at least one operation")
    if not 0.0 <= get_fraction <= 1.0:
        raise ServiceError("get fraction must be within [0, 1]")
    if batch_size < 1:
        raise ServiceError("batch size must be at least 1")
    if clients < 1:
        raise ServiceError("workload needs at least one client")

    keys = preload(service, values, key_prefix=key_prefix)
    per_client = max(1, operations // clients)
    counts = [[0, 0] for _ in range(clients)]  # [gets, sets] per client

    def client_loop(client_id: int) -> None:
        rng = random.Random(f"{seed}:{client_id}")
        issued = 0
        while issued < per_client:
            size = min(batch_size, per_client - issued)
            if rng.random() < get_fraction:
                batch = [keys[rng.randrange(len(keys))] for _ in range(size)]
                service.mget(batch)
                counts[client_id][0] += size
            else:
                batch = [
                    (keys[rng.randrange(len(keys))], values[rng.randrange(len(values))])
                    for _ in range(size)
                ]
                service.mset(batch)
                counts[client_id][1] += size
            issued += size

    started = time.perf_counter()
    if clients == 1:
        client_loop(0)
    else:
        threads = [Thread(target=client_loop, args=(client_id,)) for client_id in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started

    total_gets = sum(gets for gets, _ in counts)
    total_sets = sum(sets for _, sets in counts)
    return MixedWorkloadResult(
        operations=total_gets + total_sets,
        get_operations=total_gets,
        set_operations=total_sets,
        elapsed_seconds=elapsed,
        clients=clients,
        # The clients have joined, so the service is quiescent: the snapshot's
        # cross-counter invariants (hits + misses == lookups == GETs) must
        # hold — serve-bench and bench_service report validated numbers only.
        snapshot=service.snapshot().validate(),
    )
