"""Shard backends: the per-shard stores fronted by :class:`repro.service.KVService`.

A shard backend owns one partition of the key space, one trained value
compressor, and one :class:`~repro.tierbase.store.CompressionMonitor`.  Two
implementations cover the two storage substrates of the reproduction:

* :class:`TierBaseShard` — an in-memory :class:`repro.tierbase.store.TierBase`
  instance (the paper's Section 7.5 deployment target),
* :class:`LSMShard` — an on-disk :class:`repro.lsm.engine.LSMEngine` with a
  :class:`~repro.lsm.sstable.RecordCompressionPolicy`, so values are compressed
  per record inside SSTable blocks and point reads decompress one value.

Backends are *not* thread-safe on their own; the service serialises every
mutation of a shard through that shard's single-worker executor.
"""

from __future__ import annotations

import shutil
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Sequence

from repro.exceptions import ServiceError
from repro.lsm.engine import LSMEngine
from repro.lsm.sstable import RecordCompressionPolicy
from repro.service.stats import ShardSnapshot
from repro.tierbase.compression import (
    NoopValueCompressor,
    PBCValueCompressor,
    ValueCompressor,
    ZstdDictValueCompressor,
)
from repro.tierbase.store import CompressionMonitor, TierBase

#: Compressor names accepted by :func:`make_value_compressor` (CLI / config).
COMPRESSOR_CHOICES: tuple[str, ...] = ("none", "zstd", "pbc", "pbc_f")

#: Backend names accepted by :func:`make_shard_backend` (CLI / config).
BACKEND_CHOICES: tuple[str, ...] = ("tierbase", "lsm")


def make_value_compressor(name: str) -> ValueCompressor:
    """Build a fresh value compressor by its CLI name (one per shard)."""
    if name == "none":
        return NoopValueCompressor()
    if name == "zstd":
        return ZstdDictValueCompressor()
    if name == "pbc":
        return PBCValueCompressor(use_fsst=False)
    if name == "pbc_f":
        return PBCValueCompressor(use_fsst=True)
    raise ServiceError(f"unknown value compressor {name!r}; choose from {COMPRESSOR_CHOICES}")


class ShardBackend(ABC):
    """One shard's store: keyed string values behind a trained compressor."""

    #: backend name reported in snapshots ("tierbase" / "lsm").
    name: str = "shard"

    @abstractmethod
    def train(self, sample_values: Sequence[str]) -> None:
        """Offline-train this shard's value compressor."""

    @abstractmethod
    def set(self, key: str, value: str) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def get_compressed(self, key: str) -> bytes | None:
        """Compressed payload for ``key`` (``None`` when missing) — feeds the cache."""

    @abstractmethod
    def decompress(self, payload: bytes) -> str:
        """Decode a payload produced by :meth:`get_compressed`."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""

    @abstractmethod
    def needs_retraining(self) -> bool:
        """Whether the compression monitor flags this shard for retraining."""

    @abstractmethod
    def retrain(self, sample_values: Sequence[str]) -> None:
        """Re-train the compressor and recompress the shard's stored values."""

    @abstractmethod
    def snapshot(self, shard_id: int) -> ShardSnapshot:
        """Point-in-time statistics for this shard."""

    def get(self, key: str) -> str | None:
        """Fetch and decompress ``key`` (``None`` when missing)."""
        value, _ = self.fetch(key)
        return value

    def fetch(self, key: str) -> tuple[str | None, bytes | None]:
        """``(value, cacheable_payload)`` in one read; ``(None, None)`` when missing.

        The default goes through :meth:`get_compressed` + :meth:`decompress`,
        which is optimal for backends that store the compressed payload
        directly; backends whose stored form is not the per-value payload
        (LSM) override this to avoid paying a decompress on the value path.
        """
        payload = self.get_compressed(key)
        if payload is None:
            return None, None
        return self.decompress(payload), payload

    def close(self) -> None:
        """Release any resources (files, logs)."""


def _pbc_of(compressor: ValueCompressor):
    """The underlying PBC compressor when ``compressor`` is pattern-based."""
    return compressor.pbc if isinstance(compressor, PBCValueCompressor) else None


class TierBaseShard(ShardBackend):
    """In-memory shard over a :class:`TierBase` store (compression built in)."""

    name = "tierbase"

    def __init__(
        self,
        compressor: ValueCompressor,
        ratio_threshold: float = 0.8,
        unmatched_threshold: float = 0.2,
    ) -> None:
        self.store = TierBase(
            compressor=compressor,
            ratio_threshold=ratio_threshold,
            unmatched_threshold=unmatched_threshold,
        )
        self._retrain_events = 0

    def train(self, sample_values: Sequence[str]) -> None:
        self.store.train(sample_values)

    def set(self, key: str, value: str) -> None:
        self.store.set(key, value)

    def get_compressed(self, key: str) -> bytes | None:
        return self.store.get_compressed(key)

    def decompress(self, payload: bytes) -> str:
        return self.store.compressor.decompress(payload)

    def delete(self, key: str) -> bool:
        return self.store.delete(key)

    def needs_retraining(self) -> bool:
        return self.store.needs_retraining()

    def retrain(self, sample_values: Sequence[str]) -> None:
        self.store.retrain(sample_values)
        self._retrain_events += 1

    def snapshot(self, shard_id: int) -> ShardSnapshot:
        stats = self.store.stats()
        pbc = _pbc_of(self.store.compressor)
        return ShardSnapshot(
            shard_id=shard_id,
            backend=self.name,
            compressor=self.store.compressor.name,
            keys=stats.keys,
            original_bytes=stats.original_value_bytes,
            stored_bytes=stats.stored_value_bytes,
            sets=stats.sets,
            gets=stats.gets,
            retrain_events=self._retrain_events,
            outlier_rate=pbc.outlier_rate if pbc is not None else 0.0,
        )


class LSMShard(ShardBackend):
    """On-disk shard over an :class:`LSMEngine` with per-record compression.

    The engine's :class:`RecordCompressionPolicy` compresses values when
    memtable contents are flushed into SSTable blocks; the shard additionally
    compresses each value once on SET to feed the compression monitor (the
    monitor tracks what the policy *will* store) and caches nothing itself.
    """

    name = "lsm"

    def __init__(
        self,
        directory: str | Path,
        compressor: ValueCompressor,
        ratio_threshold: float = 0.8,
        unmatched_threshold: float = 0.2,
        memtable_bytes: int = 64 * 1024,
    ) -> None:
        self.directory = Path(directory)
        self.compressor = compressor
        self.monitor = CompressionMonitor(
            ratio_threshold=ratio_threshold, unmatched_threshold=unmatched_threshold
        )
        self._memtable_bytes = memtable_bytes
        self.engine = LSMEngine(
            self.directory,
            policy=RecordCompressionPolicy(compressor),
            memtable_bytes=memtable_bytes,
        )
        self._retrain_events = 0
        self._sets = 0
        self._gets = 0

    def train(self, sample_values: Sequence[str]) -> None:
        self.compressor.train(sample_values)

    def set(self, key: str, value: str) -> None:
        payload = self.compressor.compress(value)
        self.monitor.observe(len(value.encode("utf-8")), len(payload))
        self.engine.put(key, value)
        self._sets += 1

    def get_compressed(self, key: str) -> bytes | None:
        return self.fetch(key)[1]

    def fetch(self, key: str) -> tuple[str | None, bytes | None]:
        # The engine already decompressed the value inside the SSTable read;
        # re-compressing is only for the cache fill, never re-decompressed.
        self._gets += 1
        value = self.engine.get(key)
        if value is None:
            return None, None
        return value, self.compressor.compress(value)

    def decompress(self, payload: bytes) -> str:
        return self.compressor.decompress(payload)

    def delete(self, key: str) -> bool:
        existed = self.engine.get(key) is not None
        self.engine.delete(key)
        return existed

    def needs_retraining(self) -> bool:
        return self.monitor.needs_retraining(_pbc_of(self.compressor))

    def retrain(self, sample_values: Sequence[str]) -> None:
        """Re-train and rebuild: old SSTables are unreadable under new patterns."""
        live = list(self.engine.scan())
        self.engine.close()
        shutil.rmtree(self.directory, ignore_errors=True)
        self.compressor.train(sample_values)
        self.monitor.reset()
        self.engine = LSMEngine(
            self.directory,
            policy=RecordCompressionPolicy(self.compressor),
            memtable_bytes=self._memtable_bytes,
        )
        for key, value in live:
            self.set(key, value)
        self._retrain_events += 1

    def snapshot(self, shard_id: int) -> ShardSnapshot:
        pbc = _pbc_of(self.compressor)
        return ShardSnapshot(
            shard_id=shard_id,
            backend=self.name,
            compressor=self.compressor.name,
            keys=sum(1 for _ in self.engine.scan()),
            original_bytes=self.monitor.original_bytes,
            stored_bytes=self.monitor.stored_bytes,
            sets=self._sets,
            gets=self._gets,
            retrain_events=self._retrain_events,
            outlier_rate=pbc.outlier_rate if pbc is not None else 0.0,
        )

    def close(self) -> None:
        self.engine.close()


def make_shard_backend(
    kind: str,
    compressor_name: str,
    shard_id: int,
    directory: str | Path | None = None,
) -> ShardBackend:
    """Build one shard backend of ``kind`` with a fresh compressor."""
    compressor = make_value_compressor(compressor_name)
    if kind == "tierbase":
        return TierBaseShard(compressor)
    if kind == "lsm":
        if directory is None:
            raise ServiceError("the lsm backend needs a base directory")
        return LSMShard(Path(directory) / f"shard-{shard_id:03d}", compressor)
    raise ServiceError(f"unknown shard backend {kind!r}; choose from {BACKEND_CHOICES}")
