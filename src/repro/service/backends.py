"""Shard backends: the per-shard stores fronted by :class:`repro.service.KVService`.

A shard backend owns one partition of the key space, one trained value
compressor with versioned model epochs, and one
:class:`~repro.codecs.ModelLifecycle` (reservoir + drift monitor).  Two
implementations cover the two storage substrates of the reproduction:

* :class:`TierBaseShard` — an in-memory :class:`repro.tierbase.store.TierBase`
  instance (the paper's Section 7.5 deployment target),
* :class:`LSMShard` — an on-disk :class:`repro.lsm.engine.LSMEngine` with a
  :class:`~repro.lsm.sstable.RecordCompressionPolicy`, so values are compressed
  per record inside SSTable blocks and point reads decompress one value.

Retraining is epoch-based for both: a new model epoch is installed for future
writes while every stored payload (TierBase dict entry or cold SSTable block)
keeps decoding against the epoch stamped into its header.  Neither backend
rewrites data on retrain any more — the TierBase stop-the-world recompression
and the LSM rebuild-the-shard path were deleted with the
:mod:`repro.codecs` refactor (see ``benchmarks/bench_retrain.py`` for the
before/after cost).

The compressor menu is enumerated from the codec registry: every trainable
registered codec is a valid per-shard value compressor, plus ``"none"``.
Backends are *not* thread-safe on their own; the service serialises every
mutation of a shard through that shard's single-worker executor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator, Sequence

from repro.codecs import ModelLifecycle
from repro.codecs.registry import trainable_codec_names
from repro.compressors.stdlib_codecs import GzipCodec
from repro.exceptions import CodecError, ServiceError
from repro.ioutil import atomic_write_bytes
from repro.lsm.engine import LSMEngine
from repro.lsm.sstable import (
    BlockCompressionPolicy,
    PlainPolicy,
    RecordCompressionPolicy,
    StoragePolicy,
)
from repro.service.stats import ShardSnapshot
from repro.tierbase.compression import (
    NoopValueCompressor,
    PBCValueCompressor,
    ValueCompressor,
    VersionedValueCompressor,
    ZstdDictValueCompressor,
)
from repro.tierbase.store import TierBase

#: Compressor names accepted by :func:`make_value_compressor` (CLI / config):
#: "none" plus every trainable codec in the registry, in codec-id order.
COMPRESSOR_CHOICES: tuple[str, ...] = ("none", *trainable_codec_names())

#: Backend names accepted by :func:`make_shard_backend` (CLI / config).
BACKEND_CHOICES: tuple[str, ...] = ("tierbase", "lsm")


def make_value_compressor(name: str) -> ValueCompressor:
    """Build a fresh value compressor by its CLI name (one per shard)."""
    if name == "none":
        return NoopValueCompressor()
    if name == "zstd":
        return ZstdDictValueCompressor()
    if name == "pbc":
        return PBCValueCompressor(use_fsst=False)
    if name == "pbc_f":
        return PBCValueCompressor(use_fsst=True)
    if name in COMPRESSOR_CHOICES:
        # Any other trainable registry codec (e.g. fsst) via the generic wrapper.
        return VersionedValueCompressor(name)
    raise ServiceError(f"unknown value compressor {name!r}; choose from {COMPRESSOR_CHOICES}")


class ShardBackend(ABC):
    """One shard's store: keyed string values behind a trained compressor."""

    #: backend name reported in snapshots ("tierbase" / "lsm").
    name: str = "shard"
    #: the shard's train → monitor → retrain loop (reservoir + drift monitor).
    lifecycle: ModelLifecycle

    @abstractmethod
    def train(self, sample_values: Sequence[str]) -> None:
        """Offline-train this shard's value compressor."""

    @abstractmethod
    def set(self, key: str, value: str) -> int:
        """Insert or overwrite ``key``; returns the assigned LSN."""

    def set_many(self, items: Sequence[tuple[str, str]]) -> int:
        """Insert/overwrite a batch; returns the batch's **last** LSN.

        Backends with a batched write path (LSM: one WAL buffer, one
        durability barrier) override this; the default is a per-item loop
        with identical semantics."""
        lsn = self.last_applied()
        for key, value in items:
            lsn = self.set(key, value)
        return lsn

    @abstractmethod
    def last_applied(self) -> int:
        """The newest LSN this shard has applied (0 before the first write).

        This is the read-your-writes watermark: once ``last_applied() >=
        lsn`` for an LSN a ``set`` returned, a read against this shard
        observes that write.
        """

    @property
    @abstractmethod
    def oplog(self):
        """The shard's :class:`~repro.oplog.log.OperationLog` (attach
        :class:`~repro.oplog.sink.SubscriberSink` replication taps here)."""

    @abstractmethod
    def get_compressed(self, key: str) -> bytes | None:
        """Compressed payload for ``key`` (``None`` when missing) — feeds the cache."""

    @abstractmethod
    def decompress(self, payload: bytes) -> str:
        """Decode a payload produced by :meth:`get_compressed`.

        Raises :class:`~repro.exceptions.ModelEpochError` when the payload
        references a model epoch that is no longer retained.
        """

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""

    @abstractmethod
    def scan(
        self, start: str | None = None, end: str | None = None, limit: int | None = None
    ) -> Iterator[tuple[str, str]]:
        """Live ``(key, value)`` entries with ``start <= key < end`` in key order.

        ``limit`` bounds the result count; values are decoded as the iterator
        advances.  The service runs the whole scan on the shard's worker, so
        implementations see a quiesced store.
        """

    @abstractmethod
    def retrain(self, sample_values: Sequence[str]) -> None:
        """Install a new model epoch trained on ``sample_values``."""

    @abstractmethod
    def snapshot(self, shard_id: int) -> ShardSnapshot:
        """Point-in-time statistics for this shard."""

    def needs_retraining(self) -> bool:
        """Whether the drift monitor flags this shard for retraining."""
        return self.lifecycle.needs_retrain(self.outlier_rate)

    @property
    def outlier_rate(self) -> float:
        """The compressor's outlier rate since its current epoch."""
        return 0.0

    def retrain_from_recent(self) -> bool:
        """Retrain on the lifecycle reservoir; False when the reservoir is empty."""
        sample = self.lifecycle.sample()
        if not sample:
            return False
        self.retrain(sample)
        return True

    def get(self, key: str) -> str | None:
        """Fetch and decompress ``key`` (``None`` when missing)."""
        value, _ = self.fetch(key)
        return value

    def fetch(self, key: str) -> tuple[str | None, bytes | None]:
        """``(value, cacheable_payload)`` in one read; ``(None, None)`` when missing.

        The default goes through :meth:`get_compressed` + :meth:`decompress`,
        which is optimal for backends that store the compressed payload
        directly; backends whose stored form is not the per-value payload
        (LSM) override this to avoid paying a decompress on the value path.
        """
        payload = self.get_compressed(key)
        if payload is None:
            return None, None
        return self.decompress(payload), payload

    def flush(self) -> None:
        """Persist durable state (snapshot / WAL barrier); no-op when ephemeral."""

    def close(self) -> None:
        """Release any resources (files, logs)."""


class TierBaseShard(ShardBackend):
    """In-memory shard over a :class:`TierBase` store (compression built in).

    With a ``directory`` the shard is persistent, RDB-style: :meth:`flush`
    publishes an atomic ``TBS2`` snapshot (``snapshot.tbs``) of the whole
    store — payloads and trained model epochs — and construction reloads an
    existing snapshot, so a reopened shard serves every key that was
    acknowledged before the last flush (the service flushes on close/drain).
    Writes after the last snapshot are lost on a hard kill; that is the
    in-memory store's contract, unlike the LSM shard's WAL.
    """

    name = "tierbase"

    def __init__(
        self,
        compressor: ValueCompressor,
        ratio_threshold: float = 0.8,
        unmatched_threshold: float = 0.2,
        train_size: int = 256,
        directory: str | Path | None = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._snapshot_path = (
            self.directory / "snapshot.tbs" if self.directory is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        if self._snapshot_path is not None and self._snapshot_path.exists():
            self.store = TierBase.load(
                self._snapshot_path,
                compressor=compressor,
                ratio_threshold=ratio_threshold,
                unmatched_threshold=unmatched_threshold,
                train_size=train_size,
            )
            self._dirty = False
        else:
            self.store = TierBase(
                compressor=compressor,
                ratio_threshold=ratio_threshold,
                unmatched_threshold=unmatched_threshold,
                train_size=train_size,
            )
            self._dirty = True  # first flush publishes the baseline snapshot
        self.lifecycle = self.store.lifecycle
        self._retrain_events = 0

    def train(self, sample_values: Sequence[str]) -> None:
        self.store.train(sample_values)
        self._dirty = True

    def set(self, key: str, value: str) -> int:
        lsn = self.store.set(key, value)
        self._dirty = True
        return lsn

    def last_applied(self) -> int:
        return self.store.last_applied_lsn

    @property
    def oplog(self):
        return self.store.oplog

    def get_compressed(self, key: str) -> bytes | None:
        return self.store.get_compressed(key)

    def decompress(self, payload: bytes) -> str:
        return self.store.compressor.decompress(payload)

    def delete(self, key: str) -> bool:
        existed = self.store.delete(key)
        self._dirty = self._dirty or existed
        return existed

    def scan(
        self, start: str | None = None, end: str | None = None, limit: int | None = None
    ) -> Iterator[tuple[str, str]]:
        return self.store.scan(start, end, limit)

    @property
    def outlier_rate(self) -> float:
        return self.store.compressor.outlier_rate

    def retrain(self, sample_values: Sequence[str]) -> None:
        # Epoch-based: installs a new model, rewrites nothing, blocks no reads.
        self.store.retrain(sample_values)
        self._retrain_events += 1
        self._dirty = True

    def snapshot(self, shard_id: int) -> ShardSnapshot:
        stats = self.store.stats()
        bytes_on_disk = 0
        if self._snapshot_path is not None and self._snapshot_path.exists():
            bytes_on_disk = self._snapshot_path.stat().st_size
        return ShardSnapshot(
            shard_id=shard_id,
            backend=self.name,
            compressor=self.store.compressor.name,
            keys=stats.keys,
            original_bytes=stats.original_value_bytes,
            stored_bytes=stats.stored_value_bytes,
            sets=stats.sets,
            gets=stats.gets,
            retrain_events=self._retrain_events,
            outlier_rate=self.outlier_rate,
            bytes_on_disk=bytes_on_disk,
            model_epoch=self.store.compressor.current_epoch,
            model_epoch_age_seconds=self.lifecycle.model_age_seconds,
            last_lsn=self.store.last_applied_lsn,
            oplog_lag_records=self.store.oplog.subscriber_lag(),
        )

    def flush(self) -> None:
        # Dirty-tracked: the close path flushes up to three times (server
        # drain → KVService.close → backend.close); only the first with
        # changes pays the snapshot serialisation + fsyncs.
        if self._snapshot_path is not None and self._dirty:
            self.store.save(self._snapshot_path)
            self._dirty = False

    def close(self) -> None:
        self.flush()


class LSMShard(ShardBackend):
    """On-disk shard over an :class:`LSMEngine` with per-record compression.

    Storage is tiered by level ("hot levels raw, cold levels trained"):
    level-0 flush tables stay **plain** (the write path never waits on a
    compressor), level 1 is **block-compressed** with a cheap general-purpose
    codec, and every deeper level uses the shard's trained
    :class:`RecordCompressionPolicy` — each block stamped with the model
    epoch that wrote it.  Background compaction migrates data down the
    hierarchy, so values are record-compressed exactly once, when they go
    cold; the shard additionally compresses each value once on SET to feed
    the drift monitor (the monitor tracks what the cold levels *will*
    store).  A merge into a cold level first offers the shard a retrain
    (``compaction_hook``): if the drift monitor says the model is stale, a
    new epoch is installed right before the rewrite, and the old epoch's
    last block references retire with the compacted inputs.
    """

    name = "lsm"

    #: level at which tables switch to the trained per-record compressor.
    COLD_LEVEL = 2

    def __init__(
        self,
        directory: str | Path,
        compressor: ValueCompressor,
        ratio_threshold: float = 0.8,
        unmatched_threshold: float = 0.2,
        memtable_bytes: int = 64 * 1024,
        train_size: int = 256,
        sync_mode: str = "flush",
        background_compaction: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.compressor = compressor
        self.lifecycle = ModelLifecycle(
            reservoir_size=train_size,
            ratio_threshold=ratio_threshold,
            unmatched_threshold=unmatched_threshold,
        )
        self.monitor = self.lifecycle.monitor
        self._memtable_bytes = memtable_bytes
        # On-disk payloads outlive the process, so the trained-model epochs
        # must too: restore the model store persisted next to the SSTables
        # *before* the engine replays the WAL / opens existing tables.
        self._models_path = self.directory / "models.bin"
        if self._models_path.exists():
            if self.compressor.dump_models() is None:
                # An un-versioned compressor would silently skip the codec
                # check inside load_models (a no-op for it) and then decode
                # versioned blocks as garbage — refuse up front instead.
                raise CodecError(
                    f"{self.directory} was written by a versioned compressor "
                    f"(models.bin present); reopen it with that compressor, not "
                    f"{self.compressor.name!r}"
                )
            self.compressor.load_models(self._models_path.read_bytes())
        record_policy = RecordCompressionPolicy(compressor)
        level_policies: dict[int, StoragePolicy] = {
            0: PlainPolicy(),
            1: BlockCompressionPolicy(GzipCodec()),
            self.COLD_LEVEL: record_policy,
        }
        self.engine = LSMEngine(
            self.directory,
            # Default policy doubles as the resolver for pre-stamp (STB2)
            # tables, which this shard only ever wrote record-compressed.
            policy=record_policy,
            memtable_bytes=memtable_bytes,
            sync_mode=sync_mode,
            background_compaction=background_compaction,
            level_policies=level_policies,
            compaction_hook=self._before_cold_rewrite,
            # Stamp every logged record with the model epoch current at
            # write time, so a follower knows which epoch governed the value.
            epoch_provider=lambda: self.compressor.current_epoch,
        )
        self._retrain_events = 0
        self._sets = 0
        self._gets = 0

    def _before_cold_rewrite(self, level: int) -> None:
        """Compaction-aware retraining, called by the engine's compactor
        right before it merges into a record-compressed level.

        If the drift monitor flags the model as stale, the new epoch is
        installed *now*, so the cold rewrite encodes against it — retraining
        rides a rewrite that was happening anyway, and the superseded
        epoch's last block references go away with the compacted inputs.
        """
        if self.lifecycle.needs_retrain(self.compressor.outlier_rate):
            self.retrain_from_recent()

    def _save_models(self) -> None:
        payload = self.compressor.dump_models()
        if payload is not None:
            # Atomic publication: a crash mid-write must leave the previous
            # complete model store, not a torn models.bin that fails reopen.
            atomic_write_bytes(self._models_path, payload)

    def train(self, sample_values: Sequence[str]) -> None:
        self.compressor.train(sample_values)
        self.lifecycle.mark_trained()
        self._save_models()

    def set(self, key: str, value: str) -> int:
        payload = self.compressor.compress(value)
        self.lifecycle.observe(value, len(value.encode("utf-8")), len(payload))
        lsn = self.engine.put(key, value)
        self._sets += 1
        return lsn

    def set_many(self, items: Sequence[tuple[str, str]]) -> int:
        # One WAL buffer + one durability barrier + one flush check for the
        # whole batch (vs per-item in the default loop); the drift monitor
        # still observes every value.
        for _, value in items:
            payload = self.compressor.compress(value)
            self.lifecycle.observe(value, len(value.encode("utf-8")), len(payload))
        lsn = self.engine.put_many(items)
        self._sets += len(items)
        return lsn

    def last_applied(self) -> int:
        return self.engine.last_applied_lsn

    @property
    def oplog(self):
        return self.engine.oplog

    def get_compressed(self, key: str) -> bytes | None:
        return self.fetch(key)[1]

    def fetch(self, key: str) -> tuple[str | None, bytes | None]:
        # The engine already decompressed the value inside the SSTable read;
        # re-compressing is only for the cache fill, never re-decompressed.
        self._gets += 1
        value = self.engine.get(key)
        if value is None:
            return None, None
        return value, self.compressor.compress(value)

    def decompress(self, payload: bytes) -> str:
        return self.compressor.decompress(payload)

    def delete(self, key: str) -> bool:
        existed = self.engine.get(key) is not None
        self.engine.delete(key)
        return existed

    def scan(
        self, start: str | None = None, end: str | None = None, limit: int | None = None
    ) -> Iterator[tuple[str, str]]:
        return self.engine.scan(start, end, limit)

    @property
    def outlier_rate(self) -> float:
        return self.compressor.outlier_rate

    def retrain(self, sample_values: Sequence[str]) -> None:
        """Install a new model epoch; existing SSTables stay readable.

        Pre-registry, this tore the whole shard down and re-ingested every
        live key because old SSTables were unreadable under the new patterns.
        With epoch-stamped blocks the old tables decode against their retained
        epochs, so a retrain is just an offline training pass.
        """
        self.compressor.train(sample_values)
        self.lifecycle.mark_trained()
        self._save_models()
        self.lifecycle.monitor.reset()
        self._retrain_events += 1

    def snapshot(self, shard_id: int) -> ShardSnapshot:
        monitor = self.lifecycle.monitor
        disk = self.engine.disk_stats()
        return ShardSnapshot(
            shard_id=shard_id,
            backend=self.name,
            compressor=self.compressor.name,
            keys=sum(1 for _ in self.engine.scan()),
            original_bytes=monitor.original_bytes,
            stored_bytes=monitor.stored_bytes,
            sets=self._sets,
            gets=self._gets,
            retrain_events=self._retrain_events,
            outlier_rate=self.outlier_rate,
            bytes_on_disk=disk.bytes_on_disk,
            model_epoch=self.compressor.current_epoch,
            model_epoch_age_seconds=self.lifecycle.model_age_seconds,
            sstables=disk.sstable_count,
            wal_fsyncs=disk.wal_fsyncs,
            wal_fsync_seconds=disk.wal_fsync_seconds,
            levels=disk.levels,
            pending_compaction_bytes=disk.pending_compaction_bytes,
            compaction_stall_seconds=disk.compaction_stall_seconds,
            compactions=disk.compactions,
            last_lsn=self.engine.last_applied_lsn,
            oplog_lag_records=self.engine.oplog.subscriber_lag(),
        )

    def flush(self) -> None:
        # The WAL already covers the memtable; a hard fsync barrier is all a
        # mid-run flush needs to make every acknowledged write crash-proof.
        self.engine.sync()

    def close(self) -> None:
        self.engine.close()


def make_shard_backend(
    kind: str,
    compressor_name: str,
    shard_id: int,
    directory: str | Path | None = None,
    train_size: int = 256,
    sync_mode: str = "flush",
    background_compaction: bool = True,
) -> ShardBackend:
    """Build one shard backend of ``kind`` with a fresh compressor.

    With a base ``directory`` both backends are persistent under
    ``shard-NNN/`` subdirectories: lsm shards always (WAL + SSTables +
    models.bin), tierbase shards via ``TBS2`` snapshots written on flush.
    ``background_compaction`` puts each lsm shard's compaction on its own
    scheduler thread (admission-controlled writes); disable it for
    strictly deterministic single-threaded shards.
    """
    compressor = make_value_compressor(compressor_name)
    shard_directory = (
        Path(directory) / f"shard-{shard_id:03d}" if directory is not None else None
    )
    if kind == "tierbase":
        return TierBaseShard(compressor, train_size=train_size, directory=shard_directory)
    if kind == "lsm":
        if shard_directory is None:
            raise ServiceError("the lsm backend needs a base directory")
        return LSMShard(
            shard_directory,
            compressor,
            train_size=train_size,
            sync_mode=sync_mode,
            background_compaction=background_compaction,
        )
    raise ServiceError(f"unknown shard backend {kind!r}; choose from {BACKEND_CHOICES}")
