"""Plain-text table rendering for the benchmark harness.

Every experiment runner in :mod:`repro.bench.experiments` returns a list of row
dictionaries; this module renders them as aligned text tables so the pytest
benchmarks and the examples can print output resembling the paper's tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats with fixed precision, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render ``rows`` as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Missing cells render as an empty string.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {column: format_value(row.get(column, ""), precision) for column in columns} for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered)) for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rendered:
        lines.append(" | ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def render_comparison(
    rows: Sequence[Mapping[str, object]],
    measured_column: str,
    paper_column: str,
    label_column: str = "dataset",
    title: str | None = None,
) -> str:
    """Render a paper-vs-measured comparison (used by EXPERIMENTS.md generation)."""
    columns = [label_column, paper_column, measured_column]
    return render_table(rows, columns=columns, title=title)
