"""Pareto-frontier computation for the Figure 6 analysis.

Figure 6 plots every method as (compression ratio, speed) and identifies the
Pareto-optimal set: a method is on the frontier if no other method is at least
as good on both axes and strictly better on one.  Lower compression ratio is
better; higher speed is better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class ParetoPoint:
    """One method's position in the ratio/speed plane."""

    name: str
    ratio: float  # lower is better
    speed: float  # higher is better (MB/s)

    def dominates(self, other: "ParetoPoint") -> bool:
        """Whether this point is at least as good on both axes and better on one."""
        at_least_as_good = self.ratio <= other.ratio and self.speed >= other.speed
        strictly_better = self.ratio < other.ratio or self.speed > other.speed
        return at_least_as_good and strictly_better


def pareto_frontier(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Return the non-dominated points, sorted by compression ratio."""
    point_list = list(points)
    frontier = [
        point
        for point in point_list
        if not any(other.dominates(point) for other in point_list if other is not point)
    ]
    return sorted(frontier, key=lambda point: (point.ratio, -point.speed))


def is_pareto_optimal(name: str, points: Sequence[ParetoPoint]) -> bool:
    """Whether the method called ``name`` is on the Pareto frontier of ``points``."""
    return any(point.name == name for point in pareto_frontier(points))
