"""Evidence-grade perf harness: experiment grids → committed ``BENCH_*.json``.

ROADMAP item 3's shape (after the run-table exemplars in SNIPPETS.md): a
**declared** experiment grid fills a flat run table — one row per
(cell, repetition) with throughput, latency percentiles and correctness
tallies — plus an environment fingerprint, so any analysis can be rebuilt
from the JSON alone and any two JSONs can be diffed by machine.

Two areas are registered:

* ``wire`` — closed-loop :func:`repro.net.loadgen.run_wire_workload` cells
  over a live :class:`~repro.net.server.ThreadedKVServer`, spanning value
  codec × pipeline depth (0 = server-side MGET/MSET batching).  Latency
  percentiles are amortised round-trip times (``clock: "round-trip"``).
* ``service`` — open-loop YCSB scenario cells
  (:func:`repro.scenarios.runner.run_suite`), spanning backend × workload
  mix.  Latency percentiles are measured from each operation's *scheduled*
  release (``clock: "scheduled-release"``), so queueing under overload is
  visible, and the scenario oracle's lost/corrupt tallies ride along.

Every document also carries the speed campaign's **before/after
optimization pairs** (:mod:`repro.bench.hotpaths`), re-measured live at
write time — the "no row, no merge" evidence for each attacked hot path.

:func:`compare_documents` is the regression gate: cells are matched by
their dimension values, repetitions are averaged, and any cell whose
throughput drops by more than the threshold (or that disappeared) fails
the comparison.  CI runs a smoke grid and compares against the committed
baseline with a generous threshold (shared runners are noisy); local runs
can use a tight one.
"""

from __future__ import annotations

import itertools
import json
import os
import platform
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.exceptions import ReproError

__all__ = [
    "AREAS",
    "BenchHarnessError",
    "ExperimentGrid",
    "PROFILE_TARGETS",
    "SCHEMA",
    "area_names",
    "compare_documents",
    "default_output_path",
    "env_fingerprint",
    "get_area",
    "load_document",
    "profile_target",
    "run_area",
    "validate_document",
]

#: schema marker stamped into (and required from) every benchmark document.
SCHEMA = "repro-bench/1"

#: metric keys present in every run-table row (beyond the cell dimensions).
ROW_METRIC_KEYS = (
    "repetition",
    "ops_per_second",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "lost",
    "corrupt",
    "clock",
)

#: required keys of the document envelope.
DOCUMENT_KEYS = ("schema", "area", "created_unix", "env", "config", "rows", "optimizations")

#: required keys of the environment fingerprint.
ENV_KEYS = ("python", "platform", "cpu_count", "git_sha")

#: required keys of one optimization before/after pair.
PAIR_KEYS = ("name", "metric", "before", "after", "improvement")


class BenchHarnessError(ReproError):
    """A malformed benchmark document or an impossible comparison."""


# ----------------------------------------------------------------------- grid


@dataclass(frozen=True)
class ExperimentGrid:
    """A declared experiment area: dimensions × fixed base knobs.

    ``dimensions`` maps dimension name → the tuple of values it sweeps; the
    run table contains one row per element of the cartesian product per
    repetition.  ``base`` holds the fixed workload knobs (operation count,
    offered rate, …) that :func:`run_area` may override — scaling the
    workload down for a CI smoke run changes the *load*, never the cells,
    so a smoke table stays comparable against a committed baseline.
    """

    name: str
    description: str
    kind: str  # "closed_wire" | "open_scenario"
    dimensions: Mapping[str, tuple]
    base: Mapping[str, object] = field(default_factory=dict)

    def cells(self) -> list[dict]:
        """The cartesian product of :attr:`dimensions`, in declared order."""
        names = list(self.dimensions)
        return [
            dict(zip(names, values))
            for values in itertools.product(*(self.dimensions[name] for name in names))
        ]

    def summary_row(self) -> dict:
        """One row for ``repro bench list``."""
        return {
            "area": self.name,
            "kind": self.kind,
            "cells": len(self.cells()),
            "dimensions": ", ".join(
                f"{name}={'/'.join(str(value) for value in values)}"
                for name, values in self.dimensions.items()
            ),
            "description": self.description,
        }


AREAS: dict[str, ExperimentGrid] = {
    grid.name: grid
    for grid in (
        ExperimentGrid(
            name="wire",
            description="RKV1 wire throughput: codec × pipeline depth, closed loop",
            kind="closed_wire",
            dimensions={"codec": ("none", "pbc_f"), "pipeline_depth": (0, 8)},
            base={
                "backend": "tierbase",
                "shards": 2,
                "sync_mode": "flush",
                "operations": 600,
                "values": 256,
                "clients": 2,
                "batch_size": 8,
                "get_fraction": 0.7,
                "dataset": "kv1",
                "seed": 2023,
            },
        ),
        ExperimentGrid(
            name="service",
            description="YCSB mixes over the full stack: backend × mix × shards, open loop",
            kind="open_scenario",
            dimensions={
                "backend": ("tierbase", "lsm"),
                "mix": ("ycsb_a", "ycsb_b"),
                "shards": (1, 4),
            },
            base={
                "codec": "pbc_f",
                "sync_mode": "flush",
                "shards": 2,
                "operations": 512,
                "rate": 2000.0,
                "workers": 4,
                "records": 256,
                "values": 256,
                "seed": 2023,
            },
        ),
        ExperimentGrid(
            name="sustained",
            description="sustained-write flatness: compaction mode, open-loop paced puts",
            kind="sustained_write",
            dimensions={"compaction": ("legacy", "inline", "background")},
            base={
                "seconds": 20.0,
                "window_seconds": 5.0,
                "warmup_seconds": 10.0,
                # modest offered rate: the claim is that background merges
                # run in the pacing *headroom*, so the grid offers a rate the
                # engine can absorb while a merge holds the GIL on one CPU —
                # the legacy mode still fails because its synchronous merge
                # blocks the writer entirely, at any offered rate.
                "rate": 1200.0,
                "value_bytes": 256,
                # effectively-unique keys: the store grows over the run, so
                # the legacy write-path merge's O(store) pauses lengthen —
                # the behavior the flatness score exists to expose.
                "keyspace": 1 << 30,
                "memtable_bytes": 512 * 1024,
                "compaction_trigger": 4,
                "sync_mode": "none",
                "seed": 2023,
            },
        ),
    )
}

#: the before/after pair runners re-measured into each area's document.
_AREA_PAIRS: dict[str, tuple[str, ...]] = {
    "wire": ("pair_frame_decode", "pair_mvalue_decode"),
    "service": ("pair_matcher_index", "pair_service_dispatch", "pair_background_compaction"),
    "sustained": ("pair_wal_encode",),
}


def area_names() -> list[str]:
    """Registered area names, in registration order."""
    return list(AREAS)


def get_area(name: str) -> ExperimentGrid:
    """Return the grid registered under ``name``."""
    if name not in AREAS:
        raise BenchHarnessError(
            f"unknown bench area {name!r}; available: {area_names()}"
        )
    return AREAS[name]


def default_output_path(area: str, directory: str | Path = ".") -> Path:
    """The committed location of an area's document: ``BENCH_<area>.json``."""
    return Path(directory) / f"BENCH_{area}.json"


# ---------------------------------------------------------------- fingerprint


def env_fingerprint() -> dict:
    """Where this table was measured: interpreter, machine shape, commit."""
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        git_sha = "unknown"
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": git_sha or "unknown",
    }


# ---------------------------------------------------------------- cell runners


def _percentile_ms(latencies: Sequence[float], fraction: float) -> float:
    from repro.service.stats import percentile

    return round(percentile(sorted(latencies), fraction) * 1e3, 3)


def _run_wire_cell(cell: Mapping, base: Mapping) -> dict:
    """One closed-loop wire run against a fresh in-process server."""
    from repro.datasets import load_dataset
    from repro.net.loadgen import run_wire_workload
    from repro.net.server import ServerConfig, ThreadedKVServer
    from repro.service.service import KVService, ServiceConfig

    backend = str(cell.get("backend", base["backend"]))
    codec = str(cell.get("codec", base.get("codec", "pbc_f")))
    values = load_dataset(str(base["dataset"]), count=int(base["values"]), seed=int(base["seed"]))
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as directory:
        config = ServiceConfig(
            shard_count=int(cell.get("shards", base["shards"])),
            backend=backend,
            compressor=codec,
            sync_mode=str(cell.get("sync_mode", base["sync_mode"])),
            directory=directory if backend == "lsm" else None,
        )
        service = KVService(config)
        try:
            if codec != "none":
                service.train(values)
            with ThreadedKVServer(service, ServerConfig(port=0)) as server:
                host, port = server.address
                result = run_wire_workload(
                    host,
                    port,
                    values,
                    operations=int(base["operations"]),
                    get_fraction=float(base["get_fraction"]),
                    batch_size=int(base["batch_size"]),
                    clients=int(base["clients"]),
                    pipeline_depth=int(cell["pipeline_depth"]),
                    seed=int(base["seed"]),
                )
        finally:
            service.close()
    return {
        "ops_per_second": round(result.ops_per_second, 1),
        "p50_ms": _percentile_ms(result.latencies, 0.50),
        "p95_ms": _percentile_ms(result.latencies, 0.95),
        "p99_ms": _percentile_ms(result.latencies, 0.99),
        "lost": result.lost_responses,
        "corrupt": result.corrupt_responses,
        "clock": "round-trip",
    }


def _run_scenario_cell(cell: Mapping, base: Mapping) -> dict:
    """One open-loop YCSB scenario run through the scenario suite."""
    from repro.scenarios.runner import run_suite

    results = run_suite(
        [str(cell["mix"])],
        backends=(str(cell.get("backend", base.get("backend", "tierbase"))),),
        operations=int(base["operations"]),
        rate=float(base["rate"]),
        workers=int(base["workers"]),
        records=int(base["records"]),
        value_count=int(base["values"]),
        seed=int(base["seed"]),
        shard_count=int(cell.get("shards", base["shards"])),
        compressor=str(cell.get("codec", base["codec"])),
    )
    row = results[0].row()
    return {
        "ops_per_second": row["achieved_rate"],
        "p50_ms": row["p50_ms"],
        "p95_ms": row["p95_ms"],
        "p99_ms": row["p99_ms"],
        "lost": row["lost"],
        "corrupt": row["corrupt"],
        "clock": "scheduled-release",
    }


def _run_sustained_cell(cell: Mapping, base: Mapping) -> dict:
    """One sustained-write flatness run against a fresh bare LSM engine."""
    from repro.bench.sustained import run_sustained_write

    if float(base["seconds"]) <= 0:
        raise BenchHarnessError("sustained run needs a positive --seconds")
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as directory:
        result = run_sustained_write(
            directory,
            mode=str(cell.get("compaction", "background")),
            seconds=float(base["seconds"]),
            window_seconds=float(base["window_seconds"]),
            warmup_seconds=float(base["warmup_seconds"]),
            rate=float(base["rate"]),
            value_bytes=int(base["value_bytes"]),
            keyspace=int(base["keyspace"]),
            memtable_bytes=int(base["memtable_bytes"]),
            compaction_trigger=int(base["compaction_trigger"]),
            sync_mode=str(base["sync_mode"]),
            seed=int(base["seed"]),
        )
    return {
        "ops_per_second": round(result.ops_per_second, 1),
        "p50_ms": round(result.p50_ms, 3),
        "p95_ms": round(result.p95_ms, 3),
        "p99_ms": round(result.p99_ms, 3),
        "lost": 0,
        "corrupt": 0,
        "clock": "scheduled-release",
        "offered_rate": result.offered_rate,
        "windows": [round(rate, 1) for rate in result.windows],
        "flatness": round(result.flatness, 4),
        "stall_seconds": round(result.stall_seconds, 3),
        "compactions": result.compactions,
    }


_CELL_RUNNERS: dict[str, Callable[[Mapping, Mapping], dict]] = {
    "closed_wire": _run_wire_cell,
    "open_scenario": _run_scenario_cell,
    "sustained_write": _run_sustained_cell,
}


# ------------------------------------------------------------------- run_area


def run_area(
    area: str,
    repetitions: int = 2,
    warmup: int = 1,
    overrides: Mapping[str, object] | None = None,
    pairs: bool = True,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Execute one area's grid and return its benchmark document.

    Every cell runs ``warmup`` throwaway repetitions followed by
    ``repetitions`` recorded ones (repetition ids count from 0 and are
    strictly increasing within a cell).  ``overrides`` replaces base
    workload knobs — e.g. ``{"operations": 128}`` for a CI smoke run —
    without changing the cell dimensions.  With ``pairs`` the area's
    hot-path before/after rows are re-measured and embedded.
    """
    if repetitions < 1:
        raise BenchHarnessError("benchmark needs at least one repetition")
    if warmup < 0:
        raise BenchHarnessError("warmup repetitions cannot be negative")
    grid = get_area(area)
    runner = _CELL_RUNNERS[grid.kind]
    base = dict(grid.base)
    if overrides:
        unknown = set(overrides) - set(base)
        if unknown:
            raise BenchHarnessError(
                f"unknown base knob(s) {sorted(unknown)} for area {area!r}; "
                f"available: {sorted(base)}"
            )
        base.update(overrides)
    say = progress if progress is not None else (lambda _message: None)
    rows: list[dict] = []
    cells = grid.cells()
    for position, cell in enumerate(cells):
        label = ", ".join(f"{name}={value}" for name, value in cell.items())
        for _ in range(warmup):
            say(f"[{position + 1}/{len(cells)}] warmup   {label}")
            runner(cell, base)
        for repetition in range(repetitions):
            say(f"[{position + 1}/{len(cells)}] rep {repetition}    {label}")
            metrics = runner(cell, base)
            rows.append({**cell, "repetition": repetition, **metrics})
    optimizations: list[dict] = []
    if pairs:
        from repro.bench import hotpaths

        for pair_name in _AREA_PAIRS.get(area, ()):
            say(f"pair {pair_name}")
            optimizations.append(getattr(hotpaths, pair_name)())
    document = {
        "schema": SCHEMA,
        "area": area,
        "created_unix": int(time.time()),
        "env": env_fingerprint(),
        "config": {
            "kind": grid.kind,
            "dimensions": {name: list(values) for name, values in grid.dimensions.items()},
            "base": base,
            "repetitions": repetitions,
            "warmup": warmup,
        },
        "rows": rows,
        "optimizations": optimizations,
    }
    validate_document(document)
    return document


# ----------------------------------------------------------------- validation


def validate_document(document: Mapping) -> None:
    """Check the document envelope, row schema and repetition monotonicity."""
    for key in DOCUMENT_KEYS:
        if key not in document:
            raise BenchHarnessError(f"benchmark document is missing key {key!r}")
    if document["schema"] != SCHEMA:
        raise BenchHarnessError(
            f"unsupported schema {document['schema']!r} (expected {SCHEMA!r})"
        )
    for key in ENV_KEYS:
        if key not in document["env"]:
            raise BenchHarnessError(f"env fingerprint is missing key {key!r}")
    dimension_names = list(document["config"]["dimensions"])
    last_repetition: dict[tuple, int] = {}
    for row in document["rows"]:
        for key in ROW_METRIC_KEYS:
            if key not in row:
                raise BenchHarnessError(f"run-table row is missing key {key!r}: {row}")
        for name in dimension_names:
            if name not in row:
                raise BenchHarnessError(f"run-table row is missing dimension {name!r}: {row}")
        cell_key = _cell_key(row, dimension_names)
        previous = last_repetition.get(cell_key, -1)
        if row["repetition"] != previous + 1:
            raise BenchHarnessError(
                f"repetition ids of cell {dict(zip(dimension_names, cell_key))} are not "
                f"monotone: {row['repetition']} after {previous}"
            )
        last_repetition[cell_key] = row["repetition"]
    for pair in document["optimizations"]:
        for key in PAIR_KEYS:
            if key not in pair:
                raise BenchHarnessError(f"optimization pair is missing key {key!r}: {pair}")


def load_document(path: str | Path) -> dict:
    """Read and validate one ``BENCH_*.json`` document."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BenchHarnessError(f"{path} is not valid JSON: {error}") from error
    validate_document(document)
    return document


# ------------------------------------------------------------------ profiling


def _profile_frame_decode() -> Callable[[], None]:
    from repro.net.protocol import FrameDecoder, ValueResponse, encode_frame

    stream = encode_frame(ValueResponse(value=b"x" * 1024)) * 4000
    chunks = [stream[start : start + 65536] for start in range(0, len(stream), 65536)]

    def run() -> None:
        decoder = FrameDecoder()
        for chunk in chunks:
            decoder.feed(chunk)

    return run


def _profile_mvalue_decode() -> Callable[[], None]:
    from repro.net.protocol import FrameDecoder, MultiValueResponse, encode_frame

    frame = encode_frame(MultiValueResponse(values=tuple(b"y" * 256 for _ in range(64))))
    stream = frame * 800
    chunks = [stream[start : start + 65536] for start in range(0, len(stream), 65536)]

    def run() -> None:
        decoder = FrameDecoder()
        for chunk in chunks:
            decoder.feed(chunk)

    return run


def _profile_matcher() -> Callable[[], None]:
    from repro import PBCCompressor
    from repro.core.matcher import MultiPatternMatcher
    from repro.datasets import load_dataset

    dictionary = PBCCompressor().train(load_dataset("hdfs", count=512, seed=7)).dictionary
    population = load_dataset("hdfs", count=256, seed=11)
    workload = [population[index % len(population)] for index in range(8000)]
    # memo off, so the profile shows the real prefilter/regex work rather
    # than 99% memo hits.
    matcher = MultiPatternMatcher(dictionary, memo_entries=0)

    def run() -> None:
        for record in workload:
            matcher.match(record)

    return run


def _profile_service_dispatch() -> Callable[[], None]:
    from repro.service.service import KVService, ServiceConfig

    def run() -> None:
        config = ServiceConfig(shard_count=2, compressor="none", cache_entries=1)
        with KVService(config) as service:
            keys = [f"prof:{index:05d}" for index in range(256)]
            for key in keys:
                service.set(key, key)
            for index in range(4000):
                key = keys[index % len(keys)]
                if index & 1:
                    service.get(key)
                else:
                    service.set(key, key)

    return run


#: named workloads for ``repro bench profile``: setup → zero-arg thunk.
PROFILE_TARGETS: dict[str, Callable[[], Callable[[], None]]] = {
    "frame-decode": _profile_frame_decode,
    "mvalue-decode": _profile_mvalue_decode,
    "matcher": _profile_matcher,
    "service-dispatch": _profile_service_dispatch,
}


def profile_target(target: str, top: int = 25, sort: str = "cumulative") -> str:
    """cProfile one named hot-path workload; returns the pstats report text."""
    import cProfile
    import io
    import pstats

    if target not in PROFILE_TARGETS:
        raise BenchHarnessError(
            f"unknown profile target {target!r}; available: {sorted(PROFILE_TARGETS)}"
        )
    workload = PROFILE_TARGETS[target]()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        workload()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(sort).print_stats(top)
    return buffer.getvalue()


# ----------------------------------------------------------------- comparison


def _cell_key(row: Mapping, dimension_names: Sequence[str]) -> tuple:
    return tuple(row[name] for name in dimension_names)


def _mean_by_cell(document: Mapping, metric: str = "ops_per_second") -> dict[tuple, float]:
    dimension_names = list(document["config"]["dimensions"])
    totals: dict[tuple, list[float]] = {}
    for row in document["rows"]:
        totals.setdefault(_cell_key(row, dimension_names), []).append(
            float(row[metric])
        )
    return {key: sum(values) / len(values) for key, values in totals.items()}


def compare_documents(
    old: Mapping,
    new: Mapping,
    threshold: float = 0.15,
    latency_threshold: float | None = None,
) -> tuple[list[dict], int]:
    """Diff two benchmark documents; returns ``(report_rows, regressions)``.

    Cells are matched on their dimension values; repetitions are averaged.
    A cell regresses when its new mean throughput drops below
    ``old * (1 - threshold)``, or when it disappeared from the new table.
    With ``latency_threshold`` set, a cell also regresses when its new mean
    p99 latency grows past ``old * (1 + latency_threshold)`` — throughput
    that survives by queueing everything into the tail is still a
    regression.  Cells only present in the new table are reported but never
    fail.
    """
    if not 0.0 <= threshold < 1.0:
        raise BenchHarnessError("comparison threshold must be within [0, 1)")
    if latency_threshold is not None and latency_threshold < 0.0:
        raise BenchHarnessError("latency threshold cannot be negative")
    if old["area"] != new["area"]:
        raise BenchHarnessError(
            f"cannot compare area {old['area']!r} against {new['area']!r}"
        )
    dimension_names = list(old["config"]["dimensions"])
    old_means = _mean_by_cell(old)
    new_means = _mean_by_cell(new)
    old_p99 = _mean_by_cell(old, metric="p99_ms")
    new_p99 = _mean_by_cell(new, metric="p99_ms")
    report: list[dict] = []
    regressions = 0
    for cell_key, old_ops in old_means.items():
        label = ", ".join(
            f"{name}={value}" for name, value in zip(dimension_names, cell_key)
        )
        new_ops = new_means.get(cell_key)
        if new_ops is None:
            regressions += 1
            report.append(
                {"cell": label, "old_ops": round(old_ops, 1), "new_ops": None,
                 "delta": None, "status": "missing"}
            )
            continue
        delta = new_ops / old_ops - 1.0 if old_ops else 0.0
        regressed = new_ops < old_ops * (1.0 - threshold)
        cell_old_p99 = old_p99.get(cell_key, 0.0)
        cell_new_p99 = new_p99.get(cell_key, 0.0)
        slower = (
            latency_threshold is not None
            and cell_old_p99 > 0.0
            and cell_new_p99 > cell_old_p99 * (1.0 + latency_threshold)
        )
        if regressed or slower:
            regressions += 1
        report.append(
            {
                "cell": label,
                "old_ops": round(old_ops, 1),
                "new_ops": round(new_ops, 1),
                "delta": round(delta, 4),
                "old_p99_ms": round(cell_old_p99, 3),
                "new_p99_ms": round(cell_new_p99, 3),
                "status": (
                    "regressed" if regressed
                    else "slower" if slower
                    else "ok"
                ),
            }
        )
    for cell_key, new_ops in new_means.items():
        if cell_key in old_means:
            continue
        label = ", ".join(
            f"{name}={value}" for name, value in zip(dimension_names, cell_key)
        )
        report.append(
            {"cell": label, "old_ops": None, "new_ops": round(new_ops, 1),
             "delta": None, "status": "new"}
        )
    return report, regressions
