"""Experiment runners: one function per table / figure of the paper's Section 7.

Every runner returns a list of row dictionaries (ready for
:func:`repro.bench.reporting.render_table`) so the pytest benchmarks, the
examples and EXPERIMENTS.md generation all share the same code path.

The runners accept a :class:`BenchmarkSettings` instance that scales the
workload: the defaults are sized for a laptop-class pure-Python run (a few
hundred records per dataset), which preserves the relative ordering of the
methods even though the absolute corpus sizes are far below the paper's.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.blockstore import BlockStore, CodecRecordCompressor, RecordStore
from repro.compressors.base import Codec, CodecMeasurement
from repro.compressors.fsst import FSSTCodec
from repro.compressors.lz4like import LZ4LikeCodec
from repro.compressors.snappylike import SnappyLikeCodec
from repro.compressors.stdlib_codecs import LZMACodec
from repro.compressors.zstdlike import ZstdLikeCodec, train_dictionary
from repro.core.compressor import PBCBlockCompressor, PBCCompressor, PBCFCompressor
from repro.core.extraction import ExtractionConfig, PatternExtractor
from repro.bench.paper_reference import (
    FIGURE7_DATASETS,
    TABLE2_DATASETS,
    TABLE3_RATIOS,
    TABLE4_RATIOS,
    TABLE5_LOGS,
    TABLE6_JSON,
    TABLE7_JSON,
    TABLE8_TIERBASE,
)
from repro.bench.pareto import ParetoPoint, pareto_frontier
from repro.datasets import JSON_DATASETS, LOG_DATASETS, dataset_names, dataset_statistics, load_dataset
from repro.jsonenc import BinPackCodec, IonLikeCodec
from repro.logs import LogReducerCodec
from repro.tierbase import (
    NoopValueCompressor,
    PBCValueCompressor,
    TierBase,
    ZstdDictValueCompressor,
    run_workload,
)


@dataclass
class BenchmarkSettings:
    """Workload scaling knobs shared by all experiment runners."""

    record_count: int = 400
    train_count: int = 160
    max_patterns: int = 16
    sample_size: int = 128
    seed: int = 2023
    datasets: Sequence[str] = field(default_factory=dataset_names)

    def extraction_config(self, **overrides) -> ExtractionConfig:
        """The PBC extraction configuration used by the benchmarks."""
        parameters = {
            "max_patterns": self.max_patterns,
            "sample_size": self.sample_size,
            "seed": self.seed,
        }
        parameters.update(overrides)
        return ExtractionConfig(**parameters)


#: Settings used when a runner is called without an explicit configuration.
DEFAULT_SETTINGS = BenchmarkSettings()


# --------------------------------------------------------------------- helpers


def _measure_record_codec(codec: Codec, records: Sequence[str]) -> CodecMeasurement:
    """Line-by-line measurement of a byte codec (Table 3 protocol)."""
    payloads = [record.encode("utf-8") for record in records]
    started = time.perf_counter()
    compressed = [codec.compress(payload) for payload in payloads]
    compress_seconds = time.perf_counter() - started
    started = time.perf_counter()
    restored = [codec.decompress(blob) for blob in compressed]
    decompress_seconds = time.perf_counter() - started
    for original, result in zip(payloads, restored):
        if original != result:
            raise AssertionError(f"codec {codec.name} roundtrip mismatch")
    return CodecMeasurement(
        name=codec.name,
        original_bytes=sum(len(payload) for payload in payloads),
        compressed_bytes=sum(len(blob) for blob in compressed),
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
    )


def _measure_file_codec(codec: Codec, records: Sequence[str]) -> CodecMeasurement:
    """Whole-file measurement of a byte codec (Table 4 protocol)."""
    payload = "\n".join(records).encode("utf-8")
    started = time.perf_counter()
    compressed = codec.compress(payload)
    compress_seconds = time.perf_counter() - started
    started = time.perf_counter()
    restored = codec.decompress(compressed)
    decompress_seconds = time.perf_counter() - started
    if restored != payload:
        raise AssertionError(f"codec {codec.name} file roundtrip mismatch")
    return CodecMeasurement(
        name=codec.name,
        original_bytes=len(payload),
        compressed_bytes=len(compressed),
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
    )


def _trained_pbc(
    records: Sequence[str], settings: BenchmarkSettings, variant: str = "pbc", **config_overrides
) -> PBCCompressor:
    """Train a PBC or PBC_F compressor on the benchmark's training prefix."""
    config = settings.extraction_config(**config_overrides)
    compressor = PBCFCompressor(config=config) if variant == "pbc_f" else PBCCompressor(config=config)
    compressor.train(list(records[: settings.train_count]))
    return compressor


class _PBCFamily:
    """Trains the pattern dictionary once per dataset and shares it across variants.

    The paper trains one pattern dictionary per workload and reuses it for PBC,
    PBC_F and the block variants; sharing it here both matches that protocol and
    keeps the pure-Python benchmark runtime tolerable.
    """

    def __init__(self, records: Sequence[str], settings: BenchmarkSettings, **config_overrides) -> None:
        self._records = records
        self._settings = settings
        self._sample = list(records[: settings.train_count])
        self._base = PBCCompressor(config=settings.extraction_config(**config_overrides))
        self._base.train(self._sample)

    @property
    def pbc(self) -> PBCCompressor:
        """The shared plain PBC compressor."""
        return self._base

    def pbc_f(self) -> PBCFCompressor:
        """PBC_F reusing the shared dictionary (only the FSST table is trained)."""
        compressor = PBCFCompressor(
            dictionary=self._base.dictionary, config=self._settings.extraction_config()
        )
        compressor.train_residual(self._sample)
        return compressor

    def block(self, codec: Codec, name: str) -> PBCBlockCompressor:
        """A PBC_Z / PBC_L style block compressor reusing the shared dictionary."""
        return PBCBlockCompressor(self._base, codec, name=name)


def _paper_ratio(table: dict[str, dict[str, float]], dataset: str, method: str) -> float | None:
    return table.get(dataset, {}).get(method)


# ------------------------------------------------------------------- Table 2


def run_table2_dataset_statistics(settings: BenchmarkSettings | None = None) -> list[dict]:
    """Table 2: dataset statistics (paper corpus versus generated corpus)."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for name in settings.datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        stats = dataset_statistics(name, records)
        paper_records, paper_avg_len = TABLE2_DATASETS.get(name, (float("nan"), float("nan")))
        rows.append(
            {
                "dataset": name,
                "paper_records": paper_records,
                "paper_avg_len": paper_avg_len,
                "generated_records": stats.records,
                "generated_avg_len": round(stats.avg_record_len, 1),
                "generated_bytes": stats.total_bytes,
            }
        )
    return rows


# ------------------------------------------------------------------- Table 3


def run_table3_line_by_line(settings: BenchmarkSettings | None = None) -> list[dict]:
    """Table 3: line-by-line compression (FSST, LZ4(dict), Zstd(dict), PBC, PBC_F)."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for name in settings.datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        training = [record.encode("utf-8") for record in records[: settings.train_count]]
        dictionary = train_dictionary(training)

        fsst = FSSTCodec()
        fsst.train(training)
        family = _PBCFamily(records, settings)
        methods: list[tuple[str, object]] = [
            ("FSST", _measure_record_codec(fsst, records)),
            ("LZ4", _measure_record_codec(LZ4LikeCodec(dictionary=dictionary), records)),
            ("Zstd", _measure_record_codec(ZstdLikeCodec(level=3, dictionary=dictionary), records)),
            ("PBC", family.pbc.measure(records)),
            ("PBC_F", family.pbc_f().measure(records)),
        ]
        for method, measurement in methods:
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "ratio": round(measurement.ratio, 3),
                    "paper_ratio": _paper_ratio(TABLE3_RATIOS, name, method),
                    "comp_mb_s": round(measurement.compress_mb_per_second, 2),
                    "decomp_mb_s": round(measurement.decompress_mb_per_second, 2),
                }
            )
    return rows


# ------------------------------------------------------------------- Figure 5


def run_fig5_random_access(
    settings: BenchmarkSettings | None = None,
    datasets: Sequence[str] = ("kv2", "unece"),
    block_sizes: Sequence[int] = (1, 4, 16, 64, 256),
    lookup_fraction: float = 0.25,
) -> list[dict]:
    """Figure 5: compression ratio and lookup speed versus block size."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    rng = random.Random(settings.seed)
    for name in datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        lookups = max(1, int(len(records) * lookup_fraction))
        indices = [rng.randrange(len(records)) for _ in range(lookups)]

        fsst = FSSTCodec()
        fsst.train(record.encode("utf-8") for record in records[: settings.train_count])
        fsst_store = RecordStore.from_records(records, CodecRecordCompressor(fsst))
        pbc_store = RecordStore.from_records(records, _PBCFamily(records, settings).pbc_f())

        for block_size in block_sizes:
            zstd_store = BlockStore.from_records(records, ZstdLikeCodec(level=3), block_size=block_size)
            for method, store in (("Zstd", zstd_store), ("FSST", fsst_store), ("PBC_F", pbc_store)):
                lookup = store.measure_lookups(indices)
                rows.append(
                    {
                        "dataset": name,
                        "block_size": block_size,
                        "method": method,
                        "ratio": round(store.ratio, 3),
                        "lookups_per_second": round(lookup.lookups_per_second, 1),
                    }
                )
    return rows


# ------------------------------------------------------------------- Table 4


def run_table4_file_compression(settings: BenchmarkSettings | None = None) -> list[dict]:
    """Table 4: whole-file compression (Snappy, LZMA, LZ4, Zstd, PBC_Z, PBC_L)."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for name in settings.datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        measurements: list[tuple[str, CodecMeasurement]] = [
            ("Snappy", _measure_file_codec(SnappyLikeCodec(), records)),
            ("LZMA", _measure_file_codec(LZMACodec(preset=6), records)),
            ("LZ4", _measure_file_codec(LZ4LikeCodec(), records)),
            ("Zstd", _measure_file_codec(ZstdLikeCodec(level=6), records)),
        ]
        family = _PBCFamily(records, settings)
        for variant_name, block_codec in (("PBC_Z", ZstdLikeCodec(level=6)), ("PBC_L", LZMACodec(preset=6))):
            block_compressor = family.block(block_codec, variant_name)
            stats = block_compressor.measure(records)
            measurements.append(
                (
                    variant_name,
                    CodecMeasurement(
                        name=variant_name,
                        original_bytes=stats.original_bytes,
                        compressed_bytes=stats.compressed_bytes,
                        compress_seconds=stats.compress_seconds,
                        decompress_seconds=stats.decompress_seconds,
                    ),
                )
            )
        for method, measurement in measurements:
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "ratio": round(measurement.ratio, 3),
                    "paper_ratio": _paper_ratio(TABLE4_RATIOS, name, method),
                    "comp_mb_s": round(measurement.compress_mb_per_second, 2),
                    "decomp_mb_s": round(measurement.decompress_mb_per_second, 2),
                }
            )
    return rows


# ------------------------------------------------------------------- Figure 6


def run_fig6_pareto(settings: BenchmarkSettings | None = None) -> list[dict]:
    """Figure 6: ratio / speed positions of all methods plus Pareto membership."""
    settings = settings or DEFAULT_SETTINGS
    accumulators: dict[str, dict[str, float]] = {}

    def _accumulate(method: str, measurement: CodecMeasurement) -> None:
        entry = accumulators.setdefault(
            method,
            {"original": 0.0, "compressed": 0.0, "comp_seconds": 0.0, "decomp_seconds": 0.0},
        )
        entry["original"] += measurement.original_bytes
        entry["compressed"] += measurement.compressed_bytes
        entry["comp_seconds"] += measurement.compress_seconds
        entry["decomp_seconds"] += measurement.decompress_seconds

    for name in settings.datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        _accumulate("Snappy", _measure_file_codec(SnappyLikeCodec(), records))
        _accumulate("LZ4", _measure_file_codec(LZ4LikeCodec(), records))
        _accumulate("LZMA", _measure_file_codec(LZMACodec(preset=6), records))
        for level in (1, 3, 9):
            _accumulate(f"Zstd-{level}", _measure_file_codec(ZstdLikeCodec(level=level), records))

        training = [record.encode("utf-8") for record in records[: settings.train_count]]
        fsst = FSSTCodec()
        fsst.train(training)
        _accumulate("FSST", _measure_record_codec(fsst, records))

        family = _PBCFamily(records, settings)
        stats = family.pbc.measure(records)
        _accumulate(
            "PBC",
            CodecMeasurement("PBC", stats.original_bytes, stats.compressed_bytes, stats.compress_seconds, stats.decompress_seconds),
        )
        stats = family.pbc_f().measure(records)
        _accumulate(
            "PBC_F",
            CodecMeasurement("PBC_F", stats.original_bytes, stats.compressed_bytes, stats.compress_seconds, stats.decompress_seconds),
        )
        for variant_name, block_codec in (("PBC_Z", ZstdLikeCodec(level=6)), ("PBC_L", LZMACodec(preset=6))):
            stats = family.block(block_codec, variant_name).measure(records)
            _accumulate(
                variant_name,
                CodecMeasurement(variant_name, stats.original_bytes, stats.compressed_bytes, stats.compress_seconds, stats.decompress_seconds),
            )

    rows = []
    compression_points = []
    decompression_points = []
    for method, entry in accumulators.items():
        ratio = entry["compressed"] / entry["original"] if entry["original"] else 1.0
        comp_speed = entry["original"] / 1e6 / entry["comp_seconds"] if entry["comp_seconds"] else 0.0
        decomp_speed = entry["original"] / 1e6 / entry["decomp_seconds"] if entry["decomp_seconds"] else 0.0
        compression_points.append(ParetoPoint(method, ratio, comp_speed))
        decompression_points.append(ParetoPoint(method, ratio, decomp_speed))
    compression_frontier = {point.name for point in pareto_frontier(compression_points)}
    decompression_frontier = {point.name for point in pareto_frontier(decompression_points)}
    for point, decomp_point in zip(compression_points, decompression_points):
        rows.append(
            {
                "method": point.name,
                "ratio": round(point.ratio, 3),
                "comp_mb_s": round(point.speed, 2),
                "decomp_mb_s": round(decomp_point.speed, 2),
                "pareto_compression": point.name in compression_frontier,
                "pareto_decompression": point.name in decompression_frontier,
            }
        )
    rows.sort(key=lambda row: row["ratio"])
    return rows


# ------------------------------------------------------------------- Figure 7


def run_fig7_criteria(
    settings: BenchmarkSettings | None = None, datasets: Sequence[str] = FIGURE7_DATASETS
) -> list[dict]:
    """Figure 7: compression ratio under the ED / entropy / EL clustering criteria."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for name in datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        for criterion in ("ed", "entropy", "el"):
            compressor = PBCCompressor(
                config=settings.extraction_config(criterion=criterion, pre_group=False, sample_size=48)
            )
            compressor.train(records[: min(settings.train_count, 48)])
            stats = compressor.measure(records)
            rows.append(
                {
                    "dataset": name,
                    "criterion": criterion,
                    "ratio": round(stats.ratio, 3),
                    "outlier_rate": round(stats.outlier_rate, 3),
                }
            )
    return rows


# ------------------------------------------------------------------- Figure 8


def run_fig8_pruning(
    settings: BenchmarkSettings | None = None, datasets: Sequence[str] = FIGURE7_DATASETS
) -> list[dict]:
    """Figure 8: pattern-extraction time with and without 1-gram pruning."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for name in datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        sample = records[: min(settings.train_count, 48)]
        for label, use_pruning in (("naive", False), ("1-gram pruning", True)):
            extractor = PatternExtractor(
                settings.extraction_config(use_pruning=use_pruning, pre_group=False, sample_size=48)
            )
            started = time.perf_counter()
            report = extractor.extract(sample)
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "dataset": name,
                    "method": label,
                    "extraction_seconds": round(elapsed, 4),
                    "dp_calls": report.clustering_stats.dp_calls,
                    "pruned_by_bound": report.clustering_stats.dp_pruned_by_bound,
                    "pruned_by_early_exit": report.clustering_stats.dp_pruned_by_early_exit,
                }
            )
    return rows


# ------------------------------------------------------------------- Figure 9


def run_fig9_training_size(
    settings: BenchmarkSettings | None = None,
    datasets: Sequence[str] = ("kv1", "kv2"),
    sample_sizes: Sequence[int] = (8, 16, 32, 64, 128),
) -> list[dict]:
    """Figure 9(a): compression ratio versus training-sample size."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for name in datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        for sample_size in sample_sizes:
            compressor = PBCCompressor(config=settings.extraction_config(sample_size=sample_size))
            compressor.train(records[: settings.train_count])
            stats = compressor.measure(records)
            training_bytes = sum(
                len(record.encode("utf-8")) for record in records[: min(sample_size, settings.train_count)]
            )
            rows.append(
                {
                    "dataset": name,
                    "sample_records": sample_size,
                    "training_bytes": training_bytes,
                    "ratio": round(stats.ratio, 3),
                }
            )
    return rows


def run_fig9_pattern_size(
    settings: BenchmarkSettings | None = None,
    datasets: Sequence[str] = ("kv1", "kv2"),
    pattern_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> list[dict]:
    """Figure 9(b): compression ratio versus pattern-dictionary size."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for name in datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        for max_patterns in pattern_counts:
            compressor = PBCCompressor(config=settings.extraction_config(max_patterns=max_patterns))
            compressor.train(records[: settings.train_count])
            stats = compressor.measure(records)
            rows.append(
                {
                    "dataset": name,
                    "max_patterns": max_patterns,
                    "dictionary_bytes": compressor.dictionary.serialized_size(),
                    "ratio": round(stats.ratio, 3),
                }
            )
    return rows


# ------------------------------------------------------------------- Table 5


def run_table5_log_compression(settings: BenchmarkSettings | None = None) -> list[dict]:
    """Table 5: log compression — LogReducer versus PBC_L (LZMA level 9)."""
    settings = settings or DEFAULT_SETTINGS
    totals = {
        "LogReducer": {"original": 0, "compressed": 0, "comp_seconds": 0.0, "decomp_seconds": 0.0},
        "PBC_L": {"original": 0, "compressed": 0, "comp_seconds": 0.0, "decomp_seconds": 0.0},
    }
    for name in LOG_DATASETS:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        log_stats = LogReducerCodec(preset=9).measure(records)
        totals["LogReducer"]["original"] += log_stats.original_bytes
        totals["LogReducer"]["compressed"] += log_stats.compressed_bytes
        totals["LogReducer"]["comp_seconds"] += log_stats.compress_seconds
        totals["LogReducer"]["decomp_seconds"] += log_stats.decompress_seconds

        pbc_l = _PBCFamily(records, settings).block(LZMACodec(preset=9), "PBC_L")
        stats = pbc_l.measure(records)
        totals["PBC_L"]["original"] += stats.original_bytes
        totals["PBC_L"]["compressed"] += stats.compressed_bytes
        totals["PBC_L"]["comp_seconds"] += stats.compress_seconds
        totals["PBC_L"]["decomp_seconds"] += stats.decompress_seconds

    rows = []
    for method, entry in totals.items():
        paper = TABLE5_LOGS.get(method, {})
        rows.append(
            {
                "method": method,
                "ratio": round(entry["compressed"] / entry["original"], 3),
                "paper_ratio": paper.get("ratio"),
                "comp_mb_s": round(entry["original"] / 1e6 / entry["comp_seconds"], 2),
                "decomp_mb_s": round(entry["original"] / 1e6 / entry["decomp_seconds"], 2),
            }
        )
    return rows


# --------------------------------------------------------------- Tables 6 & 7


def run_table6_json_compression(settings: BenchmarkSettings | None = None) -> list[dict]:
    """Table 6: JSON record and file compression (Ion-B, BP-D, PBC variants)."""
    settings = settings or DEFAULT_SETTINGS
    record_methods = ("Ion-B", "BP-D", "PBC", "PBC_F")
    file_methods = ("Ion-B+LZMA", "BP-D+LZMA", "PBC_L")
    totals: dict[str, dict[str, float]] = {
        method: {"original": 0.0, "compressed": 0.0, "comp_seconds": 0.0, "decomp_seconds": 0.0}
        for method in record_methods + file_methods
    }

    def _add(method: str, measurement: CodecMeasurement) -> None:
        totals[method]["original"] += measurement.original_bytes
        totals[method]["compressed"] += measurement.compressed_bytes
        totals[method]["comp_seconds"] += measurement.compress_seconds
        totals[method]["decomp_seconds"] += measurement.decompress_seconds

    for name in JSON_DATASETS:
        count = min(settings.record_count, 200) if name == "unece" else settings.record_count
        records = load_dataset(name, count=count, seed=settings.seed)
        training = records[: settings.train_count]

        ion = IonLikeCodec()
        binpack = BinPackCodec()
        binpack.train(training[: min(len(training), 64)])
        _add("Ion-B", _measure_record_codec(ion, records))
        _add("BP-D", _measure_record_codec(binpack, records))

        family = _PBCFamily(records, settings)
        stats = family.pbc.measure(records)
        _add("PBC", CodecMeasurement("PBC", stats.original_bytes, stats.compressed_bytes, stats.compress_seconds, stats.decompress_seconds))
        stats = family.pbc_f().measure(records)
        _add("PBC_F", CodecMeasurement("PBC_F", stats.original_bytes, stats.compressed_bytes, stats.compress_seconds, stats.decompress_seconds))

        lzma_codec = LZMACodec(preset=6)
        for method, front in (("Ion-B+LZMA", ion), ("BP-D+LZMA", binpack)):
            payloads = [front.compress(record.encode("utf-8")) for record in records]
            original = sum(len(record.encode("utf-8")) for record in records)
            started = time.perf_counter()
            blob = lzma_codec.compress(b"".join(payloads))
            comp_seconds = time.perf_counter() - started
            started = time.perf_counter()
            lzma_codec.decompress(blob)
            decomp_seconds = time.perf_counter() - started
            _add(method, CodecMeasurement(method, original, len(blob), comp_seconds, decomp_seconds))

        pbc_l = PBCBlockCompressor(_trained_pbc(records, settings, "pbc"), LZMACodec(preset=6), name="PBC_L")
        stats = pbc_l.measure(records)
        _add("PBC_L", CodecMeasurement("PBC_L", stats.original_bytes, stats.compressed_bytes, stats.compress_seconds, stats.decompress_seconds))

    rows = []
    for method, entry in totals.items():
        rows.append(
            {
                "method": method,
                "mode": "record" if method in record_methods else "file",
                "ratio": round(entry["compressed"] / entry["original"], 3),
                "paper_ratio": TABLE6_JSON.get(method),
                "comp_mb_s": round(entry["original"] / 1e6 / entry["comp_seconds"], 2),
                "decomp_mb_s": round(entry["original"] / 1e6 / entry["decomp_seconds"], 2),
            }
        )
    return rows


def run_table7_json_per_dataset(settings: BenchmarkSettings | None = None) -> list[dict]:
    """Table 7: per-dataset file-compression ratios of BP-D+LZMA versus PBC_L."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    lzma_codec = LZMACodec(preset=6)
    for name in JSON_DATASETS:
        count = min(settings.record_count, 200) if name == "unece" else settings.record_count
        records = load_dataset(name, count=count, seed=settings.seed)
        original = sum(len(record.encode("utf-8")) for record in records)

        binpack = BinPackCodec()
        binpack.train(records[: min(settings.train_count, 64)])
        encoded = b"".join(binpack.compress(record.encode("utf-8")) for record in records)
        bp_ratio = len(lzma_codec.compress(encoded)) / original

        pbc_l = PBCBlockCompressor(_trained_pbc(records, settings, "pbc"), LZMACodec(preset=6), name="PBC_L")
        stats = pbc_l.measure(records)

        paper = TABLE7_JSON.get(name, {})
        rows.append(
            {
                "dataset": name,
                "BP-D": round(bp_ratio, 3),
                "paper_BP-D": paper.get("BP-D"),
                "PBC_L": round(stats.ratio, 3),
                "paper_PBC_L": paper.get("PBC_L"),
            }
        )
    return rows


# ------------------------------------------------------------------- Table 8


def run_table8_tierbase(
    settings: BenchmarkSettings | None = None,
    workloads: Sequence[tuple[str, str]] = (("A", "kv1"), ("B", "kv2")),
) -> list[dict]:
    """Table 8: TierBase case study — memory usage and SET/GET throughput."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for workload_name, dataset in workloads:
        records = load_dataset(dataset, count=settings.record_count, seed=settings.seed)
        compressors = (
            NoopValueCompressor(),
            ZstdDictValueCompressor(level=3),
            PBCValueCompressor(config=settings.extraction_config()),
        )
        baseline_memory: int | None = None
        for compressor in compressors:
            store = TierBase(compressor=compressor)
            result = run_workload(
                store,
                records,
                workload_name=workload_name,
                get_operations=len(records),
                train_sample=records[: settings.train_count],
                seed=settings.seed,
            )
            if baseline_memory is None:
                baseline_memory = result.memory_bytes
            paper = TABLE8_TIERBASE.get(workload_name, {})
            rows.append(
                {
                    "workload": workload_name,
                    "method": compressor.name,
                    "memory_percent": round(100.0 * result.memory_bytes / baseline_memory, 1),
                    "paper_memory_percent": paper.get(compressor.name),
                    "set_qps": round(result.set_qps, 1),
                    "get_qps": round(result.get_qps, 1),
                }
            )
    return rows
