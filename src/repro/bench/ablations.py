"""Extension experiments beyond the paper's Section 7: ablations and LSM integration.

docs/ARCHITECTURE.md calls out several design choices of this reproduction (pre-grouping,
pattern refinement, the pattern-prefix cap, the choice of residual stage).  The
runners here measure their effect so the trade-offs are visible rather than
implicit:

* :func:`run_ablation_extraction` — extraction-configuration ablation: ratio
  and training time with the engineering knobs toggled.
* :func:`run_ablation_residual` — residual-stage ablation: plain PBC versus the
  FSST (PBC_F) and entropy (PBC_H) residual stages (Section 5.2's two options).
* :func:`run_lsm_integration` — the LSM storage-engine integration: space and
  point-lookup throughput under block compression versus per-record PBC, the
  persistent-engine analogue of Figure 5 / Table 8.
* :func:`run_columnar_comparison` — the PIDS argument from Section 2.2: a
  single-pattern columnar decomposition keeps up on single-structure columns
  but falls behind PBC on multi-structure machine-generated data.
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Sequence

from repro.bench.experiments import BenchmarkSettings, DEFAULT_SETTINGS
from repro.columnar import PIDSLikeCodec, encode_column
from repro.compressors.zstdlike import ZstdLikeCodec
from repro.core.compressor import PBCCompressor, PBCFCompressor, PBCHCompressor
from repro.datasets import load_dataset
from repro.lsm import BlockCompressionPolicy, LSMEngine, PlainPolicy, RecordCompressionPolicy
from repro.tierbase import PBCValueCompressor

#: Datasets used by the ablation sweeps (a cheap-but-diverse subset of Table 2).
ABLATION_DATASETS = ("kv1", "kv2", "apache", "urls")

#: Subset used by the extraction ablation, whose un-pruned configurations are
#: quadratic in sample size; ``kv2``'s long records make it too slow there.
EXTRACTION_ABLATION_DATASETS = ("kv1", "apache", "urls")


# ------------------------------------------------- extraction-config ablation


def run_ablation_extraction(
    settings: BenchmarkSettings | None = None,
    datasets: Sequence[str] = EXTRACTION_ABLATION_DATASETS,
) -> list[dict]:
    """Ratio and training time with the extraction engineering knobs toggled."""
    settings = settings or DEFAULT_SETTINGS
    configurations = (
        ("default", {}),
        ("no pre-grouping", {"pre_group": False, "sample_size": 32}),
        ("no refinement", {"refine_patterns": False}),
        ("no pruning", {"use_pruning": False, "pre_group": False, "sample_size": 32}),
        ("prefix 128", {"max_pattern_prefix": 128}),
    )
    rows = []
    for name in datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        for label, overrides in configurations:
            compressor = PBCCompressor(config=settings.extraction_config(**overrides))
            started = time.perf_counter()
            compressor.train(records[: settings.train_count])
            train_seconds = time.perf_counter() - started
            stats = compressor.measure(records)
            rows.append(
                {
                    "dataset": name,
                    "configuration": label,
                    "ratio": round(stats.ratio, 3),
                    "outlier_rate": round(stats.outlier_rate, 3),
                    "patterns": len(compressor.dictionary),
                    "train_seconds": round(train_seconds, 3),
                }
            )
    return rows


# ------------------------------------------------------ residual-stage ablation


def run_ablation_residual(
    settings: BenchmarkSettings | None = None, datasets: Sequence[str] = ABLATION_DATASETS
) -> list[dict]:
    """Per-record ratio and speed of PBC with the different residual stages."""
    settings = settings or DEFAULT_SETTINGS
    rows = []
    for name in datasets:
        records = load_dataset(name, count=settings.record_count, seed=settings.seed)
        sample = records[: settings.train_count]
        base = PBCCompressor(config=settings.extraction_config())
        base.train(sample)

        variants: list[tuple[str, PBCCompressor]] = [("PBC", base)]
        fsst = PBCFCompressor(dictionary=base.dictionary, config=settings.extraction_config())
        fsst.train_residual(sample)
        variants.append(("PBC_F", fsst))
        for entropy in ("rans", "huffman", "arithmetic"):
            entropy_variant = PBCHCompressor(
                dictionary=base.dictionary, config=settings.extraction_config(), entropy=entropy
            )
            entropy_variant.train_residual(sample)
            variants.append((f"PBC_H[{entropy}]", entropy_variant))

        for label, compressor in variants:
            stats = compressor.measure(records)
            rows.append(
                {
                    "dataset": name,
                    "method": label,
                    "ratio": round(stats.ratio, 3),
                    "comp_mb_s": round(stats.compress_mb_per_second, 2),
                    "decomp_mb_s": round(stats.decompress_mb_per_second, 2),
                }
            )
    return rows


# --------------------------------------------------------- LSM integration


def run_lsm_integration(
    settings: BenchmarkSettings | None = None,
    dataset: str = "hdfs",
    lookup_fraction: float = 0.25,
) -> list[dict]:
    """Space ratio and point-lookup throughput of the LSM engine per storage policy."""
    settings = settings or DEFAULT_SETTINGS
    records = load_dataset(dataset, count=settings.record_count, seed=settings.seed)
    items = [(f"key:{index:07d}", record) for index, record in enumerate(records)]
    rng = random.Random(settings.seed)
    lookup_count = max(1, int(len(items) * lookup_fraction))
    lookup_keys = [key for key, _ in rng.sample(items, lookup_count)]

    value_compressor = PBCValueCompressor(config=settings.extraction_config())
    value_compressor.train([value for _, value in items[: settings.train_count]])

    policies = (
        ("Uncompressed", PlainPolicy()),
        ("Zstd blocks", BlockCompressionPolicy(ZstdLikeCodec())),
        ("PBC_F records", RecordCompressionPolicy(value_compressor)),
    )

    rows = []
    with TemporaryDirectory() as tmp:
        for label, policy in policies:
            engine = LSMEngine(
                Path(tmp) / label.replace(" ", "-"),
                policy=policy,
                memtable_bytes=32 * 1024,
                block_bytes=4096,
            )
            started = time.perf_counter()
            for key, value in items:
                engine.put(key, value)
            engine.flush()
            load_seconds = time.perf_counter() - started
            stats = engine.stats()
            timing = engine.measure_lookups(lookup_keys)
            rows.append(
                {
                    "policy": label,
                    "dataset": dataset,
                    "space_ratio": round(stats.space_ratio, 3),
                    "disk_bytes": stats.sstable_file_bytes,
                    "lookups_per_s": round(timing.lookups_per_second, 1),
                    "load_seconds": round(load_seconds, 3),
                }
            )
            engine.close()
    return rows


# ------------------------------------------------------- columnar comparison


def _mixed_structure_records(settings: BenchmarkSettings) -> list[str]:
    """A shuffled mix of two structurally different datasets (kv1 + apache)."""
    half = max(20, settings.record_count // 2)
    records = load_dataset("kv1", count=half, seed=settings.seed) + load_dataset(
        "apache", count=half, seed=settings.seed
    )
    random.Random(settings.seed).shuffle(records)
    return records


def run_columnar_comparison(settings: BenchmarkSettings | None = None) -> list[dict]:
    """The Section 2.2 PIDS argument: single-pattern decomposition versus PBC.

    Two workloads are compressed as one string column each: ``urls`` (a
    single-structure column, PIDS's home turf) and a shuffled mix of ``kv1``
    and ``apache`` records (multi-structure machine-generated data).  For each
    workload the runner reports the ratio of the best lightweight column
    encoding, the PIDS-like decomposition and per-record PBC.
    """
    settings = settings or DEFAULT_SETTINGS
    workloads = (
        ("urls (single structure)", load_dataset("urls", count=settings.record_count, seed=settings.seed)),
        ("kv1+apache (multi structure)", _mixed_structure_records(settings)),
    )
    rows = []
    for label, records in workloads:
        raw_bytes = sum(len(record.encode("utf-8")) for record in records)
        sample = records[: settings.train_count]

        lightweight_ratio = len(encode_column(records)) / raw_bytes

        pids = PIDSLikeCodec(config=settings.extraction_config())
        pids.train(sample)
        pids_ratio = len(pids.compress_column(records)) / raw_bytes

        pbc = PBCCompressor(config=settings.extraction_config())
        pbc.train(sample)
        pbc_ratio = pbc.measure(records).ratio

        rows.append(
            {
                "workload": label,
                "lightweight": round(lightweight_ratio, 3),
                "pids_like": round(pids_ratio, 3),
                "pbc": round(pbc_ratio, 3),
                "pids_exception_rate": round(pids.exception_rate(records), 3),
                "pbc_vs_pids_gain": round(pids_ratio / pbc_ratio, 2) if pbc_ratio else None,
            }
        )
    return rows
