"""Benchmark harness: experiment runners, Pareto analysis and table rendering.

Every table and figure of the paper's evaluation (Section 7) has a runner in
:mod:`repro.bench.experiments`, registered by id in :data:`repro.bench.EXPERIMENTS`;
the pytest benchmarks under ``benchmarks/`` are thin drivers around these
runners.

:mod:`repro.bench.harness` is the *performance-evidence* side: declared
experiment grids fill the committed ``BENCH_*.json`` run tables (with the
:mod:`repro.bench.hotpaths` before/after optimization pairs embedded), and
``compare_documents`` gates regressions in CI.
"""

from repro.bench.ablations import (
    run_ablation_extraction,
    run_ablation_residual,
    run_columnar_comparison,
    run_lsm_integration,
)
from repro.bench.experiments import (
    BenchmarkSettings,
    DEFAULT_SETTINGS,
    run_fig5_random_access,
    run_fig6_pareto,
    run_fig7_criteria,
    run_fig8_pruning,
    run_fig9_pattern_size,
    run_fig9_training_size,
    run_table2_dataset_statistics,
    run_table3_line_by_line,
    run_table4_file_compression,
    run_table5_log_compression,
    run_table6_json_compression,
    run_table7_json_per_dataset,
    run_table8_tierbase,
)
from repro.bench.harness import (
    AREAS,
    BenchHarnessError,
    ExperimentGrid,
    compare_documents,
    env_fingerprint,
    load_document,
    run_area,
    validate_document,
)
from repro.bench.pareto import ParetoPoint, is_pareto_optimal, pareto_frontier
from repro.bench.registry import EXPERIMENTS, Experiment, experiment_ids, get_experiment, run_all, run_experiment
from repro.bench.reporting import render_comparison, render_table

__all__ = [
    "AREAS",
    "BenchHarnessError",
    "BenchmarkSettings",
    "DEFAULT_SETTINGS",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentGrid",
    "ParetoPoint",
    "compare_documents",
    "env_fingerprint",
    "load_document",
    "run_area",
    "validate_document",
    "experiment_ids",
    "get_experiment",
    "is_pareto_optimal",
    "pareto_frontier",
    "render_comparison",
    "render_table",
    "run_ablation_extraction",
    "run_ablation_residual",
    "run_all",
    "run_columnar_comparison",
    "run_experiment",
    "run_lsm_integration",
    "run_fig5_random_access",
    "run_fig6_pareto",
    "run_fig7_criteria",
    "run_fig8_pruning",
    "run_fig9_pattern_size",
    "run_fig9_training_size",
    "run_table2_dataset_statistics",
    "run_table3_line_by_line",
    "run_table4_file_compression",
    "run_table5_log_compression",
    "run_table6_json_compression",
    "run_table7_json_per_dataset",
    "run_table8_tierbase",
]
