"""Reference ("before") implementations of the optimized hot paths.

The speed campaign's rule is *no row, no merge*: every optimization in the
committed ``BENCH_*.json`` trajectory ships with a measured before/after
pair.  Stale numbers rot, so the pairs are not copied out of an old CI log —
this module preserves the pre-optimization implementations verbatim and the
harness re-measures both sides live on the machine that writes the JSON:

* :class:`LegacyFrameDecoder` / :class:`LegacyCursor` — the ``RKV1`` frame
  parser as it stood before the zero-copy rework: ``bytes(buffer[...])``
  copies for the magic check and for every frame body, a ``del buffer[:n]``
  compaction per frame, and one ``read_blob`` method call per batched item.
* :class:`LegacyMatcher` — the multi-pattern matcher's original linear scan
  over every compiled pattern (no first-character candidate index, no memo).
* :func:`legacy_service_set` / :func:`legacy_service_get` — the service's
  original single-op dispatch: one executor submit + ``Future.result()``
  handoff per operation, instead of running inline under the shard lock.
* :func:`legacy_wal_encode_record` — the WAL record encoder before the
  operation-log codec unified it: the body ``bytearray`` was copied once
  into ``bytes`` for the checksum and again for the returned envelope,
  two allocations per record on the write path.

Each ``pair_*`` function times before vs after on the same workload and
returns one optimization row for the harness
(:func:`repro.bench.harness.run_area`).
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.exceptions import ProtocolError
from repro.net.protocol import (
    DEFAULT_MAX_BODY,
    MAGIC,
    _FRAME_BY_OPCODE,
    _MAX_UVARINT_BYTES,
    Message,
)

__all__ = [
    "LegacyCursor",
    "LegacyFrameDecoder",
    "LegacyMatcher",
    "legacy_service_get",
    "legacy_service_set",
    "legacy_wal_encode_record",
    "pair_background_compaction",
    "pair_frame_decode",
    "pair_mvalue_decode",
    "pair_matcher_index",
    "pair_service_dispatch",
    "pair_wal_encode",
]


# ------------------------------------------------------- legacy frame decoding


class LegacyCursor:
    """The pre-optimization body cursor: a ``bytes`` body, one call per read.

    Batched reads are loops over :meth:`read_blob`, which is exactly how the
    pre-batching ``decode_body`` implementations consumed multi-item bodies.
    """

    def __init__(self, body: bytes) -> None:
        self._body = body
        self._offset = 0

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self._offset >= len(self._body):
                raise ProtocolError("frame body ends inside a uvarint")
            byte = self._body[self._offset]
            self._offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise ProtocolError("frame body uvarint does not fit in 64 bits")

    def read_bytes(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._body):
            raise ProtocolError(
                f"frame body declares {count} bytes where only "
                f"{len(self._body) - self._offset} remain"
            )
        chunk = self._body[self._offset : end]
        self._offset = end
        return chunk

    def read_u8(self) -> int:
        return self.read_bytes(1)[0]

    def read_blob(self) -> bytes:
        return self.read_bytes(self.read_uvarint())

    def read_blobs(self, count: int) -> tuple[bytes, ...]:
        return tuple(self.read_blob() for _ in range(count))

    def read_flagged_blobs(self, count: int, wire_name: str) -> tuple[bytes | None, ...]:
        values: list[bytes | None] = []
        for _ in range(count):
            flag = self.read_u8()
            if flag == 0:
                values.append(None)
            elif flag == 1:
                values.append(self.read_blob())
            else:
                raise ProtocolError(
                    f"{wire_name} frame has invalid presence flag {flag}"
                )
        return tuple(values)

    def read_pairs(self, count: int) -> tuple[tuple[bytes, bytes], ...]:
        return tuple((self.read_blob(), self.read_blob()) for _ in range(count))

    def finish(self) -> None:
        if self._offset != len(self._body):
            raise ProtocolError(
                f"frame body has {len(self._body) - self._offset} trailing bytes"
            )


class LegacyFrameDecoder:
    """The pre-zero-copy incremental parser, preserved for before/after rows.

    Same contract as :class:`repro.net.protocol.FrameDecoder` (it passes the
    same adversarial fuzz suite), but with the original allocation pattern:
    a ``bytes`` copy of the magic prefix and of every frame body, plus one
    in-place buffer compaction per decoded frame.
    """

    def __init__(self, max_body: int = DEFAULT_MAX_BODY) -> None:
        if max_body < 1:
            raise ProtocolError("max_body must be positive")
        self.max_body = max_body
        self._buffer = bytearray()
        self._failure: ProtocolError | None = None

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def failure(self) -> ProtocolError | None:
        return self._failure

    def feed(self, data) -> list[Message]:
        if self._failure is not None:
            raise self._failure
        self._buffer.extend(data)
        messages: list[Message] = []
        while True:
            try:
                parsed = self._try_parse()
            except ProtocolError as error:
                self._failure = error
                if messages:
                    return messages
                raise
            if parsed is None:
                return messages
            message, consumed = parsed
            del self._buffer[:consumed]
            messages.append(message)

    def eof(self) -> None:
        if self._failure is not None:
            raise self._failure
        if self._buffer:
            raise ProtocolError(
                f"stream ended mid-frame with {len(self._buffer)} byte(s) buffered"
            )

    def _try_parse(self) -> tuple[Message, int] | None:
        buffer = self._buffer
        prefix = bytes(buffer[: len(MAGIC)])
        if prefix != MAGIC[: len(prefix)]:
            raise ProtocolError(f"bad frame magic {prefix!r} (expected {MAGIC!r})")
        if len(buffer) < len(MAGIC) + 1:
            return None
        opcode = buffer[len(MAGIC)]
        frame_type = _FRAME_BY_OPCODE.get(opcode)
        if frame_type is None:
            raise ProtocolError(f"unknown opcode 0x{opcode:02X}")
        length = self._read_header_uvarint(len(MAGIC) + 1)
        if length is None:
            return None
        body_length, body_start = length
        if body_length > self.max_body:
            raise ProtocolError(
                f"declared body length {body_length} exceeds the "
                f"{self.max_body}-byte limit"
            )
        end = body_start + body_length
        if len(buffer) < end:
            return None
        cursor = LegacyCursor(bytes(buffer[body_start:end]))
        message = frame_type.decode_body(cursor)
        cursor.finish()
        return message, end

    def _read_header_uvarint(self, offset: int) -> tuple[int, int] | None:
        result = 0
        shift = 0
        position = offset
        while True:
            if position - offset >= _MAX_UVARINT_BYTES:
                raise ProtocolError("frame length uvarint does not fit in 64 bits")
            if position >= len(self._buffer):
                return None
            byte = self._buffer[position]
            position += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, position
            shift += 7


# ------------------------------------------------------------- legacy matcher


class LegacyMatcher:
    """The original matcher loop: every compiled pattern prefiltered per record.

    Shares :class:`repro.core.matcher._CompiledPattern` with the live matcher
    so the regex/prefilter cost per candidate is identical — the pair isolates
    exactly what the optimization changed (candidate selection + memoization).
    """

    def __init__(self, dictionary) -> None:
        from repro.core.matcher import _CompiledPattern

        self._compiled = sorted(
            (_CompiledPattern(pattern) for pattern in dictionary),
            key=lambda compiled: compiled.literal_size,
            reverse=True,
        )

    def __len__(self) -> int:
        return len(self._compiled)

    def match(self, record: str):
        for compiled in self._compiled:
            if not compiled.prefilter(record):
                continue
            result = compiled.match(record)
            if result is not None:
                return result
        return None


# ---------------------------------------------------- legacy service dispatch


def legacy_service_set(service, key: str, value: str) -> None:
    """One SET through the pre-inline dispatch: executor submit + result().

    Replays the original single-op path — every operation paid a full
    cross-thread handoff to the shard's single worker even when the calling
    thread could have run it directly.
    """
    shard = service._shards[service.router.shard_for(key)]
    shard.defer(service._shard_set, shard, [(key, value)]).result()


def legacy_service_get(service, key: str):
    """One cache-missing GET through the pre-inline executor dispatch."""
    shard = service._shards[service.router.shard_for(key)]
    return shard.defer(service._shard_get, shard, [key]).result()[0]


# ------------------------------------------------------------- pair machinery


def _best_rate(run: Callable[[], int], repeats: int = 3) -> float:
    """Best-of-``repeats`` rate (units/second) of ``run``, which returns units."""
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        units = run()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, units / elapsed)
    return best


def _pair_row(name: str, metric: str, before: float, after: float) -> dict:
    return {
        "name": name,
        "metric": metric,
        "before": round(before, 1),
        "after": round(after, 1),
        "improvement": round(after / before - 1.0, 4) if before else 0.0,
    }


def _decode_rate(decoder_factory: Callable[[], object], chunks: Sequence[bytes], repeats: int) -> float:
    def run() -> int:
        decoder = decoder_factory()
        frames = 0
        for chunk in chunks:
            frames += len(decoder.feed(chunk))
        return frames

    return _best_rate(run, repeats=repeats)


def pair_frame_decode(frames: int = 2000, value_bytes: int = 1024, repeats: int = 3) -> dict:
    """Zero-copy frame decode: pipelined 1-KiB VALUE responses, 64-KiB chunks."""
    from repro.net.protocol import FrameDecoder, ValueResponse, encode_frame

    stream = encode_frame(ValueResponse(value=b"x" * value_bytes)) * frames
    chunks = [stream[start : start + 65536] for start in range(0, len(stream), 65536)]
    before = _decode_rate(LegacyFrameDecoder, chunks, repeats)
    after = _decode_rate(FrameDecoder, chunks, repeats)
    return _pair_row("frame_decode_zero_copy", "frames_per_second", before, after)


def pair_mvalue_decode(frames: int = 400, values: int = 64, value_bytes: int = 256, repeats: int = 3) -> dict:
    """Batched MVALUE body decode: 64-value MGET responses."""
    from repro.net.protocol import FrameDecoder, MultiValueResponse, encode_frame

    frame = encode_frame(
        MultiValueResponse(values=tuple(b"y" * value_bytes for _ in range(values)))
    )
    stream = frame * frames
    chunks = [stream[start : start + 65536] for start in range(0, len(stream), 65536)]
    before = _decode_rate(LegacyFrameDecoder, chunks, repeats)
    after = _decode_rate(FrameDecoder, chunks, repeats)
    return _pair_row("mvalue_batch_decode", "frames_per_second", before, after)


def pair_matcher_index(records_per_run: int = 6000, repeats: int = 3) -> dict:
    """Candidate index + memo vs the linear scan, on the paper's log records.

    The workload re-matches a machine-generated record population (heavy
    natural repetition, as in any log/telemetry stream), which is the shape
    both the bucket index and the match memo are built for.
    """
    from repro import PBCCompressor
    from repro.core.matcher import MultiPatternMatcher
    from repro.datasets import load_dataset

    sample = load_dataset("hdfs", count=512, seed=7)
    dictionary = PBCCompressor().train(sample).dictionary
    population = load_dataset("hdfs", count=256, seed=11)
    workload = [population[index % len(population)] for index in range(records_per_run)]

    def run_with(matcher) -> int:
        matched = 0
        for record in workload:
            if matcher.match(record) is not None:
                matched += 1
        return len(workload)

    legacy = LegacyMatcher(dictionary)
    current = MultiPatternMatcher(dictionary)
    before = _best_rate(lambda: run_with(legacy), repeats=repeats)
    after = _best_rate(lambda: run_with(current), repeats=repeats)
    return _pair_row("matcher_candidate_index", "records_per_second", before, after)


def pair_service_dispatch(operations: int = 2000, repeats: int = 3) -> dict:
    """Inline single-op dispatch vs the executor submit+result handoff.

    Runs an uncompressed two-shard in-memory service so the measured work is
    the dispatch itself, not codec time; the workload alternates SET and
    cache-missing GET like an unpipelined wire client does.
    """
    from repro.service.service import KVService, ServiceConfig

    config = ServiceConfig(shard_count=2, compressor="none", cache_entries=1)
    with KVService(config) as service:
        keys = [f"bench:{index:05d}" for index in range(256)]
        for key in keys:
            service.set(key, key)

        def run_legacy() -> int:
            for index in range(operations):
                key = keys[index % len(keys)]
                if index & 1:
                    legacy_service_get(service, key)
                else:
                    legacy_service_set(service, key, key)
            return operations

        def run_inline() -> int:
            for index in range(operations):
                key = keys[index % len(keys)]
                if index & 1:
                    service.get(key)
                else:
                    service.set(key, key)
            return operations

        before = _best_rate(run_legacy, repeats=repeats)
        after = _best_rate(run_inline, repeats=repeats)
    return _pair_row("service_inline_dispatch", "ops_per_second", before, after)


def pair_background_compaction(seconds: float | None = None) -> dict:
    """Synchronous write-path compaction vs the background scheduler.

    Unlike the other pairs this one is not about the mean — it is about the
    *shape* of the throughput trace.  Both sides run the same open-loop
    sustained write workload (:func:`repro.bench.sustained.run_sustained_write`);
    the "before" engine runs the pre-scheduler write path (a synchronous
    whole-store merge every time the trigger is reached), the "after"
    engine compacts tiered runs on the background thread under L0
    admission control.  The row therefore carries, beyond the usual
    before/after puts/s, each side's per-window throughput histogram,
    flatness score (worst window deviation from the mean — the tentpole's
    ±20% bound), scheduled-release p99 and cumulative stall seconds.

    ``seconds`` is the per-side duration; it defaults to the
    ``REPRO_BENCH_SUSTAINED_SECONDS`` environment variable (CI smoke runs
    set a small value) or 75 s, so the committed document's evidence is a
    multi-minute run.
    """
    import os
    import tempfile

    from repro.bench.sustained import run_sustained_write

    if seconds is None:
        seconds = float(os.environ.get("REPRO_BENCH_SUSTAINED_SECONDS", "75"))
    results = {}
    for mode in ("legacy", "background"):
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as directory:
            results[mode] = run_sustained_write(directory, mode=mode, seconds=seconds)
    before, after = results["legacy"], results["background"]
    row = _pair_row(
        "background_compaction", "puts_per_second",
        before.ops_per_second, after.ops_per_second,
    )
    row.update(
        {
            "offered_rate": before.offered_rate,
            "window_seconds": before.window_seconds,
            "before_windows": [round(rate, 1) for rate in before.windows],
            "after_windows": [round(rate, 1) for rate in after.windows],
            "before_flatness": round(before.flatness, 4),
            "after_flatness": round(after.flatness, 4),
            "before_stall_seconds": round(before.stall_seconds, 3),
            "after_stall_seconds": round(after.stall_seconds, 3),
            "before_p99_ms": round(before.p99_ms, 3),
            "after_p99_ms": round(after.p99_ms, 3),
        }
    )
    return row


# --------------------------------------------------------- WAL record encoding


def legacy_wal_encode_record(op: int, key: str, value: str) -> bytes:
    """The pre-oplog WAL encoder, verbatim: two body copies per record.

    ``zlib.crc32(bytes(body))`` copied the body once for the checksum and
    ``... + bytes(body)`` copied it again into the returned envelope (plus
    the final concatenation's own allocation).  The operation-log codec
    (:func:`repro.oplog.append_record`) checksums the ``bytearray`` directly
    and assembles envelope + body into one output buffer.
    """
    import zlib

    from repro.entropy.varint import encode_uvarint

    key_bytes = key.encode("utf-8")
    value_bytes = value.encode("utf-8")
    body = bytearray()
    body.append(op)
    body += encode_uvarint(len(key_bytes))
    body += key_bytes
    body += encode_uvarint(len(value_bytes))
    body += value_bytes
    checksum = zlib.crc32(bytes(body))
    return encode_uvarint(len(body)) + checksum.to_bytes(4, "big") + bytes(body)


def pair_wal_encode(records: int = 4000, value_bytes: int = 256, repeats: int = 5) -> dict:
    """Double-copy WAL record encoding vs the single-buffer oplog codec.

    Both sides encode the same batch of put records into one contiguous
    buffer, exactly what ``append_many`` writes with one syscall.  The
    before side concatenates :func:`legacy_wal_encode_record` outputs; the
    after side streams :class:`~repro.oplog.OpRecord` instances through
    :func:`repro.oplog.append_record` into a shared ``bytearray``.
    """
    from repro.oplog import OP_PUT, OpRecord, append_record

    value = "v" * value_bytes
    keys = [f"bench:key:{index:08d}" for index in range(records)]
    batch = [OpRecord(lsn=index + 1, op=OP_PUT, key=key, value=value.encode("utf-8"))
             for index, key in enumerate(keys)]

    def run_before() -> int:
        buffer = bytearray()
        for key in keys:
            buffer += legacy_wal_encode_record(OP_PUT, key, value)
        return len(keys)

    def run_after() -> int:
        buffer = bytearray()
        for record in batch:
            append_record(buffer, record)
        return len(batch)

    before = _best_rate(run_before, repeats=repeats)
    after = _best_rate(run_after, repeats=repeats)
    return _pair_row("wal_record_encode", "records_per_second", before, after)
