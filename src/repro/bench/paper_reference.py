"""Selected reference numbers from the paper's tables and figures.

The reproduction cannot match absolute throughput (pure Python versus the
authors' C++/Hyperscan build), but the *shape* of the results — which method
wins on compression ratio, by roughly what factor — should hold.  These
constants let the benchmark harness and EXPERIMENTS.md print paper-vs-measured
columns without hard-coding numbers in multiple places.

All ratios follow the paper's convention: compressed size / original size,
lower is better.
"""

from __future__ import annotations

#: Table 2 — dataset statistics (record count, average record length in bytes).
TABLE2_DATASETS: dict[str, tuple[float, float]] = {
    "kv1": (33.1e9, 71.5),
    "kv2": (20.9e9, 158.6),
    "kv3": (2.86e6, 90.6),
    "kv4": (418e3, 44.1),
    "kv5": (2.68e6, 53.1),
    "android": (1.55e6, 129.7),
    "apache": (56.5e3, 63.9),
    "bgl": (4.75e6, 164.1),
    "hdfs": (11.2e6, 141.2),
    "hadoop": (2.61e6, 266.9),
    "alilogs": (350e3, 299.2),
    "github": (8.6e3, 863.8),
    "cities": (148e3, 232.2),
    "unece": (0.81e3, 4494.8),
    "urls": (100e3, 63.1),
    "uuid": (100e3, 35.6),
}

#: Table 3 — line-by-line compression ratios per dataset and method.
TABLE3_RATIOS: dict[str, dict[str, float]] = {
    "kv1": {"FSST": 0.393, "LZ4": 0.504, "Zstd": 0.577, "PBC": 0.236, "PBC_F": 0.147},
    "kv2": {"FSST": 0.486, "LZ4": 0.490, "Zstd": 0.433, "PBC": 0.284, "PBC_F": 0.185},
    "kv3": {"FSST": 0.307, "LZ4": 0.371, "Zstd": 0.423, "PBC": 0.239, "PBC_F": 0.134},
    "kv4": {"FSST": 0.455, "LZ4": 0.594, "Zstd": 0.771, "PBC": 0.346, "PBC_F": 0.215},
    "kv5": {"FSST": 0.545, "LZ4": 0.438, "Zstd": 0.596, "PBC": 0.241, "PBC_F": 0.211},
    "android": {"FSST": 0.576, "LZ4": 0.560, "Zstd": 0.543, "PBC": 0.347, "PBC_F": 0.245},
    "apache": {"FSST": 0.322, "LZ4": 0.349, "Zstd": 0.411, "PBC": 0.151, "PBC_F": 0.104},
    "bgl": {"FSST": 0.293, "LZ4": 0.376, "Zstd": 0.356, "PBC": 0.325, "PBC_F": 0.146},
    "hdfs": {"FSST": 0.288, "LZ4": 0.374, "Zstd": 0.353, "PBC": 0.308, "PBC_F": 0.147},
    "hadoop": {"FSST": 0.286, "LZ4": 0.215, "Zstd": 0.196, "PBC": 0.157, "PBC_F": 0.075},
    "alilogs": {"FSST": 0.484, "LZ4": 0.516, "Zstd": 0.436, "PBC": 0.425, "PBC_F": 0.347},
    "cities": {"FSST": 0.316, "LZ4": 0.336, "Zstd": 0.305, "PBC": 0.261, "PBC_F": 0.189},
    "github": {"FSST": 0.278, "LZ4": 0.151, "Zstd": 0.101, "PBC": 0.110, "PBC_F": 0.092},
    "unece": {"FSST": 0.437, "LZ4": 0.210, "Zstd": 0.125, "PBC": 0.106, "PBC_F": 0.057},
    "urls": {"FSST": 0.413, "LZ4": 0.456, "Zstd": 0.611, "PBC": 0.299, "PBC_F": 0.248},
    "uuid": {"FSST": 0.443, "LZ4": 0.788, "Zstd": 0.984, "PBC": 0.721, "PBC_F": 0.421},
}

#: Table 4 — whole-file compression ratios per dataset and method.
TABLE4_RATIOS: dict[str, dict[str, float]] = {
    "kv1": {"Snappy": 0.345, "LZMA": 0.138, "LZ4": 0.339, "Zstd": 0.192, "PBC_Z": 0.133, "PBC_L": 0.109},
    "kv2": {"Snappy": 0.449, "LZMA": 0.131, "LZ4": 0.436, "Zstd": 0.209, "PBC_Z": 0.142, "PBC_L": 0.100},
    "kv3": {"Snappy": 0.243, "LZMA": 0.109, "LZ4": 0.233, "Zstd": 0.140, "PBC_Z": 0.106, "PBC_L": 0.080},
    "kv4": {"Snappy": 0.427, "LZMA": 0.183, "LZ4": 0.435, "Zstd": 0.255, "PBC_Z": 0.192, "PBC_L": 0.161},
    "kv5": {"Snappy": 0.229, "LZMA": 0.078, "LZ4": 0.182, "Zstd": 0.102, "PBC_Z": 0.090, "PBC_L": 0.066},
    "android": {"Snappy": 0.232, "LZMA": 0.053, "LZ4": 0.197, "Zstd": 0.078, "PBC_Z": 0.059, "PBC_L": 0.038},
    "apache": {"Snappy": 0.108, "LZMA": 0.040, "LZ4": 0.088, "Zstd": 0.053, "PBC_Z": 0.038, "PBC_L": 0.027},
    "bgl": {"Snappy": 0.169, "LZMA": 0.057, "LZ4": 0.167, "Zstd": 0.094, "PBC_Z": 0.080, "PBC_L": 0.041},
    "hdfs": {"Snappy": 0.182, "LZMA": 0.074, "LZ4": 0.176, "Zstd": 0.096, "PBC_Z": 0.072, "PBC_L": 0.051},
    "hadoop": {"Snappy": 0.108, "LZMA": 0.044, "LZ4": 0.086, "Zstd": 0.048, "PBC_Z": 0.038, "PBC_L": 0.023},
    "alilogs": {"Snappy": 0.463, "LZMA": 0.288, "LZ4": 0.456, "Zstd": 0.312, "PBC_Z": 0.279, "PBC_L": 0.265},
    "cities": {"Snappy": 0.205, "LZMA": 0.077, "LZ4": 0.172, "Zstd": 0.120, "PBC_Z": 0.099, "PBC_L": 0.075},
    "github": {"Snappy": 0.103, "LZMA": 0.055, "LZ4": 0.117, "Zstd": 0.062, "PBC_Z": 0.014, "PBC_L": 0.012},
    "unece": {"Snappy": 0.201, "LZMA": 0.069, "LZ4": 0.172, "Zstd": 0.090, "PBC_Z": 0.049, "PBC_L": 0.042},
    "urls": {"Snappy": 0.361, "LZMA": 0.151, "LZ4": 0.355, "Zstd": 0.208, "PBC_Z": 0.158, "PBC_L": 0.122},
    "uuid": {"Snappy": 0.687, "LZMA": 0.347, "LZ4": 0.687, "Zstd": 0.400, "PBC_Z": 0.396, "PBC_L": 0.346},
}

#: Table 5 — log compression (average over log datasets).
TABLE5_LOGS: dict[str, dict[str, float]] = {
    "LogReducer": {"ratio": 0.219, "comp_mb_s": 7.23, "decomp_mb_s": 12.72},
    "PBC_L": {"ratio": 0.224, "comp_mb_s": 13.8, "decomp_mb_s": 169.5},
}

#: Table 6 — JSON compression (average over JSON datasets).
TABLE6_JSON: dict[str, float] = {
    "Ion-B": 0.439,
    "BP-D": 0.409,
    "PBC": 0.159,
    "PBC_F": 0.113,
    "Ion-B+LZMA": 0.051,
    "BP-D+LZMA": 0.041,
    "PBC_L": 0.043,
}

#: Table 7 — per-dataset JSON file compression ratios.
TABLE7_JSON: dict[str, dict[str, float]] = {
    "cities": {"BP-D": 0.072, "PBC_L": 0.075},
    "github": {"BP-D": 0.029, "PBC_L": 0.012},
    "unece": {"BP-D": 0.023, "PBC_L": 0.042},
}

#: Table 8 — TierBase case study (memory usage percent of uncompressed).
TABLE8_TIERBASE: dict[str, dict[str, float]] = {
    "A": {"Uncompressed": 100.0, "Zstd": 45.0, "PBC_F": 25.0},
    "B": {"Uncompressed": 100.0, "Zstd": 37.0, "PBC_F": 29.0},
}

#: Figure 7 — datasets used in the clustering-criterion ablation.
FIGURE7_DATASETS: tuple[str, ...] = ("kv1", "kv2", "android", "alilogs", "apache", "urls")
