"""Sustained-write driver: is put() throughput flat, or a compaction sawtooth?

The tentpole claim of the background-compaction work is not "faster on
average" — it is *no synchronous merge on the write path*.  The one metric
that exposes the difference is windowed throughput over a sustained run: an
open-loop writer offers a fixed put rate (the pacing discipline the service
scenarios use), and every completion is bucketed into fixed windows.

* ``legacy`` — the pre-scheduler write path: whenever the table count
  reaches the trigger, the whole store is merged **synchronously** before
  the next ``put()`` proceeds (the seed's merge-everything ``compact()``).
  The merge takes O(store) seconds, the writer can do nothing meanwhile,
  and the achieved-rate trace is a sawtooth: offered rate, a stall window,
  a catch-up burst, repeat.
* ``inline`` — tiered merges, still on the write path: small merges are
  cheap, but the occasional bottom-level rewrite still freezes the writer.
* ``background`` — tiered merges on the scheduler thread under L0
  admission control: merges run in the pacing headroom, ``put()`` never
  waits for one, and every window sits at the offered rate.

:func:`run_sustained_write` drives a bare :class:`~repro.lsm.engine.LSMEngine`
with a cycling key space (so the store footprint — and therefore the merge
cost — stabilises instead of growing without bound) and reports per-window
rates, a single *flatness* score (worst relative deviation of any complete
window from the mean), scheduled-release latency percentiles and the
engine's stall counters.  The harness exposes it twice: as the
``sustained`` experiment grid (one cell per compaction mode) and as the
``background_compaction`` before/after pair embedded in
``BENCH_service.json``.
"""

from __future__ import annotations

import random
import string
import time
from dataclasses import dataclass

from repro.lsm.engine import LSMEngine

__all__ = ["MODES", "SustainedResult", "run_sustained_write"]

#: compaction modes the driver can run, in before → after order.
MODES = ("legacy", "inline", "background")


@dataclass(frozen=True)
class SustainedResult:
    """One sustained-write run: throughput trace, tail latency, stall audit."""

    mode: str
    offered_rate: float
    operations: int
    elapsed_seconds: float
    ops_per_second: float
    window_seconds: float
    #: puts/s of every *complete* window, in order (the throughput histogram).
    windows: tuple[float, ...]
    #: worst relative deviation of any window from the window mean;
    #: 0.0 when fewer than two complete windows were measured.
    flatness: float
    #: scheduled-release latencies (queueing behind a merge is visible).
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: engine admission-control counters over the measured phase.
    stall_seconds: float
    stalls: int
    slowdowns: int
    compactions: int
    sstables: int

    def is_flat(self, tolerance: float = 0.20) -> bool:
        """True when every complete window is within ``tolerance`` of the mean."""
        return self.flatness <= tolerance


def _value_pool(count: int, value_bytes: int, seed: int) -> list[str]:
    """Deterministic payloads, pre-generated so the loop measures the engine."""
    generator = random.Random(seed)
    alphabet = string.ascii_letters + string.digits
    return [
        "".join(generator.choices(alphabet, k=value_bytes)) for _ in range(count)
    ]


def run_sustained_write(
    directory: str,
    *,
    mode: str = "background",
    seconds: float = 20.0,
    window_seconds: float = 5.0,
    warmup_seconds: float = 10.0,
    rate: float = 2000.0,
    catchup_seconds: float = 0.25,
    value_bytes: int = 256,
    keyspace: int = 1 << 30,
    memtable_bytes: int = 512 * 1024,
    compaction_trigger: int = 4,
    sync_mode: str = "none",
    seed: int = 2023,
) -> SustainedResult:
    """Offer ``rate`` paced puts/s for ``seconds``; measure the windows.

    The writer releases one put every ``1/rate`` seconds, like a fixed-rate
    ingest source.  Scheduling jitter (a ``sleep`` overshoot) is absorbed —
    the writer replays up to ``catchup_seconds`` of backlog at full speed —
    but anything older is **dropped, not replayed**: a telemetry source
    does not travel back in time, so a multi-second merge stall shows up as
    a window that genuinely achieved fewer puts rather than being papered
    over by a catch-up burst.  Each latency is measured from the put's
    release time (``clock: "scheduled-release"``), so time spent stalled
    behind a merge counts against it, exactly as a caller would see.

    The default ``keyspace`` is effectively unbounded: the store *grows*
    over the run, which is precisely what exposes the O(store)
    write-path merge — its pauses lengthen with every gigabyte while the
    tiered background engine's per-put cost stays amortised-constant.  The
    run starts with ``warmup_seconds`` of unrecorded (but identically
    paced) writes so no mode gets to show off an empty store, and the
    trailing partial window is dropped from the flatness score because its
    rate is an artifact of where the clock ran out.
    """
    if mode not in MODES:
        raise ValueError(f"unknown sustained mode {mode!r}; expected one of {MODES}")
    if seconds <= 0:
        raise ValueError("sustained run needs a positive duration")
    if window_seconds <= 0:
        raise ValueError("sustained run needs a positive window")
    if warmup_seconds < 0:
        raise ValueError("sustained warmup cannot be negative")
    if rate <= 0:
        raise ValueError("sustained run needs a positive offered rate")
    if catchup_seconds < 0:
        raise ValueError("sustained catch-up grace cannot be negative")
    values = _value_pool(64, value_bytes, seed)
    # legacy mode disables the engine's own compaction entirely (a trigger no
    # run can reach) and re-creates the old write path in the loop below:
    # whole-store compact() the moment the table count hits the real trigger.
    engine = LSMEngine(
        directory,
        memtable_bytes=memtable_bytes,
        compaction_trigger=(1 << 30) if mode == "legacy" else compaction_trigger,
        sync_mode=sync_mode,
        background_compaction=(mode == "background"),
    )
    clock = time.perf_counter

    def write(index: int) -> None:
        engine.put(f"sustained:{index % keyspace:010d}", values[index % len(values)])
        if mode == "legacy" and len(engine._tables) >= compaction_trigger:
            engine.compact()

    latencies: list[float] = []
    window_counts: dict[int, int] = {}
    operations = 0
    interval = 1.0 / rate
    stall_base = stalls_base = slowdowns_base = compactions_base = 0
    try:
        index = 0
        started = clock()
        deadline = started + warmup_seconds + seconds
        measure_from = started + warmup_seconds
        release = started
        while True:
            if operations == 0:
                # still warming up: keep rebasing the engine counters so the
                # stall audit covers only the measured phase.
                stall_base = engine._stall_seconds
                stalls_base = engine._stalls
                slowdowns_base = engine._slowdowns
                compactions_base = engine._compactions
            now = clock()
            if now < release:
                time.sleep(release - now)
            write(index)
            after = clock()
            index += 1
            if after >= measure_from:
                latencies.append(after - max(release, measure_from))
                bucket = int((after - measure_from) / window_seconds)
                window_counts[bucket] = window_counts.get(bucket, 0) + 1
                operations += 1
            release += interval
            if release < after - catchup_seconds:
                release = after - catchup_seconds  # drop what the stall consumed
            if after >= deadline:
                break
        elapsed = clock() - measure_from
        stats = engine.disk_stats()
        stall_seconds = engine._stall_seconds - stall_base
        stalls = engine._stalls - stalls_base
        slowdowns = engine._slowdowns - slowdowns_base
        compactions = engine._compactions - compactions_base
    finally:
        engine.close()
    complete = int(elapsed // window_seconds)
    windows = tuple(
        window_counts.get(bucket, 0) / window_seconds for bucket in range(complete)
    )
    if len(windows) >= 2 and sum(windows):
        mean = sum(windows) / len(windows)
        flatness = max(abs(window_rate - mean) / mean for window_rate in windows)
    else:
        flatness = 0.0
    from repro.service.stats import percentile

    ordered = sorted(latencies)
    return SustainedResult(
        mode=mode,
        offered_rate=rate,
        operations=operations,
        elapsed_seconds=elapsed,
        ops_per_second=operations / elapsed if elapsed else 0.0,
        window_seconds=window_seconds,
        windows=windows,
        flatness=flatness,
        p50_ms=percentile(ordered, 0.50) * 1e3,
        p95_ms=percentile(ordered, 0.95) * 1e3,
        p99_ms=percentile(ordered, 0.99) * 1e3,
        stall_seconds=stall_seconds,
        stalls=stalls,
        slowdowns=slowdowns,
        compactions=compactions,
        sstables=stats.sstable_count,
    )
