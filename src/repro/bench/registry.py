"""Experiment registry: maps paper artifacts (tables/figures) to runner functions.

The registry backs the per-experiment index in docs/ARCHITECTURE.md and lets callers (the
benchmarks, examples and EXPERIMENTS.md generation) enumerate the full
evaluation programmatically::

    from repro.bench import EXPERIMENTS, run_experiment

    rows = run_experiment("table3")

It also re-exports :func:`repro.codecs.codec_inventory`, the report-shaped
view of the codec registry used by ``repro codecs list`` — benchmarks and the
CLI enumerate codecs from the registry instead of hand-maintained tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bench import ablations, experiments
from repro.bench.experiments import BenchmarkSettings
from repro.codecs import codec_inventory

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "codec_inventory",
    "experiment_ids",
    "get_experiment",
    "run_all",
    "run_experiment",
]


@dataclass(frozen=True)
class Experiment:
    """One paper artifact (table or figure) and the runner that reproduces it."""

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable[..., list[dict]]
    bench_module: str


EXPERIMENTS: dict[str, Experiment] = {
    experiment.experiment_id: experiment
    for experiment in (
        Experiment(
            "table2",
            "Table 2",
            "dataset statistics (paper corpus versus generated corpus)",
            experiments.run_table2_dataset_statistics,
            "benchmarks/bench_table2_datasets.py",
        ),
        Experiment(
            "table3",
            "Table 3",
            "line-by-line compression ratio and speed",
            experiments.run_table3_line_by_line,
            "benchmarks/bench_table3_line_by_line.py",
        ),
        Experiment(
            "fig5",
            "Figure 5",
            "random access: ratio and lookup speed versus block size",
            experiments.run_fig5_random_access,
            "benchmarks/bench_fig5_random_access.py",
        ),
        Experiment(
            "table4",
            "Table 4",
            "whole-file compression ratio and speed",
            experiments.run_table4_file_compression,
            "benchmarks/bench_table4_file_compression.py",
        ),
        Experiment(
            "fig6",
            "Figure 6",
            "Pareto frontier of ratio versus compression/decompression speed",
            experiments.run_fig6_pareto,
            "benchmarks/bench_fig6_pareto.py",
        ),
        Experiment(
            "fig7",
            "Figure 7",
            "clustering-criterion ablation (ED / entropy / EL)",
            experiments.run_fig7_criteria,
            "benchmarks/bench_fig7_criteria.py",
        ),
        Experiment(
            "fig8",
            "Figure 8",
            "pattern-extraction time with and without 1-gram pruning",
            experiments.run_fig8_pruning,
            "benchmarks/bench_fig8_pruning.py",
        ),
        Experiment(
            "fig9a",
            "Figure 9(a)",
            "compression ratio versus training-sample size",
            experiments.run_fig9_training_size,
            "benchmarks/bench_fig9_tuning.py",
        ),
        Experiment(
            "fig9b",
            "Figure 9(b)",
            "compression ratio versus pattern-dictionary size",
            experiments.run_fig9_pattern_size,
            "benchmarks/bench_fig9_tuning.py",
        ),
        Experiment(
            "table5",
            "Table 5",
            "log compression versus LogReducer",
            experiments.run_table5_log_compression,
            "benchmarks/bench_table5_logs.py",
        ),
        Experiment(
            "table6",
            "Table 6",
            "JSON record and file compression versus Ion-B and BP-D",
            experiments.run_table6_json_compression,
            "benchmarks/bench_table6_json.py",
        ),
        Experiment(
            "table7",
            "Table 7",
            "per-dataset JSON file compression (BP-D versus PBC_L)",
            experiments.run_table7_json_per_dataset,
            "benchmarks/bench_table6_json.py",
        ),
        Experiment(
            "table8",
            "Table 8",
            "TierBase case study: memory usage and SET/GET throughput",
            experiments.run_table8_tierbase,
            "benchmarks/bench_table8_tierbase.py",
        ),
        Experiment(
            "ablation-extraction",
            "Extension",
            "extraction-configuration ablation (pre-grouping, refinement, prefix cap, pruning)",
            ablations.run_ablation_extraction,
            "benchmarks/bench_ablation_extraction.py",
        ),
        Experiment(
            "ablation-residual",
            "Extension",
            "residual-stage ablation (PBC versus PBC_F and PBC_H entropy stages)",
            ablations.run_ablation_residual,
            "benchmarks/bench_ablation_residual.py",
        ),
        Experiment(
            "lsm",
            "Extension",
            "LSM storage-engine integration: space and point-lookup throughput per policy",
            ablations.run_lsm_integration,
            "benchmarks/bench_lsm_engine.py",
        ),
        Experiment(
            "columnar",
            "Extension",
            "columnar comparison: lightweight encodings and PIDS-like decomposition versus PBC",
            ablations.run_columnar_comparison,
            "benchmarks/bench_columnar.py",
        ),
    )
}


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"table3"``, ``"fig5"``)."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; available: {experiment_ids()}")
    return EXPERIMENTS[key]


def run_experiment(
    experiment_id: str, settings: BenchmarkSettings | None = None, **kwargs
) -> list[dict]:
    """Run one experiment and return its rows."""
    experiment = get_experiment(experiment_id)
    return experiment.runner(settings, **kwargs)


def run_all(settings: BenchmarkSettings | None = None, ids: Sequence[str] | None = None) -> dict[str, list[dict]]:
    """Run several experiments (all by default) and return their rows keyed by id."""
    selected = ids if ids is not None else experiment_ids()
    return {experiment_id: run_experiment(experiment_id, settings) for experiment_id in selected}
