"""PIDS-like attribute decomposition for string columns (related work, Section 2.2).

PIDS [32 in the paper] mines a *single* common pattern from a relational string
attribute, splits every value into sub-attributes along that pattern, and
encodes each sub-attribute column individually with lightweight encodings.
The paper's argument against it is that machine-generated data mixes multiple
structures, which a single-pattern decomposition cannot capture — exactly the
gap PBC's clustering fills.

:class:`PIDSLikeCodec` reproduces that baseline faithfully:

* training mines **one** pattern (``max_patterns=1``) from a sample of the
  column,
* every value that matches is split into its field values; each field becomes a
  sub-column encoded with the cheapest lightweight encoding
  (:func:`repro.columnar.encodings.encode_column`),
* values that do not match the single pattern are stored plain in an exception
  list — on single-structure columns this list is tiny, on multi-structure data
  it balloons, which is what the columnar benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.columnar.encodings import decode_column, encode_column
from repro.core.compressor import PBCCompressor
from repro.core.extraction import ExtractionConfig
from repro.core.matcher import MultiPatternMatcher
from repro.core.pattern import Pattern, PatternDictionary
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import CompressorError, DecodingError


class PIDSLikeCodec:
    """Single-pattern attribute decomposition with lightweight sub-column encodings."""

    name = "PIDS-like"

    def __init__(self, config: ExtractionConfig | None = None) -> None:
        base = config if config is not None else ExtractionConfig()
        # Force the single-structure assumption that defines PIDS.
        self.config = replace(base, max_patterns=1)
        self._pattern: Pattern | None = None
        self._matcher: MultiPatternMatcher | None = None

    # ------------------------------------------------------------------ train

    def train(self, sample: Sequence[str]) -> Pattern:
        """Mine the single decomposition pattern from ``sample``."""
        trainer = PBCCompressor(config=self.config)
        report = trainer.train(list(sample))
        patterns = list(report.dictionary)
        if not patterns:
            raise CompressorError("PIDS-like training produced no pattern")
        self._pattern = patterns[0]
        dictionary = PatternDictionary()
        dictionary.add(self._pattern)
        self._matcher = MultiPatternMatcher(dictionary)
        return self._pattern

    @property
    def is_trained(self) -> bool:
        """Whether a decomposition pattern is installed."""
        return self._pattern is not None

    @property
    def pattern(self) -> Pattern:
        """The mined decomposition pattern."""
        if self._pattern is None:
            raise CompressorError("PIDS-like codec must be trained before use")
        return self._pattern

    # --------------------------------------------------------------- compress

    def compress_column(self, values: Sequence[str]) -> bytes:
        """Compress a whole column of values.

        Layout: row count, per-row match flags (bit-packed), one encoded
        sub-column per pattern field (matching rows only, in row order), then a
        plain-encoded exception column for the non-matching rows.
        """
        if self._pattern is None or self._matcher is None:
            raise CompressorError("PIDS-like codec must be trained before use")
        flags = bytearray((len(values) + 7) // 8)
        field_columns: list[list[str]] = [[] for _ in range(self._pattern.field_count)]
        exceptions: list[str] = []
        for row, value in enumerate(values):
            match = self._matcher.match(value)
            if match is None:
                exceptions.append(value)
                continue
            flags[row // 8] |= 1 << (row % 8)
            for column, field_value in zip(field_columns, match.field_values):
                column.append(field_value)

        out = bytearray()
        out += encode_uvarint(len(values))
        out += encode_uvarint(len(flags))
        out += flags
        out += encode_uvarint(len(field_columns))
        for column in field_columns:
            payload = encode_column(column)
            out += encode_uvarint(len(payload))
            out += payload
        exception_payload = encode_column(exceptions)
        out += encode_uvarint(len(exception_payload))
        out += exception_payload
        return bytes(out)

    # ------------------------------------------------------------- decompress

    def decompress_column(self, data: bytes) -> list[str]:
        """Invert :meth:`compress_column`."""
        if self._pattern is None:
            raise CompressorError("PIDS-like codec must be trained before use")
        row_count, offset = decode_uvarint(data, 0)
        flag_bytes, offset = decode_uvarint(data, offset)
        flags = data[offset : offset + flag_bytes]
        offset += flag_bytes
        field_count, offset = decode_uvarint(data, offset)
        if field_count != self._pattern.field_count:
            raise DecodingError("column payload does not match the trained pattern")
        field_columns: list[list[str]] = []
        for _ in range(field_count):
            length, offset = decode_uvarint(data, offset)
            field_columns.append(decode_column(data[offset : offset + length]))
            offset += length
        length, offset = decode_uvarint(data, offset)
        exceptions = decode_column(data[offset : offset + length])

        values: list[str] = []
        matched_index = 0
        exception_index = 0
        for row in range(row_count):
            matched = bool(flags[row // 8] & (1 << (row % 8)))
            if matched:
                fields = [column[matched_index] for column in field_columns]
                values.append(self._pattern.reconstruct(fields))
                matched_index += 1
            else:
                values.append(exceptions[exception_index])
                exception_index += 1
        return values

    # ------------------------------------------------------------ measurement

    def exception_rate(self, values: Sequence[str]) -> float:
        """Fraction of values the single pattern fails to decompose."""
        if self._matcher is None:
            raise CompressorError("PIDS-like codec must be trained before use")
        if not values:
            return 0.0
        misses = sum(1 for value in values if self._matcher.match(value) is None)
        return misses / len(values)
