"""Lightweight column encodings used by columnar stores (Section 2.2 of the paper).

Columnar engines such as Parquet, ORC and DuckDB prefer *lightweight* encodings
(dictionary, run-length, delta) over byte-oriented block codecs because they
are cheap and keep values individually addressable.  The paper positions PBC
against this family (through PIDS and FSST), so the reproduction ships the
standard members:

* :class:`PlainEncoding` — length-prefixed values, the fallback,
* :class:`DictionaryEncoding` — distinct values stored once, rows store codes,
* :class:`RunLengthEncoding` — (value, run length) pairs,
* :class:`DeltaVarintEncoding` — integer columns as zigzag deltas.

:func:`select_column_encoding` picks the cheapest applicable encoding for a
column, which is how the PIDS-like baseline encodes its extracted
sub-attributes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.entropy.varint import decode_uvarint, decode_zigzag, encode_uvarint, encode_zigzag
from repro.exceptions import DecodingError, EncodingError


class ColumnEncoding(ABC):
    """Encodes and decodes a whole column of string values."""

    #: Tag byte identifying the encoding inside serialised columns.
    tag: int = -1
    #: Name used in reports.
    name: str = "encoding"

    @abstractmethod
    def encode(self, values: Sequence[str]) -> bytes:
        """Serialise the column."""

    @abstractmethod
    def decode(self, data: bytes) -> list[str]:
        """Invert :meth:`encode`."""

    @classmethod
    def can_encode(cls, values: Sequence[str]) -> bool:
        """Whether this encoding can represent ``values`` (default: always)."""
        del values
        return True


class PlainEncoding(ColumnEncoding):
    """Length-prefixed UTF-8 values; always applicable."""

    tag = 0
    name = "plain"

    def encode(self, values: Sequence[str]) -> bytes:
        out = bytearray()
        out += encode_uvarint(len(values))
        for value in values:
            payload = value.encode("utf-8")
            out += encode_uvarint(len(payload))
            out += payload
        return bytes(out)

    def decode(self, data: bytes) -> list[str]:
        count, offset = decode_uvarint(data, 0)
        values: list[str] = []
        for _ in range(count):
            length, offset = decode_uvarint(data, offset)
            values.append(data[offset : offset + length].decode("utf-8"))
            offset += length
        return values


class DictionaryEncoding(ColumnEncoding):
    """Distinct values stored once; each row stores a varint code.

    Pays off on low-cardinality columns (status flags, categories, hostnames).
    """

    tag = 1
    name = "dictionary"

    def encode(self, values: Sequence[str]) -> bytes:
        distinct: dict[str, int] = {}
        for value in values:
            if value not in distinct:
                distinct[value] = len(distinct)
        out = bytearray()
        out += encode_uvarint(len(values))
        out += encode_uvarint(len(distinct))
        for value in distinct:
            payload = value.encode("utf-8")
            out += encode_uvarint(len(payload))
            out += payload
        for value in values:
            out += encode_uvarint(distinct[value])
        return bytes(out)

    def decode(self, data: bytes) -> list[str]:
        count, offset = decode_uvarint(data, 0)
        distinct_count, offset = decode_uvarint(data, offset)
        dictionary: list[str] = []
        for _ in range(distinct_count):
            length, offset = decode_uvarint(data, offset)
            dictionary.append(data[offset : offset + length].decode("utf-8"))
            offset += length
        values: list[str] = []
        for _ in range(count):
            code, offset = decode_uvarint(data, offset)
            if code >= len(dictionary):
                raise DecodingError(f"dictionary code {code} out of range")
            values.append(dictionary[code])
        return values


class RunLengthEncoding(ColumnEncoding):
    """(value, run length) pairs; pays off on sorted or highly repetitive columns."""

    tag = 2
    name = "rle"

    def encode(self, values: Sequence[str]) -> bytes:
        out = bytearray()
        out += encode_uvarint(len(values))
        index = 0
        while index < len(values):
            value = values[index]
            run = 1
            while index + run < len(values) and values[index + run] == value:
                run += 1
            payload = value.encode("utf-8")
            out += encode_uvarint(len(payload))
            out += payload
            out += encode_uvarint(run)
            index += run
        return bytes(out)

    def decode(self, data: bytes) -> list[str]:
        count, offset = decode_uvarint(data, 0)
        values: list[str] = []
        while len(values) < count:
            length, offset = decode_uvarint(data, offset)
            value = data[offset : offset + length].decode("utf-8")
            offset += length
            run, offset = decode_uvarint(data, offset)
            values.extend([value] * run)
        if len(values) != count:
            raise DecodingError("run-length payload does not match its row count")
        return values


class DeltaVarintEncoding(ColumnEncoding):
    """Decimal integer columns stored as a first value plus zigzag deltas.

    Only applicable when every value is a (possibly signed) decimal integer
    without leading zeros, so the textual form can be reconstructed exactly.
    """

    tag = 3
    name = "delta"

    @staticmethod
    def _parse(value: str) -> int | None:
        if not value or (value[0] == "-" and len(value) == 1):
            return None
        body = value[1:] if value[0] == "-" else value
        # ``str.isdigit`` accepts non-ASCII digits (e.g. "²", "١٢٣") that either
        # crash ``int`` or do not survive the ``str(int(value))`` roundtrip, so
        # restrict to the ASCII decimal digits the decoder will emit.
        if not (body.isascii() and body.isdigit()):
            return None
        if len(body) > 1 and body[0] == "0":
            return None  # leading zeros would not survive the integer roundtrip
        if body == "0" and value[0] == "-":
            return None
        return int(value)

    @classmethod
    def can_encode(cls, values: Sequence[str]) -> bool:
        return bool(values) and all(cls._parse(value) is not None for value in values)

    def encode(self, values: Sequence[str]) -> bytes:
        if not self.can_encode(values):
            raise EncodingError("delta encoding requires clean decimal integer values")
        numbers = [int(value) for value in values]
        out = bytearray()
        out += encode_uvarint(len(numbers))
        previous = 0
        for number in numbers:
            out += encode_zigzag(number - previous)
            previous = number
        return bytes(out)

    def decode(self, data: bytes) -> list[str]:
        count, offset = decode_uvarint(data, 0)
        values: list[str] = []
        previous = 0
        for _ in range(count):
            delta, offset = decode_zigzag(data, offset)
            previous += delta
            values.append(str(previous))
        return values


#: All encodings, by serialisation tag.
ENCODINGS_BY_TAG: dict[int, ColumnEncoding] = {
    encoding.tag: encoding
    for encoding in (PlainEncoding(), DictionaryEncoding(), RunLengthEncoding(), DeltaVarintEncoding())
}


def select_column_encoding(values: Sequence[str]) -> ColumnEncoding:
    """Pick the applicable encoding with the smallest serialised size."""
    best: ColumnEncoding | None = None
    best_size = None
    for encoding in ENCODINGS_BY_TAG.values():
        if not type(encoding).can_encode(values):
            continue
        size = len(encoding.encode(values))
        if best_size is None or size < best_size:
            best = encoding
            best_size = size
    assert best is not None  # PlainEncoding is always applicable
    return best


def encode_column(values: Sequence[str]) -> bytes:
    """Encode a column with the cheapest encoding, prefixed by its tag byte."""
    encoding = select_column_encoding(values)
    return bytes([encoding.tag]) + encoding.encode(values)


def decode_column(data: bytes) -> list[str]:
    """Invert :func:`encode_column`."""
    if not data:
        raise DecodingError("empty column payload")
    tag = data[0]
    encoding = ENCODINGS_BY_TAG.get(tag)
    if encoding is None:
        raise DecodingError(f"unknown column encoding tag {tag}")
    return encoding.decode(data[1:])
