"""A minimal columnar table: named string columns with per-column lightweight encoding.

This is the columnar-store substrate the paper's related work (Parquet, ORC,
DuckDB, PIDS) assumes: data organised by column, every column serialised with
the cheapest lightweight encoding.  It exists so the columnar benchmark can put
PBC, the PIDS-like decomposition and plain lightweight encodings on the same
footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.columnar.encodings import decode_column, encode_column, select_column_encoding
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError, StoreError


@dataclass
class ColumnStats:
    """Size accounting for one encoded column."""

    name: str
    rows: int
    encoding: str
    raw_bytes: int
    encoded_bytes: int

    @property
    def ratio(self) -> float:
        """Encoded size divided by raw size."""
        if self.raw_bytes == 0:
            return 1.0
        return self.encoded_bytes / self.raw_bytes


class ColumnarTable:
    """Named string columns of equal length."""

    def __init__(self, columns: Mapping[str, Sequence[str]]) -> None:
        if not columns:
            raise StoreError("a columnar table needs at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise StoreError("all columns must have the same number of rows")
        self._columns: dict[str, list[str]] = {name: list(values) for name, values in columns.items()}
        self._rows = lengths.pop()

    # ------------------------------------------------------------------ shape

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return self._rows

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    def column(self, name: str) -> list[str]:
        """The values of one column."""
        if name not in self._columns:
            raise StoreError(f"unknown column {name!r}")
        return list(self._columns[name])

    def row(self, index: int) -> dict[str, str]:
        """One row as a name -> value mapping."""
        if not 0 <= index < self._rows:
            raise StoreError(f"row index {index} out of range")
        return {name: values[index] for name, values in self._columns.items()}

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, str]]) -> "ColumnarTable":
        """Build a table from row dictionaries (all rows must share the same keys)."""
        if not rows:
            raise StoreError("cannot build a table from zero rows")
        names = list(rows[0])
        columns: dict[str, list[str]] = {name: [] for name in names}
        for row in rows:
            if list(row) != names:
                raise StoreError("all rows must have the same columns in the same order")
            for name in names:
                columns[name].append(row[name])
        return cls(columns)

    # ------------------------------------------------------------ persistence

    def column_stats(self) -> list[ColumnStats]:
        """Encoding choice and size accounting per column."""
        stats = []
        for name, values in self._columns.items():
            encoding = select_column_encoding(values)
            encoded = encode_column(values)
            stats.append(
                ColumnStats(
                    name=name,
                    rows=len(values),
                    encoding=encoding.name,
                    raw_bytes=sum(len(value.encode("utf-8")) for value in values),
                    encoded_bytes=len(encoded),
                )
            )
        return stats

    def to_bytes(self) -> bytes:
        """Serialise the table (per-column lightweight encodings)."""
        out = bytearray()
        out += encode_uvarint(len(self._columns))
        for name, values in self._columns.items():
            name_bytes = name.encode("utf-8")
            out += encode_uvarint(len(name_bytes))
            out += name_bytes
            payload = encode_column(values)
            out += encode_uvarint(len(payload))
            out += payload
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnarTable":
        """Invert :meth:`to_bytes`."""
        column_count, offset = decode_uvarint(data, 0)
        if column_count == 0:
            raise DecodingError("serialised table has no columns")
        columns: dict[str, list[str]] = {}
        for _ in range(column_count):
            length, offset = decode_uvarint(data, offset)
            name = data[offset : offset + length].decode("utf-8")
            offset += length
            length, offset = decode_uvarint(data, offset)
            columns[name] = decode_column(data[offset : offset + length])
            offset += length
        return cls(columns)
