"""Columnar-store substrate: lightweight encodings, a columnar table, and a PIDS-like baseline.

The paper's related work contrasts PBC with column-compression techniques that
assume data from a single source with a single structure (PIDS, lightweight
encodings in Parquet/ORC/DuckDB).  This package provides that world so the
columnar benchmark can reproduce the argument: the PIDS-like single-pattern
decomposition matches PBC on single-structure columns but breaks down on
multi-structure machine-generated data.
"""

from repro.columnar.encodings import (
    ColumnEncoding,
    DeltaVarintEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    decode_column,
    encode_column,
    select_column_encoding,
)
from repro.columnar.pids import PIDSLikeCodec
from repro.columnar.table import ColumnarTable, ColumnStats

__all__ = [
    "ColumnEncoding",
    "ColumnStats",
    "ColumnarTable",
    "DeltaVarintEncoding",
    "DictionaryEncoding",
    "PIDSLikeCodec",
    "PlainEncoding",
    "RunLengthEncoding",
    "decode_column",
    "encode_column",
    "select_column_encoding",
]
