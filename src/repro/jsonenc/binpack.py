"""JSON BinPack-style schema-driven serialisation (the ``BP-D`` baseline).

JSON BinPack's schema-driven mode exploits an application-provided JSON schema:
field names are never stored (the schema fixes the key order), always-present
fields need no presence information, optional fields are tracked with a bitmap,
and values are encoded with type-specialised encodings (including enumerations
for low-cardinality string fields).  That makes it the most space-efficient
JSON serialisation in the published benchmark — and the strongest JSON-specific
competitor in Table 6/7 of the paper.

This module provides both halves of that design:

* :func:`infer_schema` — derives a :class:`SchemaNode` from sample documents
  (playing the role of the "application-provided schema"),
* :class:`BinPackCodec` — schema-driven keyless encoder/decoder with a
  self-describing fallback (the Ion-like encoding) for values that do not fit
  the schema.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.compressors.base import Codec
from repro.entropy.varint import decode_uvarint, decode_zigzag, encode_uvarint, encode_zigzag
from repro.exceptions import DecodingError, EncodingError
from repro.jsonenc.ion import decode_value_at, encode_value

#: Maximum distinct string values for a field to be encoded as an enumeration.
_ENUM_LIMIT = 32


@dataclass
class SchemaNode:
    """One node of an inferred JSON schema.

    ``kind`` is one of ``object``, ``array``, ``string``, ``enum``, ``integer``,
    ``number``, ``boolean``, ``null`` or ``any`` (self-describing fallback).
    """

    kind: str
    properties: dict[str, "SchemaNode"] = field(default_factory=dict)
    required: set[str] = field(default_factory=set)
    items: "SchemaNode | None" = None
    enum_values: list[str] = field(default_factory=list)
    nullable: bool = False

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the schema (for persistence/tests)."""
        payload: dict[str, Any] = {"kind": self.kind, "nullable": self.nullable}
        if self.kind == "object":
            payload["properties"] = {name: node.to_dict() for name, node in self.properties.items()}
            payload["required"] = sorted(self.required)
        elif self.kind == "array" and self.items is not None:
            payload["items"] = self.items.to_dict()
        elif self.kind == "enum":
            payload["enum"] = list(self.enum_values)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SchemaNode":
        """Inverse of :meth:`to_dict`."""
        node = cls(kind=payload["kind"], nullable=payload.get("nullable", False))
        if node.kind == "object":
            node.properties = {
                name: cls.from_dict(child) for name, child in payload.get("properties", {}).items()
            }
            node.required = set(payload.get("required", []))
        elif node.kind == "array" and "items" in payload:
            node.items = cls.from_dict(payload["items"])
        elif node.kind == "enum":
            node.enum_values = list(payload.get("enum", []))
        return node


def _scalar_kind(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, dict):
        return "object"
    if isinstance(value, (list, tuple)):
        return "array"
    return "any"


def infer_schema(documents: Iterable[Any]) -> SchemaNode:
    """Infer a schema node from sample documents (already-parsed JSON values)."""
    documents = list(documents)
    if not documents:
        return SchemaNode(kind="any")

    kinds = {_scalar_kind(document) for document in documents}
    nullable = "null" in kinds
    kinds.discard("null")
    if not kinds:
        return SchemaNode(kind="null")
    if len(kinds) > 1:
        # Mixed types (e.g. int and float, or string and object) fall back to
        # the self-describing encoding.
        return SchemaNode(kind="any", nullable=nullable)
    kind = kinds.pop()
    non_null = [document for document in documents if document is not None]

    if kind == "object":
        all_keys: set[str] = set()
        for document in non_null:
            all_keys.update(document.keys())
        required = set(all_keys)
        for document in non_null:
            required &= set(document.keys())
        properties = {
            key: infer_schema([document[key] for document in non_null if key in document])
            for key in sorted(all_keys)
        }
        return SchemaNode(
            kind="object", properties=properties, required=required, nullable=nullable
        )
    if kind == "array":
        items: list[Any] = []
        for document in non_null:
            items.extend(document)
        return SchemaNode(kind="array", items=infer_schema(items) if items else SchemaNode(kind="any"), nullable=nullable)
    if kind == "string":
        distinct = sorted({document for document in non_null})
        if 0 < len(distinct) <= _ENUM_LIMIT and len(non_null) > len(distinct):
            return SchemaNode(kind="enum", enum_values=distinct, nullable=nullable)
        return SchemaNode(kind="string", nullable=nullable)
    return SchemaNode(kind=kind, nullable=nullable)


class BinPackCodec(Codec):
    """Schema-driven keyless JSON encoder (the BP-D baseline of Tables 6 and 7)."""

    name = "BP-D"

    def __init__(self, schema: SchemaNode | None = None) -> None:
        self.schema = schema if schema is not None else SchemaNode(kind="any")

    # ------------------------------------------------------------------ train

    def train(self, sample_documents: Sequence[str | Any]) -> SchemaNode:
        """Infer the schema from sample documents (JSON text or parsed values)."""
        parsed = [
            json.loads(document) if isinstance(document, (str, bytes)) else document
            for document in sample_documents
        ]
        self.schema = infer_schema(parsed)
        return self.schema

    # ----------------------------------------------------------- codec facade

    def compress(self, data: bytes) -> bytes:
        try:
            document = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise EncodingError(f"BP-D can only compress JSON documents: {error}") from error
        return self.encode_document(document)

    def decompress(self, data: bytes) -> bytes:
        document, offset = self._decode(data, 0, self.schema)
        if offset != len(data):
            raise DecodingError(f"trailing {len(data) - offset} bytes after BP-D document")
        return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def encode_document(self, document: Any) -> bytes:
        """Encode an already-parsed JSON value."""
        out = bytearray()
        self._encode(out, document, self.schema)
        return bytes(out)

    def decode_document(self, data: bytes) -> Any:
        """Invert :meth:`encode_document`."""
        document, offset = self._decode(data, 0, self.schema)
        if offset != len(data):
            raise DecodingError(f"trailing {len(data) - offset} bytes after BP-D document")
        return document

    # --------------------------------------------------------------- encoding

    def _encode(self, out: bytearray, value: Any, node: SchemaNode) -> None:
        if node.nullable:
            out.append(0 if value is None else 1)
            if value is None:
                return
        elif value is None and node.kind != "null":
            raise EncodingError(f"schema node {node.kind!r} cannot encode null")

        kind = node.kind
        if kind == "any":
            out += encode_value(value)
        elif kind == "null":
            return
        elif kind == "boolean":
            if not isinstance(value, bool):
                raise EncodingError(f"expected boolean, got {type(value).__name__}")
            out.append(1 if value else 0)
        elif kind == "integer":
            if isinstance(value, bool) or not isinstance(value, int):
                raise EncodingError(f"expected integer, got {type(value).__name__}")
            out += encode_zigzag(value)
        elif kind == "number":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EncodingError(f"expected number, got {type(value).__name__}")
            # A flag byte preserves int-versus-float so the JSON text roundtrips.
            if isinstance(value, int):
                out.append(0)
                out += encode_zigzag(value)
            else:
                out.append(1)
                out += struct.pack(">d", value)
        elif kind == "string":
            if not isinstance(value, str):
                raise EncodingError(f"expected string, got {type(value).__name__}")
            payload = value.encode("utf-8")
            out += encode_uvarint(len(payload))
            out += payload
        elif kind == "enum":
            if not isinstance(value, str):
                raise EncodingError(f"expected string enum, got {type(value).__name__}")
            try:
                index = node.enum_values.index(value)
                out += encode_uvarint(index)
            except ValueError:
                # Escape index for values unseen during schema inference.
                out += encode_uvarint(len(node.enum_values))
                payload = value.encode("utf-8")
                out += encode_uvarint(len(payload))
                out += payload
        elif kind == "array":
            if not isinstance(value, (list, tuple)):
                raise EncodingError(f"expected array, got {type(value).__name__}")
            out += encode_uvarint(len(value))
            item_node = node.items if node.items is not None else SchemaNode(kind="any")
            for item in value:
                self._encode(out, item, item_node)
        elif kind == "object":
            if not isinstance(value, dict):
                raise EncodingError(f"expected object, got {type(value).__name__}")
            optional_keys = [key for key in sorted(node.properties) if key not in node.required]
            bitmap = 0
            for position, key in enumerate(optional_keys):
                if key in value:
                    bitmap |= 1 << position
            out += encode_uvarint(bitmap)
            for key in sorted(node.properties):
                if key not in value:
                    if key in node.required:
                        raise EncodingError(f"document is missing required key {key!r}")
                    continue
                self._encode(out, value[key], node.properties[key])
            extra_keys = sorted(set(value) - set(node.properties))
            out += encode_uvarint(len(extra_keys))
            for key in extra_keys:
                payload = key.encode("utf-8")
                out += encode_uvarint(len(payload))
                out += payload
                out += encode_value(value[key])
        else:
            raise EncodingError(f"unknown schema node kind {kind!r}")

    # --------------------------------------------------------------- decoding

    def _decode(self, data: bytes, offset: int, node: SchemaNode) -> tuple[Any, int]:
        if node.nullable:
            if offset >= len(data):
                raise DecodingError("truncated nullable marker")
            marker = data[offset]
            offset += 1
            if marker == 0:
                return None, offset

        kind = node.kind
        if kind == "any":
            return decode_value_at(data, offset)
        if kind == "null":
            return None, offset
        if kind == "boolean":
            if offset >= len(data):
                raise DecodingError("truncated boolean")
            return bool(data[offset]), offset + 1
        if kind == "integer":
            return decode_zigzag(data, offset)
        if kind == "number":
            if offset >= len(data):
                raise DecodingError("truncated number")
            flag = data[offset]
            offset += 1
            if flag == 0:
                return decode_zigzag(data, offset)
            end = offset + 8
            if end > len(data):
                raise DecodingError("truncated double")
            return struct.unpack(">d", data[offset:end])[0], end
        if kind == "string":
            length, offset = decode_uvarint(data, offset)
            end = offset + length
            if end > len(data):
                raise DecodingError("truncated string")
            return data[offset:end].decode("utf-8"), end
        if kind == "enum":
            index, offset = decode_uvarint(data, offset)
            if index < len(node.enum_values):
                return node.enum_values[index], offset
            length, offset = decode_uvarint(data, offset)
            end = offset + length
            if end > len(data):
                raise DecodingError("truncated enum escape")
            return data[offset:end].decode("utf-8"), end
        if kind == "array":
            count, offset = decode_uvarint(data, offset)
            item_node = node.items if node.items is not None else SchemaNode(kind="any")
            items = []
            for _ in range(count):
                item, offset = self._decode(data, offset, item_node)
                items.append(item)
            return items, offset
        if kind == "object":
            bitmap, offset = decode_uvarint(data, offset)
            optional_keys = [key for key in sorted(node.properties) if key not in node.required]
            present = set(node.required)
            for position, key in enumerate(optional_keys):
                if bitmap & (1 << position):
                    present.add(key)
            document: dict[str, Any] = {}
            for key in sorted(node.properties):
                if key not in present:
                    continue
                value, offset = self._decode(data, offset, node.properties[key])
                document[key] = value
            extra_count, offset = decode_uvarint(data, offset)
            for _ in range(extra_count):
                length, offset = decode_uvarint(data, offset)
                end = offset + length
                if end > len(data):
                    raise DecodingError("truncated extra key")
                key = data[offset:end].decode("utf-8")
                offset = end
                value, offset = decode_value_at(data, offset)
                document[key] = value
            return document, offset
        raise DecodingError(f"unknown schema node kind {kind!r}")
