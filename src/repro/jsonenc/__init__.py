"""JSON-specific serialisation baselines of Tables 6 and 7.

* :class:`repro.jsonenc.ion.IonLikeCodec` — Amazon Ion-style self-describing
  binary JSON serialisation (``Ion-B``).
* :class:`repro.jsonenc.binpack.BinPackCodec` — JSON BinPack-style
  schema-driven keyless serialisation (``BP-D``), with
  :func:`repro.jsonenc.binpack.infer_schema` playing the role of the
  application-provided schema.
"""

from repro.jsonenc.binpack import BinPackCodec, SchemaNode, infer_schema
from repro.jsonenc.ion import IonLikeCodec, decode_value, decode_value_at, encode_value

__all__ = [
    "BinPackCodec",
    "IonLikeCodec",
    "SchemaNode",
    "decode_value",
    "decode_value_at",
    "encode_value",
    "infer_schema",
]
