"""Amazon Ion-style self-describing binary JSON serialisation (the ``Ion-B`` baseline).

Amazon Ion's binary format stores every value as a type descriptor followed by
a length and the payload; container types (structs, lists) nest recursively and
struct field names are written inline.  The encoding is *self-describing*: no
schema is needed to decode, which is exactly why it compresses less than a
schema-driven format (Table 6's comparison of Ion-B versus BP-D versus PBC).

This module re-implements that format family in pure Python: type nibbles,
varint lengths, UTF-8 text, IEEE-754 doubles and minimal-width integers.  It is
not byte-compatible with real Ion, but it occupies the same design point
(compact, self-describing, per-document) which is what the benchmark compares.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.compressors.base import Codec, register_codec
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError, EncodingError

#: Type tags (one byte each).
_TAG_NULL = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT_POSITIVE = 0x03
_TAG_INT_NEGATIVE = 0x04
_TAG_FLOAT = 0x05
_TAG_STRING = 0x06
_TAG_LIST = 0x07
_TAG_STRUCT = 0x08


def encode_value(value: Any) -> bytes:
    """Encode one JSON-compatible Python value into the Ion-like binary form."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Invert :func:`encode_value`."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise DecodingError(f"trailing {len(data) - offset} bytes after Ion value")
    return value


def decode_value_at(data: bytes, offset: int) -> tuple[Any, int]:
    """Decode one embedded Ion value starting at ``offset``; returns ``(value, next_offset)``.

    Ion values are self-delimiting, so other formats (e.g. the BinPack-like
    codec's fallback path) can embed them without a length prefix.
    """
    return _decode_from(data, offset)


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NULL)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        tag = _TAG_INT_POSITIVE if value >= 0 else _TAG_INT_NEGATIVE
        out.append(tag)
        out += encode_uvarint(abs(value))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out.append(_TAG_STRING)
        out += encode_uvarint(len(payload))
        out += payload
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += encode_uvarint(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(_TAG_STRUCT)
        out += encode_uvarint(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError("Ion struct field names must be strings")
            key_payload = key.encode("utf-8")
            out += encode_uvarint(len(key_payload))
            out += key_payload
            _encode_into(out, item)
    else:
        raise EncodingError(f"cannot Ion-encode value of type {type(value).__name__}")


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise DecodingError("truncated Ion value")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag in (_TAG_INT_POSITIVE, _TAG_INT_NEGATIVE):
        magnitude, offset = decode_uvarint(data, offset)
        return (magnitude if tag == _TAG_INT_POSITIVE else -magnitude), offset
    if tag == _TAG_FLOAT:
        end = offset + 8
        if end > len(data):
            raise DecodingError("truncated Ion float")
        return struct.unpack(">d", data[offset:end])[0], end
    if tag == _TAG_STRING:
        length, offset = decode_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise DecodingError("truncated Ion string")
        return data[offset:end].decode("utf-8"), end
    if tag == _TAG_LIST:
        count, offset = decode_uvarint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_STRUCT:
        count, offset = decode_uvarint(data, offset)
        struct_value: dict[str, Any] = {}
        for _ in range(count):
            key_length, offset = decode_uvarint(data, offset)
            end = offset + key_length
            if end > len(data):
                raise DecodingError("truncated Ion field name")
            key = data[offset:end].decode("utf-8")
            offset = end
            item, offset = _decode_from(data, offset)
            struct_value[key] = item
        return struct_value, offset
    raise DecodingError(f"unknown Ion type tag 0x{tag:02x}")


class IonLikeCodec(Codec):
    """Ion-B as a :class:`~repro.compressors.base.Codec` over JSON text records.

    ``compress`` parses the UTF-8 JSON text and emits the binary form;
    ``decompress`` decodes the binary form and re-serialises it as canonical
    JSON (``sort_keys=True``, compact separators).  Roundtripping therefore
    preserves the *document*, not incidental whitespace — the same contract a
    real binary-serialisation baseline provides.
    """

    name = "Ion-B"

    def compress(self, data: bytes) -> bytes:
        try:
            document = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise EncodingError(f"Ion-B can only compress JSON documents: {error}") from error
        return encode_value(document)

    def decompress(self, data: bytes) -> bytes:
        document = decode_value(data)
        return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


register_codec("ion", IonLikeCodec)
