"""The built-in codecs: raw, gzip, lzma, zstd, fsst, pbc, pbc_f.

Moved here from ``repro.stream.framecodecs`` so that every layer — stream
frames, TierBase values, LSM SSTable records, block stores, service shards —
resolves the same seven codecs through the one registry.  Adding a codec is
one class plus one :func:`~repro.codecs.registry.register_codec` call in this
file (or in the defining module for out-of-tree codecs).

Byte-oriented codecs implement ``compress_bytes``/``decompress_bytes`` over
opaque payloads; the pattern-based PBC codecs are record-oriented and
additionally override ``encode_record``/``decode_record`` so per-value callers
(TierBase, the service shards, SSTable record policies) go through the same
trained-model plumbing as frame encoders.  Trained per-record compressors are
memoised per thread keyed by the model-payload digest, so a shared dictionary
is deserialised once per worker rather than once per record.
"""

from __future__ import annotations

import gzip
import hashlib
import lzma
import threading
from typing import Sequence

from repro.codecs.base import Codec
from repro.codecs.registry import register_codec
from repro.compressors.fsst import FSSTCodec, SymbolTable, train_symbol_table
from repro.compressors.zstdlike import ZstdLikeCodec, train_dictionary
from repro.core.compressor import PBCCompressor, PBCFCompressor
from repro.core.extraction import ExtractionConfig
from repro.core.pattern import OUTLIER_PATTERN_ID, PatternDictionary
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import MissingModelError, StreamFormatError

#: Default extraction budget used when a PBC codec trains a dictionary.
DEFAULT_EXTRACTION = ExtractionConfig(max_patterns=16, sample_size=256)


# ------------------------------------------------------- byte-oriented codecs


class RawCodec(Codec):
    """No compression; the baseline every candidate must beat."""

    codec_id = 0
    name = "raw"

    def compress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return bytes(data)

    def decompress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return bytes(data)


class GzipCodec(Codec):
    """stdlib gzip over the payload (fast, GIL-released C path)."""

    codec_id = 1
    name = "gzip"

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def compress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return gzip.compress(data, compresslevel=self.level)

    def decompress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return gzip.decompress(data)


class LZMACodec(Codec):
    """stdlib LZMA over the payload (slow, highest stdlib ratio)."""

    codec_id = 2
    name = "lzma"

    def __init__(self, preset: int = 6) -> None:
        self.preset = preset

    def compress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decompress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return lzma.decompress(data)


class ZstdCodec(Codec):
    """Zstd-like codec with a trained prefix dictionary as its model."""

    codec_id = 3
    name = "zstd"
    trains = True
    cpu_bound = True

    def __init__(self, level: int = 3, dictionary_size: int = 4096) -> None:
        self.level = level
        self.dictionary_size = dictionary_size

    def train(self, records: Sequence[str]) -> bytes:
        return self.train_bytes([record.encode("utf-8") for record in records])

    def train_bytes(self, payloads: Sequence[bytes]) -> bytes:
        return train_dictionary(payloads, max_size=self.dictionary_size)

    def _codec(self, model_payload: bytes) -> ZstdLikeCodec:
        # Level is part of the cache key: differently-tuned instances share
        # the registry codec id.
        return _cached_model(
            (self.codec_id, self.level),
            model_payload,
            lambda payload: ZstdLikeCodec(level=self.level, dictionary=payload),
        )

    def compress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return self._codec(model_payload).compress(data)

    def decompress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return self._codec(model_payload).decompress(data)

    def record_coder(self, model_payload: bytes) -> "_BoundByteCoder":
        # Bind the deserialised codec once; per-value callers reuse it.
        return _BoundByteCoder(ZstdLikeCodec(level=self.level, dictionary=model_payload))


class FSSTFrameCodec(Codec):
    """FSST symbol table trained as the model, applied to the whole payload."""

    codec_id = 4
    name = "fsst"
    trains = True
    cpu_bound = True

    def train(self, records: Sequence[str]) -> bytes:
        return self.train_bytes([record.encode("utf-8") for record in records])

    def train_bytes(self, payloads: Sequence[bytes]) -> bytes:
        return train_symbol_table(payloads).to_bytes()

    def _table(self, model_payload: bytes) -> SymbolTable:
        if not model_payload:
            return SymbolTable()
        return _cached_model((self.codec_id,), model_payload, self._parse_table)

    @staticmethod
    def _parse_table(model_payload: bytes) -> SymbolTable:
        table, _ = SymbolTable.from_bytes(model_payload, 0)
        return table

    def compress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return self._table(model_payload).encode(data)

    def decompress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        return self._table(model_payload).decode(data)

    def record_coder(self, model_payload: bytes) -> "_BoundByteCoder":
        # Parse the symbol table once; per-value callers reuse it.
        table = self._parse_table(model_payload) if model_payload else SymbolTable()
        return _BoundByteCoder(FSSTCodec(table=table))


# ---------------------------------------------------- pattern-oriented codecs


class PBCCodec(Codec):
    """Per-record PBC; the model payload is the serialised pattern dictionary.

    The frame body is ``uvarint(count)`` followed by length-prefixed per-record
    PBC payloads, so a decoded frame still knows its record boundaries.
    """

    codec_id = 5
    name = "pbc"
    trains = True
    cpu_bound = True
    record_oriented = True

    def __init__(self, config: ExtractionConfig | None = None) -> None:
        self.config = config if config is not None else DEFAULT_EXTRACTION

    def train(self, records: Sequence[str]) -> bytes:
        compressor = PBCCompressor(config=self.config)
        report = compressor.train(list(records))
        return report.dictionary.to_bytes()

    def _compressor(self, model_payload: bytes) -> PBCCompressor:
        if not model_payload:
            raise MissingModelError(f"codec {self.name!r} needs a trained pattern dictionary")
        return PBCCompressor(dictionary=PatternDictionary.from_bytes(model_payload))

    def record_coder(self, model_payload: bytes) -> PBCCompressor:
        """A fresh compressor bound to ``model_payload``.

        Deliberately NOT the per-thread cache: per-value callers
        (:class:`~repro.codecs.model.VersionedCodec`) hold the returned
        instance per epoch and may publish it across threads, so it must not
        be shared with any other owner — PBCCompressor carries mutable
        monitoring counters that only tolerate one compressing thread.
        """
        return self._compressor(model_payload)

    def _cached(self, model_payload: bytes) -> PBCCompressor:
        """The per-thread cached compressor (frame-pipeline hot path)."""
        return _cached_compressor(self.codec_id, model_payload, self._compressor)

    def encode(self, records: Sequence[str], model_payload: bytes = b"") -> tuple[bytes, int]:
        compressor = self._cached(model_payload)
        stats = compressor.enable_stats(timed=False)
        try:
            payloads = [compressor.compress(record) for record in records]
        finally:
            compressor.disable_stats()
        body = bytearray()
        body += encode_uvarint(len(payloads))
        for payload in payloads:
            body += encode_uvarint(len(payload))
            body += payload
        return bytes(body), stats.outliers

    def decode(self, body: bytes, model_payload: bytes = b"") -> list[str]:
        compressor = self._cached(model_payload)
        count, offset = decode_uvarint(body, 0)
        records: list[str] = []
        for _ in range(count):
            length, offset = decode_uvarint(body, offset)
            end = offset + length
            if end > len(body):
                raise StreamFormatError("truncated PBC frame body")
            records.append(compressor.decompress(body[offset:end]))
            offset = end
        if offset != len(body):
            raise StreamFormatError("trailing bytes after PBC frame body")
        return records

    def encode_record(self, record: str, model_payload: bytes = b"") -> bytes:
        return self._cached(model_payload).compress(record)

    def decode_record(self, data: bytes, model_payload: bytes = b"") -> str:
        return self._cached(model_payload).decompress(data)

    def record_is_outlier(self, payload: bytes) -> bool:
        # The pattern-id varint prefix is never post-processed (PBC_F applies
        # FSST only to the field payload), so this check covers both variants.
        return bool(payload) and decode_uvarint(payload, 0)[0] == OUTLIER_PATTERN_ID


class PBCFCodec(PBCCodec):
    """PBC_F: PBC plus a trained FSST pass over every record payload.

    The model payload concatenates the pattern dictionary and the FSST
    symbol table: ``uvarint(len(pbc_dict)) + pbc_dict + fsst_table``.
    """

    codec_id = 6
    name = "pbc_f"

    def train(self, records: Sequence[str]) -> bytes:
        compressor = PBCFCompressor(config=self.config)
        report = compressor.train(list(records))
        pbc_payload = report.dictionary.to_bytes()
        residual = compressor._residual_codec
        table_payload = residual.table.to_bytes() if isinstance(residual, FSSTCodec) else b""
        return bytes(encode_uvarint(len(pbc_payload))) + pbc_payload + table_payload

    def _compressor(self, model_payload: bytes) -> PBCCompressor:
        if not model_payload:
            raise MissingModelError(f"codec {self.name!r} needs a trained pattern dictionary")
        pbc_length, offset = decode_uvarint(model_payload, 0)
        end = offset + pbc_length
        if end > len(model_payload):
            raise StreamFormatError("truncated PBC_F model payload")
        dictionary = PatternDictionary.from_bytes(model_payload[offset:end])
        table_payload = model_payload[end:]
        table, _ = SymbolTable.from_bytes(table_payload, 0) if table_payload else (SymbolTable(), 0)
        return PBCFCompressor(dictionary=dictionary, residual_codec=FSSTCodec(table=table))


class _BoundByteCoder:
    """Record-coder view of a deserialised byte codec (Zstd-like, FSST)."""

    __slots__ = ("codec",)

    def __init__(self, codec) -> None:
        self.codec = codec

    def compress(self, record: str) -> bytes:
        return self.codec.compress(record.encode("utf-8"))

    def decompress(self, data: bytes) -> str:
        return self.codec.decompress(data).decode("utf-8")


# ------------------------------------------------ per-thread trained-model cache

#: Per-thread cache of deserialised trained-model objects (PBC compressors,
#: FSST symbol tables, Zstd codecs) keyed by (discriminator..., model digest),
#: so a shared model is deserialised once per worker rather than once per
#: record/frame.  Thread-local storage gives each worker its own dict and
#: budget: no lock, no cross-thread races on PBCCompressor's mutable
#: monitoring state, and one thread's churn can never evict another thread's
#: hot entries (process-pool workers are isolated by construction).
_MODEL_CACHE = threading.local()
_MODEL_CACHE_LIMIT = 16


def _cached_model(key_parts: tuple, model_payload: bytes, build):
    cache: dict[tuple, object] | None = getattr(_MODEL_CACHE, "entries", None)
    if cache is None:
        cache = _MODEL_CACHE.entries = {}
    key = (*key_parts, hashlib.sha1(model_payload).digest())
    value = cache.get(key)
    if value is None:
        value = build(model_payload)
        if len(cache) >= _MODEL_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = value
    return value


def _cached_compressor(codec_id: int, model_payload: bytes, build) -> PBCCompressor:
    return _cached_model((codec_id,), model_payload, build)


#: The registered singletons (default parameters); custom-parameter instances
#: can be constructed directly and used anywhere a codec is accepted.
RAW = register_codec(RawCodec())
GZIP = register_codec(GzipCodec())
LZMA = register_codec(LZMACodec())
ZSTD = register_codec(ZstdCodec())
FSST = register_codec(FSSTFrameCodec())
PBC = register_codec(PBCCodec())
PBC_F = register_codec(PBCFCodec())
