"""The canonical codec interface shared by every storage and serving layer.

A *codec* is the unit the :mod:`repro.codecs` registry manages: one named,
id-tagged compression scheme that every layer (stream frames, TierBase values,
LSM SSTable records, block stores, the service shards) talks to through the
same surface.  A codec owns:

* ``train(records) -> bytes`` — build the codec's trained model payload
  (pattern dictionary for PBC, Zstd prefix dictionary, FSST symbol table; raw
  and stdlib codecs return ``b""``) that callers persist next to the data,
* ``encode(records, model_payload) -> (body, outliers)`` / ``decode`` — frame
  granularity: many records into one compressed body (stream pipeline),
* ``encode_record`` / ``decode_record`` — record granularity: one value into
  one payload (TierBase / service / SSTable record policies),
* ``compress_bytes`` / ``decompress_bytes`` — opaque byte payloads (block
  stores); record-oriented codecs raise :class:`~repro.exceptions.CodecError`.

Identity lives in three class attributes the registry enforces as unique:
``codec_id`` (the one-byte tag stored in frame headers and versioned payload
headers), ``name`` (CLI / report name) and the derived ``magic`` byte.  The
:class:`CodecSpec` snapshot of those attributes is what ``repro codecs list``
prints and what the docs-consistency tests pin — there is no other codec-id
table in the tree.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass
from typing import Sequence

from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import CodecError, StreamFormatError


def pack_records(records: Sequence[str]) -> bytes:
    """Serialise records into the shared uncompressed record-block layout.

    ``uvarint(count)`` then, per record, ``uvarint(len)`` + UTF-8 bytes — the
    layout shared by stream frame bodies, :class:`repro.blockstore.BlockStore`
    blocks and ``PBCBlockCompressor``.
    """
    out = bytearray()
    out += encode_uvarint(len(records))
    for record in records:
        payload = record.encode("utf-8")
        out += encode_uvarint(len(payload))
        out += payload
    return bytes(out)


def unpack_records(data: bytes) -> list[str]:
    """Invert :func:`pack_records`; rejects trailing bytes."""
    count, offset = decode_uvarint(data, 0)
    records: list[str] = []
    for _ in range(count):
        length, offset = decode_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise StreamFormatError("truncated record block")
        records.append(data[offset:end].decode("utf-8"))
        offset = end
    if offset != len(data):
        raise StreamFormatError(f"{len(data) - offset} trailing bytes after record block")
    return records


@dataclass(frozen=True)
class CodecSpec:
    """Immutable identity card of one registered codec."""

    #: one-byte id stored in every frame and versioned payload header.
    codec_id: int
    #: name used by the CLI, the adaptive selector and reports.
    name: str
    #: the header byte identifying payloads of this codec (``bytes([codec_id])``).
    magic: bytes
    #: whether :meth:`Codec.train` produces a non-empty model payload.
    trainable: bool
    #: whether the codec only operates on records (no opaque-bytes interface).
    record_oriented: bool
    #: whether the codec is CPU-bound pure Python (prefers a process pool).
    cpu_bound: bool


class Codec(ABC):
    """One entry of the process-wide codec registry."""

    #: one-byte id stored in every frame header and versioned payload header.
    codec_id: int = -1
    #: name used by the CLI, the adaptive selector and reports.
    name: str = "codec"
    #: whether :meth:`train` produces a non-empty model payload.
    trains: bool = False
    #: whether the codec is CPU-bound pure Python (prefers a process pool).
    cpu_bound: bool = False
    #: whether the codec only understands records (no opaque-bytes interface).
    record_oriented: bool = False

    @property
    def magic(self) -> bytes:
        """The one-byte tag identifying this codec in payload headers."""
        return bytes([self.codec_id])

    def spec(self) -> CodecSpec:
        """Identity snapshot used by listings and the docs-consistency tests."""
        return CodecSpec(
            codec_id=self.codec_id,
            name=self.name,
            magic=self.magic,
            trainable=self.trains,
            record_oriented=self.record_oriented,
            cpu_bound=self.cpu_bound,
        )

    # ------------------------------------------------------------------ train

    def train(self, records: Sequence[str]) -> bytes:
        """Train the codec's model payload on sample records."""
        del records
        return b""

    def train_bytes(self, payloads: Sequence[bytes]) -> bytes:
        """Train the model payload on opaque byte payloads (block-store path)."""
        del payloads
        return b""

    # ------------------------------------------------------- frame granularity

    def encode(self, records: Sequence[str], model_payload: bytes = b"") -> tuple[bytes, int]:
        """Compress records into one body; returns ``(body, outlier_count)``."""
        return self.compress_bytes(pack_records(records), model_payload), 0

    def decode(self, body: bytes, model_payload: bytes = b"") -> list[str]:
        """Invert :meth:`encode`."""
        return unpack_records(self.decompress_bytes(body, model_payload))

    # ------------------------------------------------------ record granularity

    def encode_record(self, record: str, model_payload: bytes = b"") -> bytes:
        """Compress one record into one payload (TierBase / SSTable values)."""
        return self.compress_bytes(record.encode("utf-8"), model_payload)

    def decode_record(self, data: bytes, model_payload: bytes = b"") -> str:
        """Invert :meth:`encode_record`."""
        return self.decompress_bytes(data, model_payload).decode("utf-8")

    def record_coder(self, model_payload: bytes) -> "RecordCoder":
        """A per-record coder bound to one model payload.

        Per-value callers (:class:`~repro.codecs.model.VersionedCodec`) bind
        once per model epoch and reuse the coder on every record, so codecs
        whose model is expensive to deserialise (PBC dictionaries, FSST
        tables, Zstd prefixes) override this to pay that cost once instead of
        per record.  The returned object only needs ``compress(str) -> bytes``
        and ``decompress(bytes) -> str``.
        """
        return RecordCoder(self, model_payload)

    def record_is_outlier(self, payload: bytes) -> bool:
        """Whether an :meth:`encode_record` payload was stored raw (no pattern)."""
        del payload
        return False

    # ------------------------------------------------------------- byte level

    def compress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        """Compress an opaque byte payload (block-store path)."""
        raise CodecError(f"codec {self.name!r} is record-oriented")

    def decompress_bytes(self, data: bytes, model_payload: bytes = b"") -> bytes:
        """Invert :meth:`compress_bytes`."""
        raise CodecError(f"codec {self.name!r} is record-oriented")


class RecordCoder:
    """Default model binding: per-record calls delegating to the codec."""

    __slots__ = ("codec", "model_payload")

    def __init__(self, codec: Codec, model_payload: bytes) -> None:
        self.codec = codec
        self.model_payload = model_payload

    def compress(self, record: str) -> bytes:
        return self.codec.encode_record(record, self.model_payload)

    def decompress(self, data: bytes) -> str:
        return self.codec.decode_record(data, self.model_payload)
