"""``repro.codecs`` — the one codec registry and the versioned model lifecycle.

The single source of truth for codec identity (ids, names, magic bytes) and
for the train → monitor-drift → retrain loop that every storage and serving
layer shares:

* :mod:`repro.codecs.base` — the :class:`Codec` interface (frame, record and
  byte granularity) and the :class:`CodecSpec` identity card,
* :mod:`repro.codecs.registry` — the process-wide registry; adding a codec is
  one :func:`register_codec` call in one file,
* :mod:`repro.codecs.builtin` — the seven built-in codecs (raw, gzip, lzma,
  zstd, fsst, pbc, pbc_f), registered on import,
* :mod:`repro.codecs.model` — :class:`VersionedModel` / :class:`ModelStore` /
  :class:`VersionedCodec`: trained models with monotonically increasing epoch
  ids embedded in every compressed payload header, so decompression looks up
  the exact model that produced the bytes and retraining never rewrites data,
* :mod:`repro.codecs.lifecycle` — :class:`DriftMonitor` / :class:`DriftWindow`
  / :class:`ModelLifecycle`: the one copy of reservoir sampling, drift
  monitoring and retrain triggering.

Quick start::

    from repro.codecs import codec_by_name, versioned_codec

    codec = versioned_codec("pbc_f")
    codec.train(sample_values)                 # epoch 1
    payload = codec.compress_record(value)     # header names codec + epoch
    codec.train(new_sample)                    # epoch 2; payload stays valid
    assert codec.decompress_record(payload) == value
"""

from repro.codecs.base import Codec, CodecSpec, pack_records, unpack_records
from repro.codecs.builtin import (
    DEFAULT_EXTRACTION,
    FSSTFrameCodec,
    GzipCodec,
    LZMACodec,
    PBCCodec,
    PBCFCodec,
    RawCodec,
    ZstdCodec,
)
from repro.codecs.lifecycle import DriftMonitor, DriftWindow, ModelLifecycle
from repro.codecs.model import (
    ModelStore,
    VersionedCodec,
    VersionedModel,
    describe_payload,
    payload_epoch,
    split_payload,
    stamp_payload,
    versioned_codec,
)
from repro.codecs.registry import (
    all_codecs,
    codec_by_id,
    codec_by_name,
    codec_inventory,
    codec_names,
    codec_specs,
    register_codec,
    trainable_codec_names,
)

__all__ = [
    "Codec",
    "CodecSpec",
    "DEFAULT_EXTRACTION",
    "DriftMonitor",
    "DriftWindow",
    "FSSTFrameCodec",
    "GzipCodec",
    "LZMACodec",
    "ModelLifecycle",
    "ModelStore",
    "PBCCodec",
    "PBCFCodec",
    "RawCodec",
    "VersionedCodec",
    "VersionedModel",
    "ZstdCodec",
    "all_codecs",
    "codec_by_id",
    "codec_by_name",
    "codec_inventory",
    "codec_names",
    "codec_specs",
    "describe_payload",
    "pack_records",
    "payload_epoch",
    "register_codec",
    "split_payload",
    "stamp_payload",
    "trainable_codec_names",
    "unpack_records",
    "versioned_codec",
]
