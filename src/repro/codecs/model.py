"""Versioned trained models: every compressed payload names the model that wrote it.

The PR-2 TierBase bug — retraining installed a new dictionary and corrupted
every payload written under the old one — is the canonical failure of keeping
exactly one trained model alive.  This module makes trained models *versioned*
instead, the way production LSM/zstd-dictionary systems pin a dictionary epoch
to every compressed payload so readers never guess which model wrote a byte:

* :class:`VersionedModel` — one trained model payload (pattern dictionary,
  Zstd prefix, FSST table) with a monotonically increasing ``epoch`` id,
* :class:`ModelStore` — all epochs of one codec's model, with reference counts
  so old epochs are retained until no live payload references them,
* :func:`stamp_payload` / :func:`split_payload` — the versioned payload
  header embedded in every compressed value,
* :class:`VersionedCodec` — a registry codec plus a model store: the engine
  behind the TierBase value compressors, the service shards and the
  epoch-aware block stores.  Retraining installs a new epoch and *never*
  rewrites stored payloads; decompression looks up the exact epoch that
  produced the bytes and raises :class:`~repro.exceptions.ModelEpochError` if
  it is gone.

Versioned payload header (see docs/FORMATS.md §6)::

    payload := codec_magic u8 | uvarint(epoch) | body

``codec_magic`` is the codec's registry id byte, so a payload is fully
self-describing given a model store; ``epoch`` 0 is the pre-training sentinel
model (empty payload), which every store retains forever.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.codecs.base import Codec
from repro.codecs.registry import codec_by_id
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import CodecError, DecodingError, ModelEpochError


@dataclass(frozen=True)
class VersionedModel:
    """One trained model payload pinned to its epoch id."""

    #: monotonically increasing per-store id; 0 is the untrained sentinel.
    epoch: int
    #: serialised trained model (``b""`` for epoch 0 / non-training codecs).
    payload: bytes
    #: how many records the model was trained on (0 for the sentinel).
    trained_records: int = 0


# ------------------------------------------------------------ payload header


def stamp_payload(codec_id: int, epoch: int, body: bytes) -> bytes:
    """Prefix ``body`` with the versioned payload header."""
    return bytes([codec_id]) + encode_uvarint(epoch) + body


def split_payload(data: bytes) -> tuple[int, int, bytes]:
    """Parse a versioned payload into ``(codec_id, epoch, body)``."""
    if not data:
        raise CodecError("empty versioned payload")
    try:
        epoch, offset = decode_uvarint(data, 1)
    except DecodingError as error:
        raise CodecError("truncated versioned payload header") from error
    return data[0], epoch, data[offset:]


def payload_epoch(data: bytes) -> int:
    """The epoch stamped into a versioned payload header."""
    return split_payload(data)[1]


# -------------------------------------------------------------- model store


class ModelStore:
    """All retained epochs of one codec's trained model.

    Epoch allocation is monotonic; installing a new model never drops old
    ones.  Callers that track payload lifetimes (TierBase keys) pair
    :meth:`acquire`/:meth:`release` around each stored payload: an epoch is
    pruned only when it is not current, its reference count has returned to
    zero, and it had been referenced at least once.  Callers that cannot
    track lifetimes (LSM SSTables, whose payloads live through compactions)
    simply never release, so every epoch stays decodable.

    All methods are safe to call from any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        sentinel = VersionedModel(epoch=0, payload=b"")
        self._models: dict[int, VersionedModel] = {0: sentinel}
        self._refs: dict[int, int] = {}
        self._current = sentinel

    @property
    def current(self) -> VersionedModel:
        """The most recently installed model (the write-path model)."""
        return self._current

    @property
    def current_epoch(self) -> int:
        """Epoch id of the current model."""
        return self._current.epoch

    def install(self, payload: bytes, trained_records: int = 0) -> VersionedModel:
        """Install a freshly trained model as the new current epoch.

        If the superseded epoch was reference-tracked and its count already
        returned to zero (every payload it wrote was overwritten or deleted
        while it was still current), it is pruned now — being current was the
        only thing keeping it alive.
        """
        with self._lock:
            previous = self._current.epoch
            model = VersionedModel(
                epoch=max(self._models) + 1,
                payload=payload,
                trained_records=trained_records,
            )
            self._models[model.epoch] = model
            self._current = model
            if previous != 0 and self._refs.get(previous) == 0:
                self._refs.pop(previous, None)
                self._models.pop(previous, None)
            return model

    def get(self, epoch: int) -> VersionedModel:
        """The model that wrote an epoch-stamped payload.

        Raises :class:`ModelEpochError` when the epoch was pruned (or never
        existed) — the typed signal the service cache's stale-payload path
        relies on.
        """
        with self._lock:
            try:
                return self._models[epoch]
            except KeyError as error:
                retained = sorted(self._models)
                raise ModelEpochError(
                    f"model epoch {epoch} is not retained (have {retained})"
                ) from error

    # ------------------------------------------------------- payload lifetimes

    def acquire(self, epoch: int) -> None:
        """Record one live payload written at ``epoch``."""
        if epoch == 0:
            return
        with self._lock:
            self._refs[epoch] = self._refs.get(epoch, 0) + 1

    def release(self, epoch: int) -> None:
        """Drop one live-payload reference; prunes the epoch at zero.

        A release with no recorded reference is a no-op: restored stores
        (:meth:`from_bytes`) deliberately drop reference counts, so pruning on
        an untracked release could destroy a model that live payloads still
        need.  The current epoch is never pruned here — its zero count is kept
        on record so :meth:`install` can prune it the moment it is superseded.
        """
        if epoch == 0:
            return
        with self._lock:
            recorded = self._refs.get(epoch)
            if recorded is None:
                return
            remaining = recorded - 1
            if remaining > 0:
                self._refs[epoch] = remaining
                return
            if epoch == self._current.epoch:
                self._refs[epoch] = 0
                return
            self._refs.pop(epoch, None)
            self._models.pop(epoch, None)

    def references(self, epoch: int) -> int:
        """Live-payload count recorded for ``epoch``."""
        with self._lock:
            return self._refs.get(epoch, 0)

    def epochs(self) -> list[int]:
        """All retained epoch ids, ascending."""
        with self._lock:
            return sorted(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    # ------------------------------------------------------------ persistence

    def to_bytes(self) -> bytes:
        """Serialise every retained model (epochs must survive the process when
        the payloads they decode do — on-disk LSM shards persist this next to
        their SSTables; see docs/FORMATS.md §6).

        Reference counts are deliberately not persisted: the callers that
        persist a store are exactly the ones whose payload lifetimes cannot be
        tracked, so a restored store retains every epoch.
        """
        with self._lock:
            out = bytearray()
            out += encode_uvarint(self._current.epoch)
            out += encode_uvarint(len(self._models))
            for epoch in sorted(self._models):
                model = self._models[epoch]
                out += encode_uvarint(model.epoch)
                out += encode_uvarint(model.trained_records)
                out += encode_uvarint(len(model.payload))
                out += model.payload
            return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ModelStore":
        """Invert :meth:`to_bytes`; any truncation is a :class:`CodecError`."""
        store = cls()
        models: dict[int, VersionedModel] = dict(store._models)
        try:
            current_epoch, offset = decode_uvarint(data, 0)
            count, offset = decode_uvarint(data, offset)
            for _ in range(count):
                epoch, offset = decode_uvarint(data, offset)
                trained_records, offset = decode_uvarint(data, offset)
                length, offset = decode_uvarint(data, offset)
                end = offset + length
                if end > len(data):
                    raise CodecError("truncated model store payload")
                models[epoch] = VersionedModel(
                    epoch=epoch, payload=data[offset:end], trained_records=trained_records
                )
                offset = end
        except DecodingError as error:
            raise CodecError("truncated model store payload") from error
        if offset != len(data):
            raise CodecError("trailing bytes after model store payload")
        if current_epoch not in models:
            raise CodecError(f"model store names current epoch {current_epoch} but lacks it")
        store._models = models
        store._current = models[current_epoch]
        return store


# ---------------------------------------------------------- versioned codec


class VersionedCodec:
    """A registry codec bound to a :class:`ModelStore` of trained epochs.

    This is the shared train → stamp → decode-by-epoch engine: the TierBase
    value compressors, the service shard backends and the epoch-aware block
    stores all delegate here instead of carrying their own dictionary
    lifecycle.  It also satisfies the :class:`repro.compressors.base.Codec`
    byte protocol (``compress``/``decompress``/``name``), so a
    ``BlockStore(codec=VersionedCodec(...))`` keeps every old block decodable
    across retrains.

    Encoding is expected to be serialised by the owner (TierBase instance /
    shard executor), matching the pre-registry compressors; decoding any epoch
    is safe from any thread.
    """

    def __init__(self, codec: Codec) -> None:
        self.codec = codec
        self.models = ModelStore()
        self.name = f"versioned[{codec.name}]"
        self._records = 0
        self._outliers = 0
        # Model coders (deserialised dictionaries/tables) bound once per
        # epoch: the per-record hot path must not re-hash or re-parse the
        # model payload on every value.
        self._coders: dict[int, object] = {}

    # ------------------------------------------------------------------ train

    def train(self, sample_values: Sequence[str]) -> VersionedModel:
        """Train a new model epoch; previously written payloads stay decodable."""
        sample = list(sample_values)
        payload = self.codec.train(sample)
        model = self.models.install(payload, trained_records=len(sample))
        self._records = 0
        self._outliers = 0
        return model

    def restore_models(self, store: ModelStore) -> None:
        """Swap in a restored :class:`ModelStore` (persisted stores, reopen).

        Epoch ids are only unique *within* a store, so every bound coder and
        the current-epoch counters are dropped with the old store — a stale
        coder under a reused epoch key would decode silently with the wrong
        model.
        """
        self.models = store
        self._coders = {}
        self._records = 0
        self._outliers = 0

    @property
    def current_epoch(self) -> int:
        """The epoch new payloads are stamped with."""
        return self.models.current_epoch

    @property
    def is_trained(self) -> bool:
        """Whether at least one model epoch has been trained."""
        return self.models.current_epoch > 0

    @property
    def outlier_rate(self) -> float:
        """Outlier fraction of records encoded since the current epoch."""
        if self._records == 0:
            return 0.0
        return self._outliers / self._records

    # ---------------------------------------------------------- record level

    def compress_record(self, value: str) -> bytes:
        """Encode one record, stamped with the current epoch."""
        model = self.models.current
        body = self.encode_body(value, model)
        return stamp_payload(self.codec.codec_id, model.epoch, body)

    def decompress_record(self, data: bytes) -> str:
        """Decode a stamped record payload with the exact model that wrote it."""
        codec_id, epoch, body = split_payload(data)
        if codec_id != self.codec.codec_id:
            raise CodecError(
                f"payload written by codec id {codec_id}, expected {self.codec.codec_id}"
                f" ({self.codec.name})"
            )
        return self.decode_body(body, epoch)

    def _coder_for(self, model: VersionedModel):
        """The record coder bound to ``model``, built once per epoch.

        Benign under concurrent readers: worst case two threads build the
        same coder and one wins the dict slot.  Bounded so long-lived stores
        with many superseded epochs don't accumulate dead coders.
        """
        coder = self._coders.get(model.epoch)
        if coder is None:
            coder = self.codec.record_coder(model.payload)
            if len(self._coders) >= 8:
                # Evict one stale entry; never the hot current-epoch coder.
                for cached_epoch in list(self._coders):
                    if cached_epoch != self.models.current_epoch:
                        self._coders.pop(cached_epoch, None)
                        break
            self._coders[model.epoch] = coder
        return coder

    def encode_body(self, value: str, model: VersionedModel | None = None) -> bytes:
        """Headerless record body at ``model`` (default: current epoch)."""
        model = model if model is not None else self.models.current
        body = self._coder_for(model).compress(value)
        self._records += 1
        if self.codec.record_is_outlier(body):
            self._outliers += 1
        return body

    def decode_body(self, body: bytes, epoch: int) -> str:
        """Decode a headerless record body written at ``epoch``."""
        return self._coder_for(self.models.get(epoch)).decompress(body)

    # ------------------------------------------------------------- byte level

    def compress(self, data: bytes) -> bytes:
        """Opaque-bytes compression with the stamped header (block stores)."""
        model = self.models.current
        body = self.codec.compress_bytes(data, model.payload)
        return stamp_payload(self.codec.codec_id, model.epoch, body)

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`, resolving the epoch that wrote the block."""
        codec_id, epoch, body = split_payload(data)
        if codec_id != self.codec.codec_id:
            raise CodecError(
                f"block written by codec id {codec_id}, expected {self.codec.codec_id}"
                f" ({self.codec.name})"
            )
        return self.codec.decompress_bytes(body, self.models.get(epoch).payload)


def versioned_codec(name: str) -> VersionedCodec:
    """Build a :class:`VersionedCodec` over a registered codec by name."""
    from repro.codecs.registry import codec_by_name

    return VersionedCodec(codec_by_name(name))


def describe_payload(data: bytes) -> tuple[str, int, int]:
    """``(codec_name, epoch, body_bytes)`` of a stamped payload (diagnostics)."""
    codec_id, epoch, body = split_payload(data)
    return codec_by_id(codec_id).name, epoch, len(body)
