"""Process-wide codec registry: the single source of truth for codec identity.

Every codec id, name and magic byte in the tree resolves through this module.
The stream frame headers, the versioned value-payload headers, the CLI's
``repro codecs list`` table, the benchmark inventory and the docs-consistency
tests all enumerate the same registry, so adding a codec is one
:func:`register_codec` call in one file (see :mod:`repro.codecs.builtin`).

Registration is explicit (a decorated instance, not import-time magic scans):
importing :mod:`repro.codecs` installs the built-in codecs exactly once per
process.  Ids and names are enforced unique; lookups raise
:class:`~repro.exceptions.UnknownCodecError`, which is also a
``StreamFormatError`` so stream readers keep treating an unknown frame codec
id as a malformed container.
"""

from __future__ import annotations

from repro.codecs.base import Codec, CodecSpec
from repro.exceptions import CodecError, UnknownCodecError

_CODECS_BY_ID: dict[int, Codec] = {}
_CODECS_BY_NAME: dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register a codec instance; returns it so it can be used as a decorator.

    Re-registering the *same* instance is a no-op (idempotent imports); a
    different codec claiming an existing id or name is a hard error.
    """
    if not isinstance(codec, Codec):
        raise CodecError(f"only Codec instances can be registered, got {type(codec).__name__}")
    if not 0 <= codec.codec_id <= 0xFF:
        raise CodecError(f"codec {codec.name!r} id {codec.codec_id} does not fit one byte")
    name = codec.name.lower()
    existing = _CODECS_BY_ID.get(codec.codec_id)
    if existing is codec:
        return codec
    if existing is not None:
        raise CodecError(
            f"codec id {codec.codec_id} already registered by {existing.name!r}"
        )
    if name in _CODECS_BY_NAME:
        raise CodecError(f"codec name {codec.name!r} already registered")
    _CODECS_BY_ID[codec.codec_id] = codec
    _CODECS_BY_NAME[name] = codec
    return codec


def codec_by_id(codec_id: int) -> Codec:
    """Look up a codec by its one-byte id."""
    try:
        return _CODECS_BY_ID[codec_id]
    except KeyError as error:
        raise UnknownCodecError(f"unknown codec id {codec_id}") from error


def codec_by_name(name: str) -> Codec:
    """Look up a codec by name (case-insensitive)."""
    try:
        return _CODECS_BY_NAME[name.lower()]
    except KeyError as error:
        raise UnknownCodecError(
            f"unknown codec {name!r}; available: {codec_names()}"
        ) from error


def all_codecs() -> list[Codec]:
    """Every registered codec, ordered by codec id."""
    return [codec for _, codec in sorted(_CODECS_BY_ID.items())]


def codec_names() -> list[str]:
    """Names of all registered codecs (sorted)."""
    return sorted(_CODECS_BY_NAME)


def codec_specs() -> list[CodecSpec]:
    """Identity snapshots of every registered codec, ordered by id."""
    return [codec.spec() for codec in all_codecs()]


def trainable_codec_names() -> list[str]:
    """Names of codecs whose :meth:`~repro.codecs.base.Codec.train` produces a model."""
    return [codec.name for codec in all_codecs() if codec.trains]


def codec_inventory() -> list[dict]:
    """One report row per registered codec: id, name, magic byte, capabilities.

    The single codec-id table of the tree — ``repro codecs list`` and the
    docs-consistency tests render exactly this.
    """
    return [
        {
            "id": spec.codec_id,
            "name": spec.name,
            "magic": f"0x{spec.magic.hex().upper()}",
            "trainable": "yes" if spec.trainable else "no",
            "granularity": "record" if spec.record_oriented else "bytes",
        }
        for spec in codec_specs()
    ]
