"""The single train → monitor-drift → retrain lifecycle.

Before this module existed the tree carried three independent copies of the
same loop: ``repro.stream.adaptive`` (windowed outlier-rate drift over
frames), ``repro.tierbase.store`` (ratio/outlier monitor with stop-the-world
recompression) and ``repro.service`` (per-shard reservoir + background
retrain).  They are now three thin views over this module:

* :class:`DriftMonitor` — cumulative compression-ratio and outlier-rate
  thresholds (Section 7.5's monitoring counters),
* :class:`DriftWindow` — the windowed variant used by the stream's adaptive
  selector (mean outlier rate over the last N frames),
* :class:`ModelLifecycle` — monitor plus a sliding reservoir of recent values
  that serves as the retraining sample, so the new model reflects the drifted
  workload.

Retraining itself is epoch-based (:mod:`repro.codecs.model`): a retrain
installs a new :class:`~repro.codecs.model.VersionedModel` and never touches
payloads written under old epochs.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass
class DriftMonitor:
    """Tracks the live compression ratio and the unmatched-pattern rate.

    ``ratio_threshold`` is the ratio above which the workload is considered to
    have drifted; ``unmatched_threshold`` is the outlier-rate limit of the PBC
    path (Section 7.5's counter of records that match no pattern).  Nothing
    fires before ``min_observations`` values have been seen.
    """

    ratio_threshold: float = 0.8
    unmatched_threshold: float = 0.2
    min_observations: int = 64
    original_bytes: int = 0
    stored_bytes: int = 0
    values_seen: int = 0
    retraining_events: int = 0

    @property
    def ratio(self) -> float:
        """Observed compression ratio over all observed writes."""
        if self.original_bytes == 0:
            return 1.0
        return self.stored_bytes / self.original_bytes

    def observe(self, original_size: int, stored_size: int) -> None:
        """Record one write."""
        self.original_bytes += original_size
        self.stored_bytes += stored_size
        self.values_seen += 1

    def needs_retraining(self, outlier_rate: float = 0.0) -> bool:
        """Whether the monitored signals crossed their thresholds."""
        if self.values_seen < self.min_observations:
            return False
        if self.ratio > self.ratio_threshold:
            return True
        return outlier_rate > self.unmatched_threshold

    def reset(self) -> None:
        """Clear the counters after a re-training event."""
        self.original_bytes = 0
        self.stored_bytes = 0
        self.values_seen = 0
        self.retraining_events += 1


class DriftWindow:
    """Windowed outlier-rate drift detector (the stream selector's view).

    Tracks the outlier rate of the most recent observations (frames) and
    reports drift once the window is full and its mean crosses ``threshold``.
    """

    def __init__(self, window: int = 4, threshold: float = 0.25) -> None:
        self.threshold = threshold
        self.rates: deque[float] = deque(maxlen=max(1, window))

    def observe(self, outlier_rate: float) -> None:
        """Record one observation's outlier rate."""
        self.rates.append(outlier_rate)

    @property
    def mean(self) -> float:
        """Mean outlier rate over the window (0.0 while warming up)."""
        if not self.rates:
            return 0.0
        return sum(self.rates) / len(self.rates)

    @property
    def drifted(self) -> bool:
        """Whether the window is full and its mean crossed the threshold."""
        return len(self.rates) == self.rates.maxlen and self.mean >= self.threshold

    def reset(self) -> None:
        """Clear the window (after a retrain)."""
        self.rates.clear()


class ModelLifecycle:
    """Reservoir sampling + drift monitoring + retrain triggering, in one place.

    The owner calls :meth:`observe` on every write (feeding both the monitor
    and the sliding reservoir of recent values), asks :meth:`needs_retrain`
    after write batches, and calls :meth:`retrain` with the codec's train
    function when drift is flagged.  The reservoir is a sliding window of the
    most recent values, so the retrained model reflects the drifted workload
    rather than the one it was originally trained on.

    The reservoir and counters are expected to be touched by one writer at a
    time (TierBase instance / shard executor), matching every pre-registry
    copy of this loop.
    """

    def __init__(
        self,
        reservoir_size: int = 256,
        ratio_threshold: float = 0.8,
        unmatched_threshold: float = 0.2,
        min_observations: int = 64,
    ) -> None:
        self.monitor = DriftMonitor(
            ratio_threshold=ratio_threshold,
            unmatched_threshold=unmatched_threshold,
            min_observations=min_observations,
        )
        self.reservoir: deque[str] = deque(maxlen=max(1, reservoir_size))
        #: monotonic instant the current model epoch was installed (None =
        #: never trained); feeds the ``model_epoch_age_seconds`` shard gauge.
        self.trained_at: float | None = None

    def observe(self, value: str, original_size: int, stored_size: int) -> None:
        """Record one write: monitor counters plus the retraining reservoir."""
        self.monitor.observe(original_size, stored_size)
        self.reservoir.append(value)

    def needs_retrain(self, outlier_rate: float = 0.0) -> bool:
        """Whether the drift monitor recommends retraining."""
        return self.monitor.needs_retraining(outlier_rate)

    def sample(self) -> list[str]:
        """The current retraining sample (most recent values first-in order)."""
        return list(self.reservoir)

    def retrain(
        self,
        train: Callable[[Sequence[str]], object],
        sample_values: Sequence[str] | None = None,
    ) -> bool:
        """Run ``train`` on ``sample_values`` (default: the reservoir).

        Returns whether training ran (``False`` on an empty sample).  Resets
        the monitor counters — and nothing else: with versioned models there
        are no payloads to rewrite.
        """
        sample = list(sample_values) if sample_values is not None else self.sample()
        if not sample:
            return False
        train(sample)
        self.monitor.reset()
        self.mark_trained()
        return True

    def mark_trained(self) -> None:
        """Stamp the current instant as the active model epoch's install time.

        Owners call this from their *initial* ``train`` path too (which does
        not go through :meth:`retrain`), so epoch age is meaningful from the
        first model onward.
        """
        self.trained_at = time.monotonic()

    @property
    def model_age_seconds(self) -> float:
        """Seconds since the current model epoch was installed (0.0 untrained)."""
        if self.trained_at is None:
            return 0.0
        return max(0.0, time.monotonic() - self.trained_at)

    @property
    def retrain_events(self) -> int:
        """How many retraining events the monitor has recorded."""
        return self.monitor.retraining_events
