"""Range asymmetric numeral system (rANS) entropy coding over byte symbols.

Zstd's entropy stage is built on ANS [16 in the paper]; this module provides a
pure-Python byte-oriented rANS coder that the reproduction uses in two places:

* as a self-contained block codec (:class:`RansCodec`) whose header embeds the
  normalised frequency table, and
* as a *shared-model* residual encoder for PBC (Section 5.2, "entropy encoding
  techniques" for residual subsequences): the model is trained once on the
  training sample and reused for every record, so short records carry no
  per-record table overhead (see :mod:`repro.core.residual`).

The implementation follows the classic byte-wise rANS construction: the encoder
walks the input in reverse, emitting renormalisation bytes, and the decoder
walks the produced stream forward.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError, EncodingError

#: Number of bits of precision of the normalised frequency table.
PROB_BITS = 12

#: Sum of all normalised frequencies (``2 ** PROB_BITS``).
PROB_SCALE = 1 << PROB_BITS

#: Lower bound of the rANS state during renormalisation.
_RANS_LOW = 1 << 23

#: Mask used to extract the cumulative-frequency slot from the state.
_SLOT_MASK = PROB_SCALE - 1


def normalize_frequencies(counts: dict[int, int], scale: int = PROB_SCALE) -> dict[int, int]:
    """Scale raw symbol counts to frequencies summing exactly to ``scale``.

    Every symbol with a non-zero count receives a frequency of at least one so
    it stays encodable; the remainder is distributed proportionally and the
    rounding error is absorbed by the most frequent symbol.
    """
    present = {symbol: count for symbol, count in counts.items() if count > 0}
    if not present:
        raise EncodingError("cannot normalise an empty frequency table")
    if len(present) > scale:
        raise EncodingError(f"more than {scale} distinct symbols cannot be normalised")
    total = sum(present.values())
    normalized: dict[int, int] = {}
    for symbol, count in present.items():
        normalized[symbol] = max(1, (count * scale) // total)
    error = scale - sum(normalized.values())
    # Distribute the rounding error over the most frequent symbols; taking from
    # (or giving to) high-frequency symbols keeps the per-symbol distortion low.
    for symbol, _ in sorted(present.items(), key=lambda item: -item[1]):
        if error == 0:
            break
        if error > 0:
            normalized[symbol] += error
            error = 0
        else:
            reducible = normalized[symbol] - 1
            adjust = min(reducible, -error)
            normalized[symbol] -= adjust
            error += adjust
    if sum(normalized.values()) != scale:
        raise EncodingError("frequency normalisation failed to reach the target scale")
    return normalized


@dataclass(frozen=True)
class RansModel:
    """A static rANS symbol model: normalised frequencies and cumulative starts."""

    frequencies: dict[int, int]
    starts: dict[int, int]
    slots: tuple[int, ...]  # slot index -> symbol, length PROB_SCALE

    @classmethod
    def from_counts(cls, counts: dict[int, int]) -> "RansModel":
        """Build a model from raw symbol counts."""
        frequencies = normalize_frequencies(counts)
        return cls.from_frequencies(frequencies)

    @classmethod
    def from_frequencies(cls, frequencies: dict[int, int]) -> "RansModel":
        """Build a model from already-normalised frequencies."""
        if sum(frequencies.values()) != PROB_SCALE:
            raise EncodingError("rANS frequencies must sum to PROB_SCALE")
        starts: dict[int, int] = {}
        slots: list[int] = []
        cumulative = 0
        for symbol in sorted(frequencies):
            frequency = frequencies[symbol]
            if frequency <= 0:
                raise EncodingError("rANS frequencies must be positive")
            starts[symbol] = cumulative
            slots.extend([symbol] * frequency)
            cumulative += frequency
        return cls(frequencies=dict(frequencies), starts=starts, slots=tuple(slots))

    @classmethod
    def from_samples(cls, samples: Iterable[bytes], extra_symbols: Sequence[int] = ()) -> "RansModel":
        """Build a model from a collection of training payloads.

        ``extra_symbols`` are given a count of one even when absent from the
        samples, which keeps them encodable later (the shared-model residual
        codec passes the full byte alphabet here).
        """
        counts: Counter[int] = Counter()
        for payload in samples:
            counts.update(payload)
        for symbol in extra_symbols:
            if counts[symbol] == 0:
                counts[symbol] = 1
        if not counts:
            counts = Counter({symbol: 1 for symbol in range(256)})
        return cls.from_counts(dict(counts))

    def can_encode(self, data: bytes) -> bool:
        """Whether every byte of ``data`` has a non-zero frequency in the model."""
        return all(byte in self.frequencies for byte in data)

    def to_bytes(self) -> bytes:
        """Serialise the frequency table (symbol / frequency varint pairs)."""
        out = bytearray()
        out += encode_uvarint(len(self.frequencies))
        for symbol in sorted(self.frequencies):
            out += encode_uvarint(symbol)
            out += encode_uvarint(self.frequencies[symbol])
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["RansModel", int]:
        """Inverse of :meth:`to_bytes`; returns ``(model, next_offset)``."""
        symbol_count, offset = decode_uvarint(data, offset)
        frequencies: dict[int, int] = {}
        for _ in range(symbol_count):
            symbol, offset = decode_uvarint(data, offset)
            frequency, offset = decode_uvarint(data, offset)
            frequencies[symbol] = frequency
        return cls.from_frequencies(frequencies), offset


def rans_encode(data: bytes, model: RansModel) -> bytes:
    """Encode ``data`` with a static ``model``; the output excludes the model."""
    if not data:
        return b""
    frequencies = model.frequencies
    starts = model.starts
    emitted = bytearray()
    state = _RANS_LOW
    for byte in reversed(data):
        frequency = frequencies.get(byte)
        if frequency is None:
            raise EncodingError(f"symbol {byte} is not present in the rANS model")
        limit = ((_RANS_LOW >> PROB_BITS) << 8) * frequency
        while state >= limit:
            emitted.append(state & 0xFF)
            state >>= 8
        state = ((state // frequency) << PROB_BITS) + (state % frequency) + starts[byte]
    header = state.to_bytes(4, "big")
    return header + bytes(reversed(emitted))


def rans_decode(payload: bytes, length: int, model: RansModel) -> bytes:
    """Decode ``length`` symbols from ``payload`` using the static ``model``."""
    if length == 0:
        return b""
    if len(payload) < 4:
        raise DecodingError("truncated rANS payload")
    state = int.from_bytes(payload[:4], "big")
    position = 4
    frequencies = model.frequencies
    starts = model.starts
    slots = model.slots
    out = bytearray()
    for _ in range(length):
        slot = state & _SLOT_MASK
        symbol = slots[slot]
        out.append(symbol)
        state = frequencies[symbol] * (state >> PROB_BITS) + slot - starts[symbol]
        while state < _RANS_LOW:
            if position >= len(payload):
                raise DecodingError("rANS stream exhausted before all symbols were decoded")
            state = (state << 8) | payload[position]
            position += 1
    return bytes(out)


class RansCodec:
    """Self-contained rANS codec: the payload embeds the frequency table.

    Layout: ``uvarint(length) + model table + rANS stream``.  Suitable as a
    block-level entropy stage; for short per-record payloads prefer the
    shared-model path (:func:`rans_encode` with an externally stored model).
    """

    name = "rans"

    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; empty input produces a one-byte payload."""
        out = bytearray()
        out += encode_uvarint(len(data))
        if not data:
            return bytes(out)
        model = RansModel.from_counts(dict(Counter(data)))
        out += model.to_bytes()
        out += rans_encode(data, model)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        length, offset = decode_uvarint(data, 0)
        if length == 0:
            return b""
        model, offset = RansModel.from_bytes(data, offset)
        return rans_decode(data[offset:], length, model)
