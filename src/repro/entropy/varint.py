"""LEB128-style variable-length integer encoding.

This is the VARINT field encoder of Table 1 in the paper and also the length
header used by the VARCHAR encoder and by the Snappy/LZ4-like codecs.
"""

from __future__ import annotations

from repro.exceptions import DecodingError, EncodingError


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as an LEB128 varint."""
    if value < 0:
        raise EncodingError("uvarint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode an LEB128 varint starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise DecodingError("truncated uvarint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise DecodingError("uvarint too long")


def uvarint_size(value: int) -> int:
    """Number of bytes :func:`encode_uvarint` would use for ``value``."""
    if value < 0:
        raise EncodingError("uvarint cannot encode negative values")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_zigzag(value: int) -> bytes:
    """Encode a signed integer using zigzag + LEB128 (used for deltas)."""
    mapped = (value << 1) if value >= 0 else ((-value) << 1) - 1
    return encode_uvarint(mapped)


def decode_zigzag(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a zigzag varint starting at ``offset``; returns ``(value, next_offset)``."""
    mapped, position = decode_uvarint(data, offset)
    if mapped & 1:
        return -((mapped + 1) >> 1), position
    return mapped >> 1, position
