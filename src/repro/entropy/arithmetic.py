"""Adaptive binary arithmetic coding over byte payloads.

Arithmetic coding is one of the entropy-coding techniques the paper lists as
Zstd's backends [42] and as an option for further compressing PBC residual
subsequences (Section 5.2).  This module implements the classic 32-bit
arithmetic coder with an adaptive order-0 bit-tree model: every byte is coded
as eight binary decisions whose probabilities adapt as data is seen, so no
frequency table needs to be stored.

The adaptive model makes the codec fully self-contained (only the payload
length is stored), which is what makes it attractive for short residual
payloads where a static table header would dominate.
"""

from __future__ import annotations

from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError

_PRECISION = 32
_WHOLE = (1 << _PRECISION) - 1
_HALF = 1 << (_PRECISION - 1)
_QUARTER = 1 << (_PRECISION - 2)
_THREE_QUARTERS = _HALF + _QUARTER

#: Counts are halved once they reach this value so the model keeps adapting.
_MAX_COUNT = 1 << 16


class BitTreeModel:
    """Adaptive order-0 model: one zero/one counter pair per bit-tree node.

    The byte being coded selects a path through a binary tree of 255 internal
    nodes (node 1 is the root, children of node ``i`` are ``2i`` and ``2i+1``),
    exactly as in classic CM coders, so the probability of each bit is
    conditioned on the more significant bits of the same byte.
    """

    def __init__(self) -> None:
        self._zeros = [1] * 256
        self._ones = [1] * 256

    def probability_zero(self, node: int) -> tuple[int, int]:
        """Return ``(zero_count, total_count)`` for the node."""
        zeros = self._zeros[node]
        return zeros, zeros + self._ones[node]

    def update(self, node: int, bit: int) -> None:
        """Record that ``bit`` was observed at ``node``."""
        if bit:
            self._ones[node] += 1
        else:
            self._zeros[node] += 1
        if self._zeros[node] + self._ones[node] >= _MAX_COUNT:
            self._zeros[node] = max(1, self._zeros[node] >> 1)
            self._ones[node] = max(1, self._ones[node] >> 1)


class _Encoder:
    """32-bit arithmetic encoder with pending-bit (E3) handling."""

    def __init__(self) -> None:
        self._low = 0
        self._high = _WHOLE
        self._pending = 0
        self._writer = BitWriter()

    def _emit(self, bit: int) -> None:
        self._writer.write_bit(bit)
        inverse = bit ^ 1
        for _ in range(self._pending):
            self._writer.write_bit(inverse)
        self._pending = 0

    def encode_bit(self, bit: int, zero_count: int, total_count: int) -> None:
        span = self._high - self._low + 1
        split = self._low + (span * zero_count) // total_count - 1
        if bit == 0:
            self._high = split
        else:
            self._low = split + 1
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1

    def finish(self) -> bytes:
        self._pending += 1
        if self._low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)
        return self._writer.getvalue()


class _Decoder:
    """Decoder mirroring :class:`_Encoder`."""

    def __init__(self, payload: bytes) -> None:
        self._reader = BitReader(payload)
        self._low = 0
        self._high = _WHOLE
        self._value = 0
        for _ in range(_PRECISION):
            self._value = (self._value << 1) | self._next_bit()

    def _next_bit(self) -> int:
        if self._reader.bits_remaining > 0:
            return self._reader.read_bit()
        return 0

    def decode_bit(self, zero_count: int, total_count: int) -> int:
        span = self._high - self._low + 1
        split = self._low + (span * zero_count) // total_count - 1
        if self._value <= split:
            bit = 0
            self._high = split
        else:
            bit = 1
            self._low = split + 1
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1
            self._value = (self._value << 1) | self._next_bit()
        return bit


def arithmetic_encode(data: bytes, model: BitTreeModel | None = None) -> bytes:
    """Encode ``data`` adaptively; pass a shared ``model`` to carry state across calls."""
    if not data:
        return b""
    local_model = model if model is not None else BitTreeModel()
    encoder = _Encoder()
    for byte in data:
        node = 1
        for shift in range(7, -1, -1):
            bit = (byte >> shift) & 1
            zeros, total = local_model.probability_zero(node)
            encoder.encode_bit(bit, zeros, total)
            local_model.update(node, bit)
            node = (node << 1) | bit
    return encoder.finish()


def arithmetic_decode(payload: bytes, length: int, model: BitTreeModel | None = None) -> bytes:
    """Decode ``length`` bytes produced by :func:`arithmetic_encode`."""
    if length == 0:
        return b""
    if not payload:
        raise DecodingError("empty arithmetic payload for non-zero length")
    local_model = model if model is not None else BitTreeModel()
    decoder = _Decoder(payload)
    out = bytearray()
    for _ in range(length):
        node = 1
        for _ in range(8):
            zeros, total = local_model.probability_zero(node)
            bit = decoder.decode_bit(zeros, total)
            local_model.update(node, bit)
            node = (node << 1) | bit
        out.append(node & 0xFF)
    return bytes(out)


class ArithmeticCodec:
    """Self-contained adaptive arithmetic codec (``uvarint(length) + bit stream``)."""

    name = "arith"

    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` with a fresh adaptive model."""
        return encode_uvarint(len(data)) + arithmetic_encode(data)

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        length, offset = decode_uvarint(data, 0)
        return arithmetic_decode(data[offset:], length)
