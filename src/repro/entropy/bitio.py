"""Bit-level reader and writer used by the Huffman entropy stage.

Bits are packed most-significant-bit first inside each byte, which keeps the
canonical Huffman decoder simple (codes can be compared as left-aligned integers).
"""

from __future__ import annotations

from repro.exceptions import DecodingError


class BitWriter:
    """Accumulates bits and renders them as a ``bytes`` payload.

    The writer keeps a small integer accumulator; every time eight bits are
    available a byte is flushed into an internal ``bytearray``.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append the ``width`` low bits of ``value`` (most significant first)."""
        if width < 0:
            raise ValueError("bit width must be non-negative")
        if width == 0:
            return
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._accumulator = (self._accumulator << width) | value
        self._bit_count += width
        while self._bit_count >= 8:
            self._bit_count -= 8
            byte = (self._accumulator >> self._bit_count) & 0xFF
            self._buffer.append(byte)
        self._accumulator &= (1 << self._bit_count) - 1

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self.write_bits(bit & 1, 1)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes; the stream need not be byte aligned."""
        for byte in data:
            self.write_bits(byte, 8)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._bit_count

    def getvalue(self) -> bytes:
        """Return the written bits padded with zero bits to a byte boundary."""
        if self._bit_count == 0:
            return bytes(self._buffer)
        padding = 8 - self._bit_count
        tail = (self._accumulator << padding) & 0xFF
        return bytes(self._buffer) + bytes([tail])


class BitReader:
    """Reads bits (most significant first) from a ``bytes`` payload."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit position

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        if width < 0:
            raise ValueError("bit width must be non-negative")
        if width == 0:
            return 0
        end = self._position + width
        if end > len(self._data) * 8:
            raise DecodingError("bit stream exhausted")
        value = 0
        position = self._position
        remaining = width
        while remaining:
            byte_index = position // 8
            bit_offset = position % 8
            available = 8 - bit_offset
            take = min(available, remaining)
            chunk = self._data[byte_index]
            chunk >>= available - take
            chunk &= (1 << take) - 1
            value = (value << take) | chunk
            position += take
            remaining -= take
        self._position = position
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes from the current bit position."""
        return bytes(self.read_bits(8) for _ in range(count))

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits (including any final padding bits)."""
        return len(self._data) * 8 - self._position

    @property
    def position(self) -> int:
        """Current bit position from the start of the stream."""
        return self._position
