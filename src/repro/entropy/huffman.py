"""Canonical Huffman coding over byte symbols.

Used as the entropy stage of the Zstd-like codec and as an optional residual
encoder in PBC ("further compression" row of Table 1 in the paper).

The code is *canonical*: only the code length of every symbol needs to be
stored in the compressed header, which keeps headers small for short payloads.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from dataclasses import dataclass

from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError, EncodingError

_MAX_CODE_LENGTH = 15


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy of ``data`` in bits per byte (0.0 for empty input)."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code: per-symbol code lengths and code words."""

    lengths: dict[int, int]
    codes: dict[int, tuple[int, int]]  # symbol -> (codeword, length)

    @property
    def symbols(self) -> list[int]:
        """Symbols covered by the code, sorted."""
        return sorted(self.lengths)


def _limited_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Compute Huffman code lengths, clamped to ``_MAX_CODE_LENGTH`` bits."""
    symbols = sorted(frequencies)
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}
    heap: list[tuple[int, int, list[int]]] = []
    for tiebreak, symbol in enumerate(symbols):
        heapq.heappush(heap, (frequencies[symbol], tiebreak, [symbol]))
    depths: dict[int, int] = {symbol: 0 for symbol in symbols}
    counter = len(symbols)
    while len(heap) > 1:
        freq_a, _, group_a = heapq.heappop(heap)
        freq_b, _, group_b = heapq.heappop(heap)
        for symbol in group_a:
            depths[symbol] += 1
        for symbol in group_b:
            depths[symbol] += 1
        counter += 1
        heapq.heappush(heap, (freq_a + freq_b, counter, group_a + group_b))
    # Clamp overly deep codes; the canonical assignment below re-balances them.
    for symbol, depth in depths.items():
        if depth > _MAX_CODE_LENGTH:
            depths[symbol] = _MAX_CODE_LENGTH
    return _fix_kraft(depths)


def _fix_kraft(depths: dict[int, int]) -> dict[int, int]:
    """Adjust code lengths so the Kraft inequality holds with equality or less."""
    lengths = dict(depths)
    while True:
        kraft = sum(2 ** (_MAX_CODE_LENGTH - length) for length in lengths.values())
        budget = 2**_MAX_CODE_LENGTH
        if kraft <= budget:
            return lengths
        # Demote the symbol with the shortest length (cheapest to extend).
        victim = min(
            (symbol for symbol, length in lengths.items() if length < _MAX_CODE_LENGTH),
            key=lambda symbol: lengths[symbol],
            default=None,
        )
        if victim is None:
            raise EncodingError("cannot satisfy Kraft inequality")
        lengths[victim] += 1


def build_canonical_code(frequencies: dict[int, int]) -> HuffmanCode:
    """Build a canonical Huffman code from symbol frequencies."""
    lengths = _limited_lengths(frequencies)
    codes = _assign_canonical(lengths)
    return HuffmanCode(lengths=lengths, codes=codes)


def _assign_canonical(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Assign canonical code words given per-symbol code lengths."""
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class HuffmanEncoder:
    """Encodes byte payloads with a canonical Huffman code built from the payload."""

    def encode(self, data: bytes) -> bytes:
        """Encode ``data``; the output embeds the code-length table."""
        header = bytearray()
        header += encode_uvarint(len(data))
        if not data:
            return bytes(header)
        frequencies = dict(Counter(data))
        code = build_canonical_code(frequencies)
        header += encode_uvarint(len(code.lengths))
        for symbol in code.symbols:
            header.append(symbol)
            header.append(code.lengths[symbol])
        writer = BitWriter()
        codes = code.codes
        for byte in data:
            word, width = codes[byte]
            writer.write_bits(word, width)
        return bytes(header) + writer.getvalue()


class HuffmanDecoder:
    """Decodes payloads produced by :class:`HuffmanEncoder`."""

    def decode(self, payload: bytes) -> bytes:
        """Decode ``payload`` back to the original bytes."""
        length, offset = decode_uvarint(payload, 0)
        if length == 0:
            return b""
        symbol_count, offset = decode_uvarint(payload, offset)
        lengths: dict[int, int] = {}
        for _ in range(symbol_count):
            if offset + 2 > len(payload):
                raise DecodingError("truncated Huffman header")
            symbol = payload[offset]
            code_length = payload[offset + 1]
            offset += 2
            lengths[symbol] = code_length
        codes = _assign_canonical(lengths)
        # Build a (length, codeword) -> symbol lookup for decoding.
        lookup = {value: symbol for symbol, value in codes.items()}
        reader = BitReader(payload[offset:])
        out = bytearray()
        if len(lengths) == 1:
            only_symbol = next(iter(lengths))
            return bytes([only_symbol]) * length
        while len(out) < length:
            word = 0
            width = 0
            while True:
                word = (word << 1) | reader.read_bit()
                width += 1
                symbol = lookup.get((word, width))
                if symbol is not None:
                    out.append(symbol)
                    break
                if width > _MAX_CODE_LENGTH:
                    raise DecodingError("invalid Huffman code word")
        return bytes(out)
