"""Entropy-coding substrates: bit IO, varints, Huffman, rANS and arithmetic coding.

These are the low-level building blocks used by the pure-Python baseline codecs
(:mod:`repro.compressors`), by the PBC field encoders, and by the optional
residual entropy stages (:mod:`repro.core.residual`).
"""

from repro.entropy.arithmetic import (
    ArithmeticCodec,
    BitTreeModel,
    arithmetic_decode,
    arithmetic_encode,
)
from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.huffman import (
    HuffmanCode,
    HuffmanDecoder,
    HuffmanEncoder,
    build_canonical_code,
    shannon_entropy,
)
from repro.entropy.rans import (
    PROB_BITS,
    PROB_SCALE,
    RansCodec,
    RansModel,
    normalize_frequencies,
    rans_decode,
    rans_encode,
)
from repro.entropy.varint import (
    decode_uvarint,
    decode_zigzag,
    encode_uvarint,
    encode_zigzag,
    uvarint_size,
)

__all__ = [
    "ArithmeticCodec",
    "BitReader",
    "BitTreeModel",
    "BitWriter",
    "HuffmanCode",
    "HuffmanDecoder",
    "HuffmanEncoder",
    "PROB_BITS",
    "PROB_SCALE",
    "RansCodec",
    "RansModel",
    "arithmetic_decode",
    "arithmetic_encode",
    "build_canonical_code",
    "decode_uvarint",
    "decode_zigzag",
    "encode_uvarint",
    "encode_zigzag",
    "normalize_frequencies",
    "rans_decode",
    "rans_encode",
    "shannon_entropy",
    "uvarint_size",
]
