"""Immutable sorted table files (SSTables) with pluggable value compression.

An SSTable stores key/value entries in key order, grouped into data blocks,
followed by a block index, a Bloom filter and a fixed-size footer:

    [data block 0][data block 1]...[index][bloom filter][footer]

The footer records the index and Bloom-filter offsets so a reader can open the
file with two seeks.  Point lookups go Bloom filter -> index binary search ->
one block read, exactly like LevelDB/RocksDB table files.

How a block's payload is laid out is delegated to a :class:`StoragePolicy`:

* :class:`PlainPolicy` — entries stored raw (the "Uncompressed" configuration),
* :class:`BlockCompressionPolicy` — the whole block payload is compressed with a
  block codec (Zstd-like, LZMA, ...): reading one key decompresses the whole
  block, which is the trade-off Figure 5 of the paper measures,
* :class:`RecordCompressionPolicy` — each value is compressed individually with
  a :class:`repro.tierbase.compression.ValueCompressor` (e.g. trained PBC_F):
  reading one key decompresses exactly one value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.compressors.base import Codec
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError, StoreError
from repro.ioutil import fsync_file
from repro.lsm.bloom import BloomFilter
from repro.tierbase.compression import ValueCompressor

#: Magic number terminating every SSTable file.  "STB2" is the epoch-aware
#: format: RecordCompressionPolicy blocks start with uvarint(model_epoch)
#: (docs/FORMATS.md §3).  Pre-epoch "STBL" files are rejected with a typed
#: error instead of being silently misparsed.
_MAGIC = 0x53544232  # "STB2"
_MAGIC_V1 = 0x5354424C  # "STBL" (pre-epoch block layout)

#: Footer layout: index offset, bloom offset, entry count (8 bytes each) + magic (4 bytes).
_FOOTER_SIZE = 8 + 8 + 8 + 4

#: Flag bytes stored per entry.
_FLAG_VALUE = 0
_FLAG_TOMBSTONE = 1


# ------------------------------------------------------------------- policies


class StoragePolicy(ABC):
    """Controls how a data block's entries are serialised and read back."""

    #: Name reported in engine statistics.
    name: str = "policy"

    @abstractmethod
    def encode_block(self, entries: Sequence[tuple[str, str | None]]) -> bytes:
        """Serialise ``entries`` (key, value-or-tombstone) into a block payload."""

    @abstractmethod
    def iter_block(self, payload: bytes) -> Iterator[tuple[str, str | None]]:
        """Yield every entry of a block payload in key order."""

    def lookup_in_block(self, payload: bytes, key: str) -> tuple[bool, str | None]:
        """Find ``key`` inside a block payload; returns ``(found, value)``."""
        for entry_key, value in self.iter_block(payload):
            if entry_key == key:
                return True, value
            if entry_key > key:
                break
        return False, None


def _encode_entries(
    entries: Sequence[tuple[str, str | None]], encode_value
) -> bytes:
    """Shared entry serialisation: key, flag byte, encoded value."""
    out = bytearray()
    out += encode_uvarint(len(entries))
    for key, value in entries:
        key_bytes = key.encode("utf-8")
        out += encode_uvarint(len(key_bytes))
        out += key_bytes
        if value is None:
            out.append(_FLAG_TOMBSTONE)
            continue
        out.append(_FLAG_VALUE)
        value_bytes = encode_value(value)
        out += encode_uvarint(len(value_bytes))
        out += value_bytes
    return bytes(out)


def _decode_entries(payload: bytes, decode_value) -> Iterator[tuple[str, str | None]]:
    """Inverse of :func:`_encode_entries`; ``decode_value`` may be lazy."""
    count, offset = decode_uvarint(payload, 0)
    for _ in range(count):
        key_length, offset = decode_uvarint(payload, offset)
        key = payload[offset : offset + key_length].decode("utf-8")
        offset += key_length
        flag = payload[offset]
        offset += 1
        if flag == _FLAG_TOMBSTONE:
            yield key, None
            continue
        value_length, offset = decode_uvarint(payload, offset)
        value_bytes = payload[offset : offset + value_length]
        offset += value_length
        yield key, decode_value(value_bytes)


class PlainPolicy(StoragePolicy):
    """Entries stored uncompressed."""

    name = "plain"

    def encode_block(self, entries: Sequence[tuple[str, str | None]]) -> bytes:
        return _encode_entries(entries, lambda value: value.encode("utf-8"))

    def iter_block(self, payload: bytes) -> Iterator[tuple[str, str | None]]:
        return _decode_entries(payload, lambda value_bytes: value_bytes.decode("utf-8"))


class BlockCompressionPolicy(StoragePolicy):
    """The whole block payload is compressed with a block codec (RocksDB style)."""

    def __init__(self, codec: Codec) -> None:
        self.codec = codec
        self.name = f"block[{codec.name}]"

    def encode_block(self, entries: Sequence[tuple[str, str | None]]) -> bytes:
        raw = _encode_entries(entries, lambda value: value.encode("utf-8"))
        return self.codec.compress(raw)

    def iter_block(self, payload: bytes) -> Iterator[tuple[str, str | None]]:
        raw = self.codec.decompress(payload)
        return _decode_entries(raw, lambda value_bytes: value_bytes.decode("utf-8"))


class RecordCompressionPolicy(StoragePolicy):
    """Every value compressed individually with a trained :class:`ValueCompressor`.

    Point lookups decompress only the matched value, which is what gives the
    per-record compressors (PBC, PBC_F, FSST) their random-access advantage.

    A block is encoded in one pass against one trained model, so the model
    *epoch* is stamped once into the block header — ``uvarint(epoch)`` before
    the entry layout — and values are stored as headerless epoch bodies.
    Reads decode against the exact epoch that wrote the block, which is what
    lets a retrained compressor keep every existing SSTable readable (the
    :class:`~repro.codecs.ModelStore` retains superseded epochs; LSM blocks
    never release them because payload lifetimes span compactions).
    """

    def __init__(self, compressor: ValueCompressor) -> None:
        self.compressor = compressor
        self.name = f"record[{compressor.name}]"

    def encode_block(self, entries: Sequence[tuple[str, str | None]]) -> bytes:
        # Plain per-record compressors (no versioned models) live at epoch 0;
        # the ValueCompressor base class supplies the epoch surface for them.
        epoch = self.compressor.current_epoch
        body = _encode_entries(
            entries, lambda value: self.compressor.compress_at(value, epoch)
        )
        return bytes(encode_uvarint(epoch)) + body

    def iter_block(self, payload: bytes) -> Iterator[tuple[str, str | None]]:
        epoch, offset = decode_uvarint(payload, 0)
        return _decode_entries(
            payload[offset:],
            lambda value_bytes: self.compressor.decompress_at(value_bytes, epoch),
        )

    def block_epoch(self, payload: bytes) -> int:
        """The model epoch stamped into a block header (diagnostics/tests)."""
        return decode_uvarint(payload, 0)[0]

    def lookup_in_block(self, payload: bytes, key: str) -> tuple[bool, str | None]:
        # Scan the entry headers without decompressing values we skip over.
        epoch, offset = decode_uvarint(payload, 0)
        count, offset = decode_uvarint(payload, offset)
        for _ in range(count):
            key_length, offset = decode_uvarint(payload, offset)
            entry_key = payload[offset : offset + key_length].decode("utf-8")
            offset += key_length
            flag = payload[offset]
            offset += 1
            if flag == _FLAG_TOMBSTONE:
                if entry_key == key:
                    return True, None
                continue
            value_length, offset = decode_uvarint(payload, offset)
            value_bytes = payload[offset : offset + value_length]
            offset += value_length
            if entry_key == key:
                return True, self.compressor.decompress_at(value_bytes, epoch)
            if entry_key > key:
                break
        return False, None


# --------------------------------------------------------------------- writer


@dataclass
class SSTableInfo:
    """Summary statistics of a written table file."""

    path: Path
    entry_count: int
    block_count: int
    file_bytes: int
    logical_value_bytes: int
    min_key: str
    max_key: str


def write_sstable(
    path: str | Path,
    entries: Sequence[tuple[str, str | None]],
    policy: StoragePolicy,
    block_bytes: int = 4096,
    bloom_false_positive_rate: float = 0.01,
    sync: bool = False,
) -> SSTableInfo:
    """Write ``entries`` (already sorted by key, newest version only) to ``path``.

    With ``sync`` the file is fsynced before close, which the engine's atomic
    tmp-then-rename publication requires: the rename must never become durable
    before the bytes it points at.
    """
    if not entries:
        raise StoreError("cannot write an empty SSTable")
    keys = [key for key, _ in entries]
    if keys != sorted(keys):
        raise StoreError("SSTable entries must be sorted by key")
    if len(set(keys)) != len(keys):
        raise StoreError("SSTable entries must have unique keys")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    bloom = BloomFilter(capacity=len(entries), false_positive_rate=bloom_false_positive_rate)
    index: list[tuple[str, int, int]] = []  # (first key, offset, length)
    logical_value_bytes = 0

    with open(path, "wb") as handle:
        offset = 0
        block: list[tuple[str, str | None]] = []
        block_logical = 0

        def flush_block() -> None:
            nonlocal offset, block, block_logical
            if not block:
                return
            payload = policy.encode_block(block)
            index.append((block[0][0], offset, len(payload)))
            handle.write(payload)
            offset += len(payload)
            block = []
            block_logical = 0

        for key, value in entries:
            bloom.add(key.encode("utf-8"))
            entry_size = len(key.encode("utf-8")) + (len(value.encode("utf-8")) if value else 0)
            logical_value_bytes += len(value.encode("utf-8")) if value else 0
            if block and block_logical + entry_size > block_bytes:
                flush_block()
            block.append((key, value))
            block_logical += entry_size
        flush_block()

        index_offset = offset
        index_payload = bytearray()
        index_payload += encode_uvarint(len(index))
        for first_key, block_offset, block_length in index:
            key_bytes = first_key.encode("utf-8")
            index_payload += encode_uvarint(len(key_bytes))
            index_payload += key_bytes
            index_payload += encode_uvarint(block_offset)
            index_payload += encode_uvarint(block_length)
        handle.write(bytes(index_payload))
        offset += len(index_payload)

        bloom_offset = offset
        bloom_payload = bloom.to_bytes()
        handle.write(bloom_payload)
        offset += len(bloom_payload)

        footer = (
            index_offset.to_bytes(8, "big")
            + bloom_offset.to_bytes(8, "big")
            + len(entries).to_bytes(8, "big")
            + _MAGIC.to_bytes(4, "big")
        )
        handle.write(footer)
        if sync:
            fsync_file(handle)

    return SSTableInfo(
        path=path,
        entry_count=len(entries),
        block_count=len(index),
        file_bytes=path.stat().st_size,
        logical_value_bytes=logical_value_bytes,
        min_key=entries[0][0],
        max_key=entries[-1][0],
    )


# --------------------------------------------------------------------- reader


class SSTable:
    """Read-only view over a table file written by :func:`write_sstable`."""

    def __init__(self, path: str | Path, policy: StoragePolicy) -> None:
        self.path = Path(path)
        self.policy = policy
        if not self.path.exists():
            raise StoreError(f"SSTable file {self.path} does not exist")
        file_size = self.path.stat().st_size
        if file_size < _FOOTER_SIZE:
            raise StoreError(f"SSTable file {self.path} is too small to contain a footer")
        with open(self.path, "rb") as handle:
            handle.seek(file_size - _FOOTER_SIZE)
            footer = handle.read(_FOOTER_SIZE)
        magic = int.from_bytes(footer[24:28], "big")
        if magic == _MAGIC_V1:
            raise StoreError(
                f"SSTable file {self.path} uses the pre-epoch 'STBL' block layout; "
                "rewrite it with this version (record-policy blocks now carry a "
                "model-epoch header)"
            )
        if magic != _MAGIC:
            raise StoreError(f"SSTable file {self.path} has a bad magic number")
        self._index_offset = int.from_bytes(footer[0:8], "big")
        self._bloom_offset = int.from_bytes(footer[8:16], "big")
        self.entry_count = int.from_bytes(footer[16:24], "big")
        if not 0 <= self._index_offset <= self._bloom_offset <= file_size - _FOOTER_SIZE:
            raise StoreError(
                f"SSTable file {self.path} is corrupt: footer offsets do not fit the file"
            )
        # A torn or bit-flipped file that happens to keep a valid-looking
        # footer must still fail *typed* — never feed garbage offsets into
        # varint parsing and return misdecoded entries.
        try:
            self._load_metadata(file_size)
        except StoreError:
            raise
        except (DecodingError, UnicodeDecodeError, IndexError, ValueError) as error:
            raise StoreError(f"SSTable file {self.path} has a corrupt metadata section") from error

    def _load_metadata(self, file_size: int) -> None:
        with open(self.path, "rb") as handle:
            handle.seek(self._index_offset)
            metadata = handle.read(file_size - _FOOTER_SIZE - self._index_offset)
        index_payload = metadata[: self._bloom_offset - self._index_offset]
        bloom_payload = metadata[self._bloom_offset - self._index_offset :]
        block_count, offset = decode_uvarint(index_payload, 0)
        self._index: list[tuple[str, int, int]] = []
        for _ in range(block_count):
            key_length, offset = decode_uvarint(index_payload, offset)
            first_key = index_payload[offset : offset + key_length].decode("utf-8")
            offset += key_length
            block_offset, offset = decode_uvarint(index_payload, offset)
            block_length, offset = decode_uvarint(index_payload, offset)
            if block_offset + block_length > self._index_offset:
                raise StoreError(
                    f"SSTable file {self.path} is corrupt: data block overruns the index"
                )
            self._index.append((first_key, block_offset, block_length))
        self._first_keys = [first_key for first_key, _, _ in self._index]
        self._bloom, _ = BloomFilter.from_bytes(bloom_payload, 0)

    # ------------------------------------------------------------------- read

    @property
    def block_count(self) -> int:
        """Number of data blocks."""
        return len(self._index)

    @property
    def file_bytes(self) -> int:
        """On-disk size of the table file."""
        return self.path.stat().st_size

    def _read_block(self, position: int) -> bytes:
        _, block_offset, block_length = self._index[position]
        with open(self.path, "rb") as handle:
            handle.seek(block_offset)
            return handle.read(block_length)

    def get(self, key: str) -> tuple[bool, str | None]:
        """Point lookup; returns ``(found, value)`` where a found tombstone is ``(True, None)``."""
        if not self._index:
            return False, None
        if not self._bloom.might_contain(key.encode("utf-8")):
            return False, None
        position = bisect_right(self._first_keys, key) - 1
        if position < 0:
            return False, None
        return self.policy.lookup_in_block(self._read_block(position), key)

    def scan(self) -> Iterator[tuple[str, str | None]]:
        """All entries in key order (tombstones included, used by compaction)."""
        for position in range(len(self._index)):
            yield from self.policy.iter_block(self._read_block(position))

    def range(self, start: str | None = None, end: str | None = None) -> Iterator[tuple[str, str | None]]:
        """Entries with ``start <= key < end`` in key order (tombstones included).

        Seeks: the block index places the first candidate block, so a narrow
        range over a large table reads only the blocks it overlaps.
        """
        first = 0
        if start is not None:
            first = max(bisect_right(self._first_keys, start) - 1, 0)
        for position in range(first, len(self._index)):
            if end is not None and self._first_keys[position] >= end:
                return
            for key, value in self.policy.iter_block(self._read_block(position)):
                if start is not None and key < start:
                    continue
                if end is not None and key >= end:
                    return
                yield key, value
